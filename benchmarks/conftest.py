"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one experiment of the reconstructed evaluation (see
DESIGN.md section 3).  The scenario is built once per session; benchmarks run
each experiment once (``rounds=1``) because the experiments are themselves
aggregates over many queries.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets.synthetic_city import SyntheticCityConfig, build_scenario  # noqa: E402


@pytest.fixture(scope="session")
def bench_scenario():
    """A compact scenario shared by every benchmark."""
    return build_scenario(
        SyntheticCityConfig(
            rows=10,
            cols=10,
            block_size_m=220.0,
            num_landmarks=90,
            num_drivers=20,
            trips_per_driver=12,
            num_hot_pairs=16,
            num_workers=30,
            seed=23,
        )
    )


@pytest.fixture()
def run_once(benchmark):
    """Fixture: run a zero-argument callable exactly once under benchmark timing.

    The experiments are themselves aggregates over many queries, so a single
    timed round is both sufficient and affordable.
    """

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

    return runner
