"""F2 benchmark — disagreement between candidate-route sources.

Shape to check: the sources genuinely disagree (mean pairwise similarity well
below 1), which is the premise that makes crowd arbitration necessary.
"""

from repro.experiments import exp_disagreement
from repro.experiments.exp_disagreement import DisagreementExperimentConfig




def test_f2_source_disagreement(run_once, bench_scenario):
    result = run_once(
        lambda: exp_disagreement.run(bench_scenario, DisagreementExperimentConfig(num_queries=25, seed=97)),
    )
    print()
    print(result.to_table())
    assert result.rows
    assert result.summary["overall_mean_similarity"] < 0.9
    for row in result.rows:
        assert row["mean_distinct_candidates"] >= 2.0
