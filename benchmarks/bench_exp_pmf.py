"""E6 benchmark — PMF completion of the sparse familiarity matrix.

Shape to check: PMF's held-out reconstruction error beats the no-completion
(zero) baseline at every sparsity level.
"""

from repro.experiments import exp_pmf
from repro.experiments.exp_pmf import PMFExperimentConfig




def test_e6_pmf_completion(run_once, bench_scenario):
    result = run_once(
        lambda: exp_pmf.run(bench_scenario, PMFExperimentConfig(holdout_fractions=(0.1, 0.3, 0.5))),
    )
    print()
    print(result.to_table())
    for row in result.rows:
        assert row["pmf_rmse"] <= row["zero_baseline_rmse"] + 1e-9
    assert result.summary["pmf_beats_zero_baseline"]
