"""E5 benchmark — crowd answer quality under different worker-assignment policies.

Shape to check: assigning tasks to the top-k eligible workers (rated voting)
yields at least as good answers as uniform random assignment.
"""

from repro.experiments import exp_worker_selection
from repro.experiments.exp_worker_selection import WorkerSelectionExperimentConfig




def test_e5_worker_selection(run_once, bench_scenario):
    result = run_once(
        lambda: exp_worker_selection.run(
            bench_scenario, WorkerSelectionExperimentConfig(num_tasks=8, worker_counts=(1, 3, 5), seed=79)
        ),
    )
    print()
    print(result.to_table())
    assert result.rows
    assert result.summary["rated_vs_random_gain"] > -0.15
    for row in result.rows:
        assert 0.0 <= row["rated_voting_quality"] <= 1.0
