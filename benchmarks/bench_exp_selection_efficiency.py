"""E4 benchmark — landmark-selection efficiency (brute force vs. ILS vs. Greedy).

Shape to check: GreedySelect is orders of magnitude cheaper than brute-force
enumeration while returning the same objective value.
"""

from repro.experiments import exp_selection_efficiency
from repro.experiments.exp_selection_efficiency import SelectionEfficiencyConfig




def test_e4_selection_efficiency(run_once):
    result = run_once(
        lambda: exp_selection_efficiency.run(
            SelectionEfficiencyConfig(route_counts=(3, 4, 5), landmark_counts=(12, 16), brute_force_limit=16)
        ),
    )
    print()
    print(result.to_table())
    assert result.summary["greedy_speedup_vs_brute"] > 1.0
    for row in result.rows:
        if "brute_value" in row:
            assert abs(row["greedy_value"] - row["brute_value"]) < 1e-9
