"""E3 benchmark — questions per task under different orderings and selections.

Shape to check: ID3 ordering asks no more questions than asking everything,
and the selected landmark set is much smaller than the beneficial set.
"""

from repro.experiments import exp_questions
from repro.experiments.exp_questions import QuestionExperimentConfig




def test_e3_questions_per_task(run_once):
    result = run_once(
        lambda: exp_questions.run(QuestionExperimentConfig(route_counts=(2, 3, 4, 5), trials=3)),
    )
    print()
    print(result.to_table())
    for row in result.rows:
        assert row["id3_expected_questions"] <= row["ask_all_questions"] + 1e-9
        assert row["random_order_questions"] >= row["id3_expected_questions"] - 0.25
    assert result.summary["selected_vs_beneficial_ratio"] < 0.6
