"""E7 benchmark — early stopping: responses consumed vs. answer quality.

Shape to check: lower confidence thresholds consume fewer responses, and the
quality penalty relative to waiting for every worker stays small.
"""

from repro.experiments import exp_early_stop
from repro.experiments.exp_early_stop import EarlyStopExperimentConfig




def test_e7_early_stop(run_once, bench_scenario):
    result = run_once(
        lambda: exp_early_stop.run(
            bench_scenario,
            EarlyStopExperimentConfig(num_tasks=8, workers_per_task=5, confidence_thresholds=(0.6, 0.9, 1.01), seed=89),
        ),
    )
    print()
    print(result.to_table())
    rows = result.rows
    assert rows
    # The permissive threshold consumes no more responses than the disabled row.
    disabled = next(row for row in rows if row["confidence_threshold"] == "disabled")
    permissive = rows[0]
    assert permissive["mean_responses_used"] <= disabled["mean_responses_used"] + 1e-9
    assert permissive["mean_route_quality"] >= disabled["mean_route_quality"] - 0.25
