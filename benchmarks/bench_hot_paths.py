"""Hot-path microbenchmarks: compiled routing core vs. reference, spatial
index queries, and sparse vs. dense PMF training.

These benchmarks seed the repo's performance trajectory: run them through
``scripts/bench_to_json.py`` to (re)generate ``BENCH_hot_paths.json`` at the
repo root, which records per-benchmark timings and the compiled-vs-reference
speedups future perf PRs are judged against.

Every paired benchmark first asserts the fast path returns results identical
to the reference implementation on the same seeded inputs, so a timing win
can never hide a behaviour change.  The scenario is the 10×10 seeded grid
city named in the acceptance criteria.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.pmf import ProbabilisticMatrixFactorization
from repro.roadnet import reference
from repro.roadnet import shortest_path as fast
from repro.roadnet.generators import GridCityConfig, generate_grid_city, random_od_pairs
from repro.spatial import GridIndex, Point

CITY = GridCityConfig(rows=10, cols=10, block_size_m=220.0, seed=23)
K_ALTERNATIVES = 5


@pytest.fixture(scope="module")
def city():
    return generate_grid_city(CITY)


@pytest.fixture(scope="module")
def od_pairs(city):
    return random_od_pairs(city, 30, min_distance_m=800.0, seed=5)


# ------------------------------------------------------------------ dijkstra
def _run_dijkstra(module, network, pairs):
    return [module.dijkstra_path(network, o, d) for o, d in pairs]


@pytest.mark.benchmark(group="dijkstra")
def test_dijkstra_compiled(benchmark, city, od_pairs):
    paths = benchmark(_run_dijkstra, fast, city, od_pairs)
    assert paths == _run_dijkstra(reference, city, od_pairs)


@pytest.mark.benchmark(group="dijkstra")
def test_dijkstra_reference(benchmark, city, od_pairs):
    benchmark(_run_dijkstra, reference, city, od_pairs)


# --------------------------------------------------------------------- astar
def _run_astar(module, network, pairs):
    return [module.astar_path(network, o, d) for o, d in pairs]


@pytest.mark.benchmark(group="astar")
def test_astar_compiled(benchmark, city, od_pairs):
    paths = benchmark(_run_astar, fast, city, od_pairs)
    assert paths == _run_astar(reference, city, od_pairs)


@pytest.mark.benchmark(group="astar")
def test_astar_reference(benchmark, city, od_pairs):
    benchmark(_run_astar, reference, city, od_pairs)


# ----------------------------------------------------------------- k-shortest
def _run_yen(module, network, pairs):
    return [
        module.k_shortest_paths(network, o, d, K_ALTERNATIVES) for o, d in pairs[:10]
    ]


@pytest.mark.benchmark(group="k_shortest")
def test_k_shortest_compiled(benchmark, city, od_pairs):
    paths = benchmark(_run_yen, fast, city, od_pairs)
    assert paths == _run_yen(reference, city, od_pairs)


@pytest.mark.benchmark(group="k_shortest")
def test_k_shortest_reference(benchmark, city, od_pairs):
    benchmark(_run_yen, reference, city, od_pairs)


# ---------------------------------------------------------------- grid index
@pytest.fixture(scope="module")
def spatial_setup():
    rng = random.Random(23)
    index = GridIndex(cell_size=500.0)
    points = [
        (i, Point(rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0)))
        for i in range(4_000)
    ]
    index.insert_many(points)
    queries = [
        Point(rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0))
        for _ in range(200)
    ]
    return index, queries


@pytest.mark.benchmark(group="grid_index")
def test_grid_within_radius(benchmark, spatial_setup):
    index, queries = spatial_setup
    result = benchmark(lambda: [index.within_radius(q, 1_500.0) for q in queries])
    assert any(result)


@pytest.mark.benchmark(group="grid_index")
def test_grid_nearest(benchmark, spatial_setup):
    index, queries = spatial_setup
    result = benchmark(lambda: [index.nearest(q) for q in queries])
    assert all(r is not None for r in result)


# ----------------------------------------------------------------------- pmf
@pytest.fixture(scope="module")
def pmf_problem():
    rng = np.random.default_rng(23)
    latent = 8
    # Sized like a mid-size deployment (workers × landmarks); at the ~95%
    # sparsity of the familiarity matrix the dense path pays for the whole
    # n×m grid per iteration while the sparse path only touches the nnz.
    true_workers = rng.normal(0.0, 0.5, (latent, 400))
    true_landmarks = rng.normal(0.0, 0.5, (latent, 600))
    full = np.clip(true_workers.T @ true_landmarks, 0.0, None)
    mask = rng.random(full.shape) < 0.05  # ~95% unobserved, like familiarity
    return np.where(mask, full, 0.0)


def _fit_pmf(matrix, method):
    pmf = ProbabilisticMatrixFactorization(latent_dim=8, max_iterations=120)
    pmf.fit(matrix, method=method)
    return pmf.report.final_objective


@pytest.mark.benchmark(group="pmf_fit")
def test_pmf_fit_sparse(benchmark, pmf_problem):
    objective = benchmark(_fit_pmf, pmf_problem, "sparse")
    dense_objective = _fit_pmf(pmf_problem, "dense")
    assert objective == pytest.approx(dense_objective, rel=1e-6)


@pytest.mark.benchmark(group="pmf_fit")
def test_pmf_fit_dense(benchmark, pmf_problem):
    benchmark(_fit_pmf, pmf_problem, "dense")
