"""Hot-path microbenchmarks: compiled routing core vs. reference, spatial
index queries, sparse vs. dense PMF training, the crowd-evaluation pipeline
(compiled popularity routing, vectorized familiarity kernels, batched crowd
simulation) vs. its preserved sequential oracles, the sharded serving
engine vs. sequential ``recommend_batch``, the cross-batch pipelined
scheduler vs. the per-batch barrier, and the intra-component sub-shard
chain vs. the monolithic hotspot plan.

These benchmarks seed the repo's performance trajectory: run them through
``scripts/bench_to_json.py`` to (re)generate ``BENCH_hot_paths.json`` at the
repo root, which records per-benchmark timings and the compiled-vs-reference
speedups future perf PRs are judged against (``scripts/bench_check.py``
enforces them in CI).

Every paired benchmark first asserts the fast path returns results identical
to the reference implementation on the same seeded inputs, so a timing win
can never hide a behaviour change.  The scenario is the 10×10 seeded grid
city named in the acceptance criteria.
"""

from __future__ import annotations

import os
import pickle
import random
import shutil
import signal
import threading
import time

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.core.familiarity import FamiliarityModel
from repro.core.planner import CrowdPlanner
from repro.core.pmf import ProbabilisticMatrixFactorization
from repro.core.task_generation import TaskGenerator
from repro.datasets.synthetic_city import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import (
    LargeBatchWorkloadConfig,
    StreamWorkloadConfig,
    generate_large_batch_workload,
    generate_stream_workload,
)
from repro.exceptions import TaskGenerationError
from repro.roadnet import reference
from repro.roadnet import shortest_path as fast
from repro.roadnet.generators import GridCityConfig, generate_grid_city, random_od_pairs
from repro.routing.base import RouteQuery
from repro.routing.mpr import MostPopularRouteMiner
from repro.core.truth import TruthDatabase
from repro.serving.service import PooledBackend
from repro.serving import (
    RecommendationService,
    ShardedRecommendationEngine,
    TruthJournal,
    WorkspaceService,
    encode_truth_delta,
    recommendation_fingerprint,
)
from repro.spatial import GridIndex, Point

CITY = GridCityConfig(rows=10, cols=10, block_size_m=220.0, seed=23)
K_ALTERNATIVES = 5


@pytest.fixture(scope="module")
def city():
    return generate_grid_city(CITY)


@pytest.fixture(scope="module")
def od_pairs(city):
    return random_od_pairs(city, 30, min_distance_m=800.0, seed=5)


# ------------------------------------------------------------------ dijkstra
def _run_dijkstra(module, network, pairs):
    return [module.dijkstra_path(network, o, d) for o, d in pairs]


@pytest.mark.benchmark(group="dijkstra")
def test_dijkstra_compiled(benchmark, city, od_pairs):
    paths = benchmark(_run_dijkstra, fast, city, od_pairs)
    assert paths == _run_dijkstra(reference, city, od_pairs)


@pytest.mark.benchmark(group="dijkstra")
def test_dijkstra_reference(benchmark, city, od_pairs):
    benchmark(_run_dijkstra, reference, city, od_pairs)


# --------------------------------------------------------------------- astar
@pytest.fixture(scope="module")
def astar_pairs(city, od_pairs):
    """Repeated-goal od pairs: several far-apart origins per destination.

    Production traffic concentrates on hot destinations, which is exactly
    what the per-destination heuristic column amortises — the compiled A*
    pays the column build once per goal and indexes it thereafter.  The
    same minimum od distance as ``od_pairs`` keeps searches non-trivial.
    """
    goals = sorted({destination for _, destination in od_pairs})[:6]
    origins = sorted({origin for origin, _ in od_pairs})
    pairs = []
    for goal in goals:
        goal_location = city.node_location(goal)
        far = [
            origin
            for origin in origins
            if origin != goal
            and city.node_location(origin).distance_to(goal_location) >= 800.0
        ]
        pairs.extend((origin, goal) for origin in far[:5])
    return pairs


def _run_astar(module, network, pairs):
    return [module.astar_path(network, o, d) for o, d in pairs]


@pytest.mark.benchmark(group="astar")
def test_astar_compiled(benchmark, city, astar_pairs):
    paths = benchmark(_run_astar, fast, city, astar_pairs)
    assert paths == _run_astar(reference, city, astar_pairs)


@pytest.mark.benchmark(group="astar")
def test_astar_reference(benchmark, city, astar_pairs):
    benchmark(_run_astar, reference, city, astar_pairs)


# ----------------------------------------------------------------- k-shortest
def _run_yen(module, network, pairs):
    return [
        module.k_shortest_paths(network, o, d, K_ALTERNATIVES) for o, d in pairs[:10]
    ]


@pytest.mark.benchmark(group="k_shortest")
def test_k_shortest_compiled(benchmark, city, od_pairs):
    paths = benchmark(_run_yen, fast, city, od_pairs)
    assert paths == _run_yen(reference, city, od_pairs)


@pytest.mark.benchmark(group="k_shortest")
def test_k_shortest_reference(benchmark, city, od_pairs):
    benchmark(_run_yen, reference, city, od_pairs)


# ---------------------------------------------------------------- grid index
@pytest.fixture(scope="module")
def spatial_setup():
    rng = random.Random(23)
    index = GridIndex(cell_size=500.0)
    points = [
        (i, Point(rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0)))
        for i in range(4_000)
    ]
    index.insert_many(points)
    queries = [
        Point(rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0))
        for _ in range(200)
    ]
    return index, queries


@pytest.mark.benchmark(group="grid_index")
def test_grid_within_radius(benchmark, spatial_setup):
    index, queries = spatial_setup
    result = benchmark(lambda: [index.within_radius(q, 1_500.0) for q in queries])
    assert any(result)


@pytest.mark.benchmark(group="grid_index")
def test_grid_nearest(benchmark, spatial_setup):
    index, queries = spatial_setup
    result = benchmark(lambda: [index.nearest(q) for q in queries])
    assert all(r is not None for r in result)


# ----------------------------------------------------------------------- pmf
@pytest.fixture(scope="module")
def pmf_problem():
    rng = np.random.default_rng(23)
    latent = 8
    # Sized like a mid-size deployment (workers × landmarks); at the ~95%
    # sparsity of the familiarity matrix the dense path pays for the whole
    # n×m grid per iteration while the sparse path only touches the nnz.
    true_workers = rng.normal(0.0, 0.5, (latent, 400))
    true_landmarks = rng.normal(0.0, 0.5, (latent, 600))
    full = np.clip(true_workers.T @ true_landmarks, 0.0, None)
    mask = rng.random(full.shape) < 0.05  # ~95% unobserved, like familiarity
    return np.where(mask, full, 0.0)


def _fit_pmf(matrix, method):
    pmf = ProbabilisticMatrixFactorization(latent_dim=8, max_iterations=120)
    pmf.fit(matrix, method=method)
    return pmf.report.final_objective


@pytest.mark.benchmark(group="pmf_fit")
def test_pmf_fit_sparse(benchmark, pmf_problem):
    objective = benchmark(_fit_pmf, pmf_problem, "sparse")
    dense_objective = _fit_pmf(pmf_problem, "dense")
    assert objective == pytest.approx(dense_objective, rel=1e-6)


@pytest.mark.benchmark(group="pmf_fit")
def test_pmf_fit_dense(benchmark, pmf_problem):
    benchmark(_fit_pmf, pmf_problem, "dense")


# ---------------------------------------------------------------- popularity
@pytest.fixture(scope="module")
def popularity_setup(bench_scenario):
    """Paired MPR miners (compiled cost vector vs. closure) over one transfer
    network, plus the scenario's hot od-pairs as queries."""
    compiled_miner = MostPopularRouteMiner(bench_scenario.network, bench_scenario.store, min_support=2)
    reference_miner = MostPopularRouteMiner(
        bench_scenario.network,
        bench_scenario.store,
        min_support=2,
        transfer_network=compiled_miner.transfer,
        use_compiled_costs=False,
    )
    queries = [RouteQuery(origin, destination) for origin, destination in bench_scenario.hot_pairs]
    return compiled_miner, reference_miner, queries


def _run_popularity(miner, queries):
    return [miner.recommend_or_none(query) for query in queries]


@pytest.mark.benchmark(group="popularity_routing")
def test_popularity_compiled(benchmark, popularity_setup):
    compiled_miner, reference_miner, queries = popularity_setup
    routes = benchmark(_run_popularity, compiled_miner, queries)
    expected = _run_popularity(reference_miner, queries)
    assert [r.path if r else None for r in routes] == [r.path if r else None for r in expected]


@pytest.mark.benchmark(group="popularity_routing")
def test_popularity_reference(benchmark, popularity_setup):
    _, reference_miner, queries = popularity_setup
    benchmark(_run_popularity, reference_miner, queries)


# --------------------------------------------------------------- familiarity
@pytest.fixture(scope="module")
def familiarity_setup(bench_scenario):
    """A familiarity model plus a PMF-completed matrix ready to accumulate."""
    model = FamiliarityModel(bench_scenario.worker_pool, bench_scenario.catalog)
    raw = model.build_raw_matrix()
    completed = model.pmf.complete(raw) if raw.any() else raw
    return model, completed


@pytest.mark.benchmark(group="familiarity")
def test_familiarity_compiled(benchmark, familiarity_setup):
    model, completed = familiarity_setup
    accumulated = benchmark(model._accumulate, completed)
    assert np.array_equal(accumulated, model._accumulate_reference(completed))


@pytest.mark.benchmark(group="familiarity")
def test_familiarity_reference(benchmark, familiarity_setup):
    model, completed = familiarity_setup
    benchmark(model._accumulate_reference, completed)


# ----------------------------------------------------------- familiarity raw
@pytest.mark.benchmark(group="familiarity_raw")
def test_familiarity_raw_compiled(benchmark, familiarity_setup):
    model, _ = familiarity_setup
    matrix = benchmark(model.build_raw_matrix)
    oracle = model.build_raw_matrix_reference()
    # The numpy kernel may differ from the scalar loop by an ulp (np.hypot /
    # np.exp); the "no information" zero pattern must agree exactly.
    np.testing.assert_allclose(matrix, oracle, rtol=1e-12, atol=1e-15)
    assert np.array_equal(matrix == 0.0, oracle == 0.0)


@pytest.mark.benchmark(group="familiarity_raw")
def test_familiarity_raw_reference(benchmark, familiarity_setup):
    model, _ = familiarity_setup
    benchmark(model.build_raw_matrix_reference)


# --------------------------------------------------------------- crowd batch
@pytest.fixture(scope="module")
def crowd_setup(bench_scenario):
    """Crowd tasks generated from the scenario plus the full worker crew."""
    generator = TaskGenerator(bench_scenario.calibrator, bench_scenario.catalog)
    tasks = []
    for query in bench_scenario.sample_queries(40, seed=501):
        candidates = []
        seen = set()
        for source in bench_scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            tasks.append(generator.generate(query, candidates))
        except TaskGenerationError:
            continue
        if len(tasks) >= 8:
            break
    if not tasks:
        pytest.skip("no crowd task could be generated")
    return bench_scenario.crowd, tasks, bench_scenario.worker_pool.ids()


def _run_crowd(collect, crowd, tasks, worker_ids):
    # Task RNG derivation is content-keyed, so every timing round (and the
    # batched/sequential pair) samples identical randomness by construction.
    return [collect(task, worker_ids) for task in tasks]


@pytest.mark.benchmark(group="crowd_batch")
def test_crowd_batch_compiled(benchmark, crowd_setup):
    crowd, tasks, worker_ids = crowd_setup
    responses = benchmark(_run_crowd, crowd.collect_responses, crowd, tasks, worker_ids)
    assert responses == _run_crowd(crowd.collect_responses_sequential, crowd, tasks, worker_ids)


@pytest.mark.benchmark(group="crowd_batch")
def test_crowd_batch_reference(benchmark, crowd_setup):
    crowd, tasks, worker_ids = crowd_setup
    benchmark(_run_crowd, crowd.collect_responses_sequential, crowd, tasks, worker_ids)


# ------------------------------------------------------------ crowd columnar
@pytest.mark.benchmark(group="crowd_columnar")
def test_crowd_columnar_compiled(benchmark, crowd_setup):
    """Columnar crowd responses (``ResponseBlock``) vs the object path.

    The columnar path walks a compiled question tree appending scalars to
    flat columns; the object-path oracle builds ``Answer``/``WorkerResponse``
    trees eagerly.  Like the astar/popularity suites, the fast path's
    steady state includes its per-task amortization (compiled tree, RNG
    seed, crew accuracy rows — pure functions of task content) while the
    preserved oracle recomputes everything per call: the timed shape is the
    experiment harness's, which re-collects identical tasks across sweep
    points.  Materializing every timed block must reproduce the oracle's
    objects exactly."""
    crowd, tasks, worker_ids = crowd_setup
    blocks = benchmark(_run_crowd, crowd.collect_responses_block, crowd, tasks, worker_ids)
    expected = _run_crowd(crowd.collect_responses_objects, crowd, tasks, worker_ids)
    assert [block.to_responses() for block in blocks] == expected


@pytest.mark.benchmark(group="crowd_columnar")
def test_crowd_columnar_reference(benchmark, crowd_setup):
    """The preserved object path (eager answer-object construction)."""
    crowd, tasks, worker_ids = crowd_setup
    benchmark(_run_crowd, crowd.collect_responses_objects, crowd, tasks, worker_ids)


# --------------------------------------------------------------- crowd shard
@pytest.fixture(scope="module")
def serving_city():
    """An 18x18 city with independent od neighbourhoods, one pre-fitted
    familiarity model, and a planner factory — shared by every serving
    benchmark (``crowd_shard`` and ``crowd_stream``).

    Answers do not depend on worker answer histories or reward balances
    while the familiarity model is frozen, so planners built by the factory
    start from identical serving behaviour and one sequential oracle per
    workload is valid for every subsequent run.
    """
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=18,
            cols=18,
            block_size_m=320.0,
            num_landmarks=110,
            num_drivers=18,
            trips_per_driver=10,
            num_hot_pairs=14,
            num_workers=28,
            seed=31,
        )
    )
    familiarity = scenario.build_planner().familiarity

    def build_planner():
        return CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=scenario.sources,
            worker_pool=scenario.worker_pool,
            crowd_backend=scenario.crowd,
            config=scenario.config.planner_config,
            familiarity=familiarity,
        )

    return scenario, build_planner


@pytest.fixture(scope="module")
def shard_setup(serving_city):
    """A clustered large-batch workload plus the sequential oracle.

    The sequential oracle runs once here; before any timing, the sharded
    engine is asserted bit-identical to it for worker counts {1, 2, 4} — the
    acceptance gate of the serving subsystem.
    """
    scenario, build_planner = serving_city
    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=240, num_clusters=6, dominant_destination_fraction=0.15, seed=97
        ),
    )
    oracle = [
        recommendation_fingerprint(result)
        for result in build_planner().recommend_batch(workload)
    ]
    # Equivalence before timing: workers {1, 2, 4} must match the oracle.
    for workers in (1, 2, 4):
        engine = ShardedRecommendationEngine(build_planner(), workers=workers)
        sharded = [recommendation_fingerprint(r) for r in engine.recommend_batch(workload)]
        assert sharded == oracle, f"sharded serving diverged from sequential at workers={workers}"
    return build_planner, workload, oracle


def _run_sharded(build_planner, workload, workers):
    engine = ShardedRecommendationEngine(build_planner(), workers=workers)
    return engine.recommend_batch(workload)


@pytest.mark.benchmark(group="crowd_shard")
def test_crowd_shard_compiled(benchmark, shard_setup):
    """Sharded serving (2 forked workers; ratios are core-count dependent —
    a single-core container records the sharding overhead, multi-core CI the
    speedup — so the trajectory gate is calibrated by the committed run)."""
    build_planner, workload, oracle = shard_setup
    results = benchmark.pedantic(
        _run_sharded, args=(build_planner, workload, 2), rounds=3, iterations=1, warmup_rounds=0
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


@pytest.mark.benchmark(group="crowd_shard")
def test_crowd_shard_reference(benchmark, shard_setup):
    """The sequential oracle path on an identically constructed planner."""
    build_planner, workload, oracle = shard_setup
    results = benchmark.pedantic(
        lambda: build_planner().recommend_batch(workload),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


# -------------------------------------------------------------- crowd stream
@pytest.fixture(scope="module")
def stream_setup(serving_city):
    """A steady batch stream plus the sequential oracle's fingerprints.

    Before any timing, both contenders are asserted bit-identical to the
    sequential oracle over the whole stream: the persistent-pool service
    (fork once, stream truth deltas) and the per-batch shim (fork every
    batch) — the amortisation this suite exists to measure.
    """
    scenario, build_planner = serving_city
    batches = generate_stream_workload(
        scenario.network,
        StreamWorkloadConfig(
            num_batches=6, batch_size=40, num_clusters=6,
            dominant_destination_fraction=0.15, seed=97,
        ),
    )
    oracle_planner = build_planner()
    oracle = []
    for batch in batches:
        oracle.extend(
            recommendation_fingerprint(result)
            for result in oracle_planner.recommend_batch(batch)
        )
    for runner in (_run_stream_persistent, _run_stream_per_batch):
        fingerprints = [recommendation_fingerprint(r) for r in runner(build_planner, batches)]
        assert fingerprints == oracle, f"{runner.__name__} diverged from the sequential oracle"
    return build_planner, batches, oracle


def _run_stream_persistent(build_planner, batches):
    """One service session: fork the pool once, then stream every batch."""
    planner = build_planner()
    config = ServiceConfig.from_planner_config(planner.config, backend="pooled", pool_size=2)
    results = []
    with RecommendationService(planner, config) as service:
        for batch in batches:
            results.extend(
                response.result for response in service.results(service.submit(batch))
            )
    return results


def _run_stream_per_batch(build_planner, batches):
    """The deprecated shim: a fresh fork + truth clone for every batch."""
    engine = ShardedRecommendationEngine(build_planner(), workers=2)
    results = []
    for batch in batches:
        results.extend(engine.recommend_batch(batch))
    return results


@pytest.mark.benchmark(group="crowd_stream")
def test_crowd_stream_compiled(benchmark, stream_setup):
    """Persistent pool serving a steady stream (ratios are core-count
    dependent, like ``crowd_shard`` — but the fork-per-batch overhead the
    persistent pool amortises is paid even on a single core, so the ratio
    stays above 1 everywhere)."""
    build_planner, batches, oracle = stream_setup
    results = benchmark.pedantic(
        _run_stream_persistent, args=(build_planner, batches), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


@pytest.mark.benchmark(group="crowd_stream")
def test_crowd_stream_reference(benchmark, stream_setup):
    """The per-batch-fork baseline on an identically constructed planner."""
    build_planner, batches, oracle = stream_setup
    results = benchmark.pedantic(
        _run_stream_per_batch, args=(build_planner, batches), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


# ------------------------------------------------------------ crowd pipeline
def _run_stream_windowed(build_planner, batches, pipeline_window):
    """One service session, whole stream submitted before collecting, so
    consecutive batches are pending together and the configured window can
    engage (window 1 is the per-batch barrier on the same client shape)."""
    planner = build_planner()
    config = ServiceConfig.from_planner_config(
        planner.config,
        backend="pooled",
        pool_size=2,
        pipeline_window=pipeline_window,
        max_pending_batches=max(16, len(batches)),
    )
    results = []
    with RecommendationService(planner, config) as service:
        tickets = [service.submit(batch) for batch in batches]
        for ticket in tickets:
            results.extend(response.result for response in service.results(ticket))
    return results


@pytest.fixture(scope="module")
def pipeline_setup(serving_city):
    """A steady stream plus the sequential oracle, gated before timing.

    The pipelined scheduler must be fingerprint-identical to the sequential
    oracle for every window size it will be timed at (and one more for
    luck): windows {1, 2, 4} all run the full stream and compare before a
    single round is measured, so a timing win can never hide a scheduling
    divergence.
    """
    scenario, build_planner = serving_city
    batches = generate_stream_workload(
        scenario.network,
        StreamWorkloadConfig(
            num_batches=8, batch_size=30, num_clusters=6,
            dominant_destination_fraction=0.15, seed=101,
        ),
    )
    oracle_planner = build_planner()
    oracle = []
    for batch in batches:
        oracle.extend(
            recommendation_fingerprint(result)
            for result in oracle_planner.recommend_batch(batch)
        )
    for window in (1, 2, 4):
        fingerprints = [
            recommendation_fingerprint(r)
            for r in _run_stream_windowed(build_planner, batches, window)
        ]
        assert fingerprints == oracle, (
            f"pipelined serving diverged from the sequential oracle at window={window}"
        )
    return build_planner, batches, oracle


@pytest.mark.benchmark(group="crowd_pipeline")
def test_crowd_pipeline_compiled(benchmark, pipeline_setup):
    """The cross-batch DAG dispatcher at window 4 over the steady stream.

    Ratios are core-count dependent like the other serving suites: on a
    single core the DAG walk adds scheduling overhead with nothing to
    overlap onto, so the committed ratio — not 1.0 — is the trajectory
    gate; on multi-core hardware the overlap of independent shards across
    batch boundaries is the win this suite exists to measure."""
    build_planner, batches, oracle = pipeline_setup
    results = benchmark.pedantic(
        _run_stream_windowed, args=(build_planner, batches, 4), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


@pytest.mark.benchmark(group="crowd_pipeline")
def test_crowd_pipeline_reference(benchmark, pipeline_setup):
    """The per-batch barrier (window 1) on the identical client shape."""
    build_planner, batches, oracle = pipeline_setup
    results = benchmark.pedantic(
        _run_stream_windowed, args=(build_planner, batches, 1), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


# -------------------------------------------------------------- crowd tenant
TENANT_NAMES = ("alpha", "beta", "gamma")


def _run_tenants_shared_pool(build_planner, tenant_batches):
    """One shared pool for every tenant: a single ``WorkspaceService`` forks
    its workers once, then the tenants' batches interleave round-robin over
    the warm pool (workers keep per-tenant truth bases between turns)."""
    template = build_planner()
    config = ServiceConfig.from_planner_config(
        template.config, backend="pooled", pool_size=2
    )
    results = {name: [] for name in tenant_batches}
    with WorkspaceService(template, config=config) as service:
        for name in tenant_batches:
            service.create_workspace(name)
        rounds = max(len(batches) for batches in tenant_batches.values())
        for index in range(rounds):
            for name, batches in tenant_batches.items():
                if index >= len(batches):
                    continue
                workspace = service.workspace(name)
                results[name].extend(
                    response.result
                    for response in workspace.results(workspace.submit(batches[index]))
                )
    return results


def _run_tenants_dedicated(build_planner, tenant_batches):
    """The isolation baseline: one dedicated ``RecommendationService`` per
    tenant, each forking (and tearing down) its own two-worker pool."""
    results = {}
    for name, batches in tenant_batches.items():
        planner = build_planner()
        config = ServiceConfig.from_planner_config(
            planner.config, backend="pooled", pool_size=2
        )
        with RecommendationService(planner, config) as service:
            collected = []
            for batch in batches:
                collected.extend(
                    response.result for response in service.results(service.submit(batch))
                )
        results[name] = collected
    return results


@pytest.fixture(scope="module")
def tenant_setup(serving_city):
    """Three tenants' batch streams plus per-tenant sequential oracles.

    Before any timing, both contenders — the interleaved shared-pool
    workspaces and the sequential dedicated services — are asserted
    fingerprint-identical, tenant by tenant, to a sequential oracle run on a
    dedicated planner.  A timing result can therefore never hide a
    cross-tenant truth leak or ordering divergence.
    """
    scenario, build_planner = serving_city
    tenant_batches = {}
    for offset, name in enumerate(TENANT_NAMES):
        tenant_batches[name] = generate_stream_workload(
            scenario.network,
            StreamWorkloadConfig(
                num_batches=2, batch_size=25, num_clusters=5,
                dominant_destination_fraction=0.15, seed=211 + offset,
            ),
        )
    oracles = {}
    for name, batches in tenant_batches.items():
        planner = build_planner()
        oracles[name] = [
            recommendation_fingerprint(result)
            for batch in batches
            for result in planner.recommend_batch(batch)
        ]
    for runner in (_run_tenants_shared_pool, _run_tenants_dedicated):
        results = runner(build_planner, tenant_batches)
        for name in TENANT_NAMES:
            fingerprints = [recommendation_fingerprint(r) for r in results[name]]
            assert fingerprints == oracles[name], (
                f"{runner.__name__} diverged from tenant {name}'s sequential oracle"
            )
    return build_planner, tenant_batches, oracles


def _assert_tenant_oracles(results, oracles):
    for name in TENANT_NAMES:
        assert [recommendation_fingerprint(r) for r in results[name]] == oracles[name]


@pytest.mark.benchmark(group="crowd_tenant")
def test_crowd_tenant_compiled(benchmark, tenant_setup):
    """Interleaved multi-tenant serving over one shared warm pool.

    The shared pool forks two workers once for all three tenants, and the
    workers' per-tenant warm truth bases survive the interleaving — the
    reference pays a full pool fork + teardown per tenant.  Like the other
    serving suites the ratio is core-count dependent, but the fork
    amortisation is paid even on a single core, so the ratio stays above 1
    everywhere."""
    build_planner, tenant_batches, oracles = tenant_setup
    results = benchmark.pedantic(
        _run_tenants_shared_pool, args=(build_planner, tenant_batches),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["tenants"] = len(TENANT_NAMES)
    benchmark.extra_info["pool_forks"] = 2
    _assert_tenant_oracles(results, oracles)


@pytest.mark.benchmark(group="crowd_tenant")
def test_crowd_tenant_reference(benchmark, tenant_setup):
    """Sequential dedicated per-tenant services on identical workloads."""
    build_planner, tenant_batches, oracles = tenant_setup
    results = benchmark.pedantic(
        _run_tenants_dedicated, args=(build_planner, tenant_batches),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["tenants"] = len(TENANT_NAMES)
    benchmark.extra_info["pool_forks"] = 2 * len(TENANT_NAMES)
    _assert_tenant_oracles(results, oracles)


# ------------------------------------------------------------- crowd hotspot
HOTSPOT_FRACTION = 0.1


def _run_hotspot(build_planner, workload, max_shard_fraction):
    """One batch through the pooled service, optionally hotspot-split."""
    planner = build_planner()
    config = ServiceConfig.from_planner_config(
        planner.config,
        backend="pooled",
        pool_size=2,
        max_shard_fraction=max_shard_fraction,
    )
    with RecommendationService(planner, config) as service:
        responses = service.results(service.submit(workload))
        stats = service.statistics()["sharding"]
    return [response.result for response in responses], stats


@pytest.fixture(scope="module")
def hotspot_setup(serving_city):
    """A city-center hotspot batch (30% of queries share one destination)
    plus the sequential oracle and the skew profile of the split plan.

    Before any timing, the sub-shard chain is asserted fingerprint-identical
    to the sequential oracle at fractions {0.25, 0.1} — the tighter one
    forcing a genuine multi-hop hand-off chain — so a timing result can
    never hide a visibility or ordering divergence in the pipeline.
    """
    scenario, build_planner = serving_city
    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=160, num_clusters=5, dominant_destination_fraction=0.3, seed=77
        ),
    )
    oracle = [
        recommendation_fingerprint(result)
        for result in build_planner().recommend_batch(workload)
    ]
    stats = None
    for fraction in (0.25, HOTSPOT_FRACTION):
        results, stats = _run_hotspot(build_planner, workload, fraction)
        fingerprints = [recommendation_fingerprint(r) for r in results]
        assert fingerprints == oracle, (
            f"hotspot chain diverged from the sequential oracle at fraction={fraction}"
        )
    assert stats is not None and stats["chain_depth"] >= 2, (
        "hotspot workload failed to produce a sub-shard chain — the suite "
        "would be timing plain sharding"
    )
    return build_planner, workload, oracle, stats


@pytest.mark.benchmark(group="crowd_hotspot")
def test_crowd_hotspot_compiled(benchmark, hotspot_setup):
    """The dominant component staged as a sub-shard hand-off chain.

    Ratios are core-count dependent like the other serving suites: on a
    single core the extra plan staging and delta hand-offs are pure
    overhead, so the committed ratio — not 1.0 — is the trajectory gate; on
    multi-core hardware the chained slices free the second worker to run
    the small shards concurrently instead of idling behind the hotspot.
    The skew profile (largest shard fraction before/after, chain depth)
    rides along in ``extra_info`` for the CI delta table."""
    build_planner, workload, oracle, stats = hotspot_setup
    results, _ = benchmark.pedantic(
        _run_hotspot,
        args=(build_planner, workload, HOTSPOT_FRACTION),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["largest_shard_fraction_before"] = round(
        stats["largest_shard_fraction_before"], 4
    )
    benchmark.extra_info["largest_shard_fraction_after"] = round(
        stats["largest_shard_fraction_after"], 4
    )
    benchmark.extra_info["chain_depth"] = stats["chain_depth"]
    assert [recommendation_fingerprint(r) for r in results] == oracle


@pytest.mark.benchmark(group="crowd_hotspot")
def test_crowd_hotspot_reference(benchmark, hotspot_setup):
    """The monolithic plan (no splitting) on the identical service shape."""
    build_planner, workload, oracle, _ = hotspot_setup
    results, _ = benchmark.pedantic(
        _run_hotspot,
        args=(build_planner, workload, None),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert [recommendation_fingerprint(r) for r in results] == oracle


# ------------------------------------------------------------ crowd straggler
STRAGGLER_TOTAL_S = 1.6
STRAGGLER_HEDGE_S = 0.1


class _OneStragglerPool(PooledBackend):
    """A pool whose second dispatch lands on a duty-cycle straggler.

    The chosen worker is SIGSTOPped immediately after the dispatch and then
    run on brief CONT slices (so it keeps heartbeating — the silence
    supervisor never fires) until ``STRAGGLER_TOTAL_S`` has elapsed, ending
    in a permanent SIGCONT.  This is the crawling-but-alive worker hedged
    execution exists to absorb; without hedging the batch stalls until the
    duty cycle ends.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._straggler_ordinal = 0
        self._straggler_threads = []

    def _dispatch(self, worker, jobs):
        ordinal = self._straggler_ordinal
        self._straggler_ordinal += 1
        sent = super()._dispatch(worker, jobs)
        if sent and ordinal == 1:
            self._stall(worker.pid)
        return sent

    def _stall(self, pid):
        try:
            os.kill(pid, signal.SIGSTOP)
        except ProcessLookupError:
            return

        def duty_cycle():
            deadline = time.monotonic() + STRAGGLER_TOTAL_S
            try:
                while time.monotonic() < deadline:
                    time.sleep(0.2)
                    os.kill(pid, signal.SIGCONT)
                    time.sleep(0.02)
                    if time.monotonic() >= deadline:
                        return
                    os.kill(pid, signal.SIGSTOP)
            except ProcessLookupError:
                return
            finally:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass

        thread = threading.Thread(target=duty_cycle, daemon=True)
        thread.start()
        self._straggler_threads.append(thread)

    def close(self):
        super().close()
        for thread in self._straggler_threads:
            thread.join(timeout=STRAGGLER_TOTAL_S + 1.0)
        self._straggler_threads.clear()


def _straggler_service(build_planner, hedge_after_s):
    backend = _OneStragglerPool(pool_size=2, hedge_after_s=hedge_after_s)
    return RecommendationService(build_planner(), backend=backend)


def _serve_batch(service, workload):
    return [response.result for response in service.results(service.submit(workload))]


def _run_straggler(build_planner, workload, hedge_after_s):
    """One batch through a two-worker pool with one injected straggler."""
    service = _straggler_service(build_planner, hedge_after_s)
    try:
        results = _serve_batch(service, workload)
        stats = service.statistics()["resilience"]
    finally:
        service.close()
    return results, stats


def _time_straggler(benchmark, build_planner, workload, hedge_after_s):
    """Time the serving latency only: a fresh service (pool fork + straggler
    injection) is built per round in untimed setup, and teardown — which for
    the hedged contender must SIGKILL a still-stopped lame loser — happens
    untimed afterwards.  Both contenders therefore time exactly the
    submit-to-results path their operators would measure as batch latency."""
    services = []

    def setup():
        service = _straggler_service(build_planner, hedge_after_s)
        services.append(service)
        return (service, workload), {}

    try:
        results = benchmark.pedantic(
            _serve_batch, setup=setup, rounds=3, iterations=1, warmup_rounds=0
        )
        stats = services[-1].statistics()["resilience"]
    finally:
        for service in services:
            service.close()
    return results, stats


@pytest.fixture(scope="module")
def straggler_setup(serving_city):
    """A small batch, its sequential oracle, and the resilience gate.

    Before any timing, both contenders — hedged and stall-until-done — run
    once with the injected straggler and are asserted fingerprint-identical
    to the sequential oracle; the hedged run must actually win at least one
    hedge race (else the suite would be timing plain sharding), and neither
    run may have tripped the hang supervisor (a straggler is slow, not
    silent — killing it would be the wrong mechanism winning).
    """
    scenario, build_planner = serving_city
    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=60, num_clusters=6, dominant_destination_fraction=0.15, seed=131
        ),
    )
    oracle = [
        recommendation_fingerprint(result)
        for result in build_planner().recommend_batch(workload)
    ]
    results, hedged_stats = _run_straggler(build_planner, workload, STRAGGLER_HEDGE_S)
    assert [recommendation_fingerprint(r) for r in results] == oracle, (
        "hedged serving diverged from the sequential oracle under a straggler"
    )
    assert hedged_stats["hedges_won"] >= 1, (
        "the straggler resolved before a hedge fired — the suite would be "
        "timing plain sharding"
    )
    results, plain_stats = _run_straggler(build_planner, workload, None)
    assert [recommendation_fingerprint(r) for r in results] == oracle, (
        "unhedged serving diverged from the sequential oracle under a straggler"
    )
    assert plain_stats["hedges_issued"] == 0
    return build_planner, workload, oracle


@pytest.mark.benchmark(group="crowd_straggler")
def test_crowd_straggler_compiled(benchmark, straggler_setup):
    """Hedged execution under one injected straggler.

    The fast worker finishes its shard, the straggler's shard is hedged to
    it after ``STRAGGLER_HEDGE_S``, and the batch completes at roughly the
    cost of re-running that shard — independent of how long the straggler
    crawls.  The reference pays the full duty cycle, so the ratio scales
    with ``STRAGGLER_TOTAL_S`` rather than core count."""
    build_planner, workload, oracle = straggler_setup
    results, stats = _time_straggler(benchmark, build_planner, workload, STRAGGLER_HEDGE_S)
    benchmark.extra_info["hedges_won"] = stats["hedges_won"]
    benchmark.extra_info["straggler_stall_s"] = STRAGGLER_TOTAL_S
    assert [recommendation_fingerprint(r) for r in results] == oracle


@pytest.mark.benchmark(group="crowd_straggler")
def test_crowd_straggler_reference(benchmark, straggler_setup):
    """The stall-until-done baseline: no hedging, the batch rides out the
    straggler's whole duty cycle on the identical service shape."""
    build_planner, workload, oracle = straggler_setup
    results, stats = _time_straggler(benchmark, build_planner, workload, None)
    benchmark.extra_info["hedges_won"] = stats["hedges_won"]
    benchmark.extra_info["straggler_stall_s"] = STRAGGLER_TOTAL_S
    assert [recommendation_fingerprint(r) for r in results] == oracle


# ---------------------------------------------------------------- truth wire
@pytest.fixture(scope="module")
def truth_wire_setup(serving_city, shard_setup):
    """The large-batch truth delta, plus the serving acceptance gate.

    Before any timing: (1) service responses must be fingerprint-identical
    to the sequential oracle on the columnar wire for the inline backend and
    pooled backends with pools {1, 2, 4}; (2) the codec round-trip must be
    exact; (3) the columnar payload must be at least 3x smaller than the
    pickled object delta — the acceptance criterion of the wire format.
    """
    _scenario, build_planner = serving_city
    _, workload, oracle = shard_setup

    def run_service(backend_name, pool_size=None):
        planner = build_planner()
        config = ServiceConfig.from_planner_config(
            planner.config, backend=backend_name, pool_size=pool_size, truth_wire="columnar"
        )
        with RecommendationService(planner, config) as service:
            return [
                recommendation_fingerprint(response.result)
                for response in service.results(service.submit(workload))
            ]

    assert run_service("inline") == oracle, "inline service diverged from the oracle"
    for pool in (1, 2, 4):
        assert run_service("pooled", pool) == oracle, (
            f"pooled service (columnar wire) diverged from the oracle at pool={pool}"
        )

    delta_planner = build_planner()
    delta_planner.recommend_batch(workload)
    delta = delta_planner.truths.all()
    network = delta_planner.network
    block = encode_truth_delta(delta, network)
    assert block.decode_truths(network) == delta, "codec round trip is not exact"
    pickled_bytes = len(pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL))
    columnar_bytes = block.wire_bytes()
    assert columnar_bytes * 3 <= pickled_bytes, (
        f"columnar payload {columnar_bytes}B is not >= 3x smaller than pickle {pickled_bytes}B"
    )
    return delta, network, columnar_bytes, pickled_bytes


def _wire_roundtrip_columnar(delta, network):
    block = pickle.loads(
        pickle.dumps(encode_truth_delta(delta, network), protocol=pickle.HIGHEST_PROTOCOL)
    )
    return block.decode_truths(network)


def _wire_roundtrip_pickle(delta, _network):
    return pickle.loads(pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL))


@pytest.mark.benchmark(group="truth_wire")
def test_truth_wire_compiled(benchmark, truth_wire_setup):
    """Columnar codec: encode + pickle + unpickle + decode of the delta.

    The headline win is bytes on the wire (several times smaller — recorded
    in ``extra_info`` and surfaced by ``bench_check``); the time ratio vs
    raw pickle trades a little codec CPU for that payload cut, so its
    committed value sits near 1x rather than above it."""
    delta, network, columnar_bytes, _ = truth_wire_setup
    decoded = benchmark(_wire_roundtrip_columnar, delta, network)
    assert decoded == delta
    benchmark.extra_info["wire_bytes"] = columnar_bytes
    benchmark.extra_info["truths"] = len(delta)


@pytest.mark.benchmark(group="truth_wire")
def test_truth_wire_reference(benchmark, truth_wire_setup):
    """The pickled-object fallback codec on the same delta."""
    delta, network, _, pickled_bytes = truth_wire_setup
    decoded = benchmark(_wire_roundtrip_pickle, delta, network)
    assert decoded == delta
    benchmark.extra_info["wire_bytes"] = pickled_bytes
    benchmark.extra_info["truths"] = len(delta)


# ------------------------------------------------------------- truth journal
def _dir_bytes(directory):
    return sum(
        entry.stat().st_size for entry in directory.iterdir() if entry.is_file()
    )


def _run_journal_checkpoints(chunks, network, directory):
    """Incremental durability: append each batch's delta to the journal
    (columnar codec, compaction rotating snapshots), then reopen and replay
    — the full crash-recovery read path (snapshot + tail scan + decode)."""
    if directory.exists():
        shutil.rmtree(directory)
    store = TruthDatabase(network)
    with TruthJournal(directory, fsync=False, snapshot_every_truths=128) as journal:
        for chunk in chunks:
            store.adopt_all(chunk)
            journal.append(chunk, store)
    with TruthJournal(directory, fsync=False) as journal:
        return journal.replay(network)


def _run_pickle_checkpoints(chunks, network, directory):
    """The naive durability baseline: after every batch, atomically rewrite
    one pickle of the *entire* accumulated truth list, then reload it."""
    if directory.exists():
        shutil.rmtree(directory)
    directory.mkdir(parents=True)
    path = directory / "truths.pkl"
    accumulated = []
    for chunk in chunks:
        accumulated.extend(chunk)
        tmp = directory / "truths.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(accumulated, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    with open(path, "rb") as handle:
        return pickle.load(handle)


@pytest.fixture(scope="module")
def journal_setup(truth_wire_setup, tmp_path_factory):
    """The large-batch delta split into per-batch appends, plus the gate.

    Before any timing, both durability strategies must reload exactly the
    source truths, and the journal directory must not be larger on disk than
    the last whole-store pickle alone (it holds the same information as a
    snapshot + columnar deltas).  ``fsync`` is off for both contenders so the
    timing compares codec + I/O volume, not device sync latency.
    """
    delta, network, _, _ = truth_wire_setup
    # Small per-batch deltas (a serving batch verifies a handful of truths):
    # the shape under which incremental appends beat whole-store rewrites.
    chunks = [delta[i : i + 8] for i in range(0, len(delta), 8)]
    root = tmp_path_factory.mktemp("bench_truth_journal")
    assert _run_journal_checkpoints(chunks, network, root / "gate_journal") == delta
    assert _run_pickle_checkpoints(chunks, network, root / "gate_pickle") == delta
    journal_bytes = _dir_bytes(root / "gate_journal")
    pickle_bytes = _dir_bytes(root / "gate_pickle")
    assert journal_bytes <= pickle_bytes, (
        f"journal dir {journal_bytes}B outgrew the single whole-store pickle "
        f"{pickle_bytes}B"
    )
    return chunks, delta, network, root, journal_bytes, pickle_bytes


@pytest.mark.benchmark(group="truth_journal")
def test_truth_journal_compiled(benchmark, journal_setup):
    """Journal a batch stream then recover it (append + compact + replay).

    The reference rewrites the whole store per batch, so its write cost
    grows quadratically with stream length while the journal's stays linear
    — the recorded ratio understates the win on longer streams.  Bytes
    resident on disk at the end ride along as ``wire_bytes``."""
    chunks, delta, network, root, journal_bytes, _ = journal_setup
    replayed = benchmark(_run_journal_checkpoints, chunks, network, root / "timed_journal")
    assert replayed == delta
    benchmark.extra_info["wire_bytes"] = journal_bytes
    benchmark.extra_info["truths"] = len(delta)
    benchmark.extra_info["batches"] = len(chunks)


@pytest.mark.benchmark(group="truth_journal")
def test_truth_journal_reference(benchmark, journal_setup):
    """Pickle-the-world checkpointing of the same stream, then reload."""
    chunks, delta, network, root, _, pickle_bytes = journal_setup
    replayed = benchmark(_run_pickle_checkpoints, chunks, network, root / "timed_pickle")
    assert replayed == delta
    benchmark.extra_info["wire_bytes"] = pickle_bytes
    benchmark.extra_info["truths"] = len(delta)
    benchmark.extra_info["batches"] = len(chunks)
