"""F1 benchmark — distribution of inferred landmark significance.

Shape to check: the HITS-style inference produces a skewed distribution (a few
famous landmarks, a long obscure tail).
"""

from repro.experiments import exp_significance




def test_f1_significance_distribution(run_once, bench_scenario):
    result = run_once(lambda: exp_significance.run(bench_scenario))
    print()
    print(result.to_table())
    assert result.summary["gini"] > 0.2
    assert result.summary["top_10_share"] > 10 / len(bench_scenario.catalog)
    significances = [row["significance"] for row in result.rows]
    assert significances == sorted(significances)
    assert significances[-1] == 1.0
