"""E2 benchmark — truth reuse over a repetitive request stream.

Shape to check: the cumulative truth hit rate is substantial once the stream
has warmed up, so the crowd is consulted for only a fraction of requests.
"""

from repro.experiments import exp_truth_reuse
from repro.experiments.exp_truth_reuse import TruthReuseExperimentConfig




def test_e2_truth_reuse(run_once, bench_scenario):
    result = run_once(
        lambda: exp_truth_reuse.run(
            bench_scenario,
            TruthReuseExperimentConfig(num_queries=60, num_distinct_pairs=12, num_buckets=4, seed=67),
        ),
    )
    print()
    print(result.to_table())
    assert result.summary["requests"] > 0
    assert 0.0 < result.summary["overall_truth_hit_rate"] <= 1.0
    # Later buckets should reuse truths at least as much as the first bucket.
    first, last = result.rows[0], result.rows[-1]
    assert last["truth_hit_rate"] >= first["truth_hit_rate"] - 0.1
