"""E8 benchmark — sharded serving throughput sweep.

Shape to check: every worker count answers the large-batch workload with
results identical to the sequential oracle (the engine's correctness
contract).  Speedup is machine-dependent and intentionally not asserted —
the dedicated ``crowd_shard`` suite in ``bench_hot_paths.py`` records the
timing trajectory.
"""

from repro.experiments import exp_throughput
from repro.experiments.exp_throughput import ThroughputExperimentConfig


def test_e8_throughput(run_once, bench_scenario):
    result = run_once(
        lambda: exp_throughput.run(
            bench_scenario,
            ThroughputExperimentConfig(worker_counts=(1, 2), num_queries=80, seed=131),
        ),
    )
    print()
    print(result.to_table())
    assert result.summary["all_runs_identical_to_sequential"] is True
    for row in result.rows:
        assert row["identical_to_sequential"] is True
        assert row["queries_per_s"] > 0
