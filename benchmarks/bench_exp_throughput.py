"""E8 benchmark — session-based serving throughput sweep.

Shape to check: every backend (inline oracle, persistent pool, per-batch
shim) answers the steady batch stream with results identical to the
sequential oracle (the service's correctness contract), and the persistent
pool actually reuses its workers across batches.  Speedup is
machine-dependent and intentionally not asserted — the dedicated
``crowd_stream`` suite in ``bench_hot_paths.py`` records the timing
trajectory.
"""

import multiprocessing

from repro.experiments import exp_throughput
from repro.experiments.exp_throughput import ThroughputExperimentConfig


def test_e8_throughput(run_once, bench_scenario):
    result = run_once(
        lambda: exp_throughput.run(
            bench_scenario,
            ThroughputExperimentConfig(
                pool_sizes=(1, 2), num_batches=3, batch_size=30, seed=131
            ),
        ),
    )
    print()
    print(result.to_table())
    assert result.summary["all_runs_identical_to_sequential"] is True
    for row in result.rows:
        assert row["identical_to_sequential"] is True
        assert row["queries_per_s"] > 0
    pooled_rows = [row for row in result.rows if row["backend"] == "pooled"]
    assert pooled_rows
    if "fork" in multiprocessing.get_all_start_methods():
        assert all(row["workers_reused"] for row in pooled_rows)
        assert all(row["warm_batches"] >= 1 for row in pooled_rows)
