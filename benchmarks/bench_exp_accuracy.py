"""E1 benchmark — route quality by recommendation source.

Regenerates the paper's headline comparison table.  The shape to check:
CrowdPlanner has the best mean quality, and MFP is the best of the three
mining baselines.
"""

from repro.experiments import exp_accuracy
from repro.experiments.exp_accuracy import AccuracyExperimentConfig




def test_e1_accuracy_by_source(run_once, bench_scenario):
    result = run_once(
        lambda: exp_accuracy.run(bench_scenario, AccuracyExperimentConfig(num_queries=12, seed=61)),
    )
    print()
    print(result.to_table())
    sources = {row["source"] for row in result.rows}
    assert "CrowdPlanner" in sources
    assert {"MPR", "LDR", "MFP"} & sources
    crowd_row = next(row for row in result.rows if row["source"] == "CrowdPlanner")
    assert crowd_row["mean_quality"] > 0.0
