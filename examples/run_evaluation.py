"""Run the full reconstructed evaluation suite and print every table.

Run with::

    python examples/run_evaluation.py [experiment ids...]

Without arguments all experiments (E1-E7, F1, F2) are run on a compact
scenario; pass ids (e.g. ``E3 E4``) to run a subset.  See DESIGN.md section 3
for what each experiment reproduces and EXPERIMENTS.md for recorded results.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import SyntheticCityConfig
from repro.experiments.harness import ExperimentRunner


def main() -> None:
    wanted = [arg.upper() for arg in sys.argv[1:]] or None
    runner = ExperimentRunner(
        SyntheticCityConfig(rows=10, cols=10, num_landmarks=90, num_drivers=20, trips_per_driver=12, num_workers=30)
    )
    print("Building scenario and running experiments (this takes a few minutes)...\n")
    results = runner.run(wanted)
    print(ExperimentRunner.render_report(results))


if __name__ == "__main__":
    main()
