"""Hotspot pipelining: stage an oversized component as a sub-shard chain.

Run with::

    python examples/hotspot_pipeline.py

The script builds a city-center hotspot workload — 30% of all queries share
one dominant destination — so interaction-closed sharding puts half the
batch into a single component that one worker would serve alone while the
rest of the pool idles.  The batch is then served twice through the pooled
backend:

1. with ``max_shard_fraction=None`` — the monolithic plan: the hotspot
   component is one shard, however large;
2. with ``max_shard_fraction=0.1`` — ``split_oversized`` restages the
   component's od-cell groups as an ordered dataflow of sub-shards, each at
   most 10% of the batch, connected by explicit truth-delta hand-offs that
   consumers adopt before executing their slice.

The split is made visible, not just claimed: the sub-shard chain (ids,
sizes, hand-off edges) is printed, ``service.statistics()["sharding"]``
reports the largest shard fraction before/after splitting plus the chain
depth, and provenance shows the sub-shards spreading across workers.
Merges still happen in strict submission order with truth ids issued by the
parent, so both runs are bit-identical to the sequential oracle — the
serving contract is fraction-independent (see docs/serving-invariants.md).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ServiceConfig
from repro.core.planner import CrowdPlanner
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import (
    LargeBatchWorkloadConfig,
    generate_large_batch_workload,
)
from repro.serving import RecommendationService, recommendation_fingerprint

POOL_SIZE = 2
FRACTION = 0.1


def build_planner(scenario, familiarity):
    """A planner sharing the pre-fitted familiarity model (identical starts)."""
    return CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=scenario.sources,
        worker_pool=scenario.worker_pool,
        crowd_backend=scenario.crowd,
        config=scenario.config.planner_config,
        familiarity=familiarity,
    )


def serve(scenario, familiarity, workload, fraction):
    """Serve the batch once; returns (responses, sharding stats, seconds)."""
    planner = build_planner(scenario, familiarity)
    config = ServiceConfig.from_planner_config(
        planner.config,
        backend="pooled",
        pool_size=POOL_SIZE,
        max_shard_fraction=fraction,
    )
    with RecommendationService(planner, config) as service:
        started = time.perf_counter()
        responses = service.results(service.submit(workload))
        elapsed = time.perf_counter() - started
        stats = service.statistics()["sharding"]
    return responses, stats, elapsed


def main() -> None:
    print("Building an 18x18 synthetic city...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=18, cols=18, block_size_m=320.0, num_landmarks=110,
            num_drivers=18, trips_per_driver=10, num_hot_pairs=14, num_workers=28, seed=31,
        )
    )

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    sequential_planner = scenario.build_planner()
    familiarity = sequential_planner.familiarity

    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=160, num_clusters=5, dominant_destination_fraction=0.3, seed=77
        ),
    )
    print(f"Workload: {len(workload)} queries, 30% sharing one city-center destination\n")

    # What splitting does to the plan: the monolithic plan's largest shard
    # against the staged sub-shard chain.  "s3 <- Δ{1, 2}" reads "sub-shard 3
    # adopts the hand-off deltas of sub-shards 1 and 2 before executing".
    monolithic = sequential_planner.shard_plan(workload, POOL_SIZE)
    planner = build_planner(scenario, familiarity)
    backend_config = ServiceConfig.from_planner_config(
        planner.config, backend="pooled", pool_size=POOL_SIZE, max_shard_fraction=FRACTION
    )
    with RecommendationService(planner, config=backend_config) as service:
        split = service.plan(workload)
    print(f"Monolithic plan: {len(monolithic.shards)} shards, largest "
          f"{monolithic.largest_shard_fraction():.0%} of the batch")
    print(f"Split plan (max_shard_fraction={FRACTION}): {len(split.shards)} sub-shards, "
          f"largest {split.largest_shard_fraction():.0%}, chain depth {split.chain_depth()}")
    for shard in split.shards:
        handoff = (
            f" <- Δ{{{', '.join(str(s) for s in shard.handoff_from)}}}"
            if shard.handoff_from
            else ""
        )
        print(f"  s{shard.shard_id}: {len(shard.indices)} queries{handoff}")

    print("\nServing sequentially (the oracle)...")
    oracle = sequential_planner.recommend_batch(workload)
    oracle_fp = [recommendation_fingerprint(r) for r in oracle]

    print(f"Serving the monolithic plan (pool of {POOL_SIZE})...")
    mono_responses, mono_stats, mono_s = serve(scenario, familiarity, workload, None)
    print(f"  {len(workload) / mono_s:7,.0f} queries/s   sharding stats: {mono_stats}")

    print(f"Serving the sub-shard chain (max_shard_fraction={FRACTION})...")
    chain_responses, chain_stats, chain_s = serve(scenario, familiarity, workload, FRACTION)
    print(f"  {len(workload) / chain_s:7,.0f} queries/s   sharding stats: {chain_stats}")

    # The chain shows up in provenance: the hotspot's sub-shards carry
    # distinct shard ids and spread across the pool instead of pinning one
    # worker for the whole component.
    by_shard = {}
    for response in chain_responses:
        prov = response.provenance
        by_shard.setdefault(prov.shard_id, set()).add(prov.worker_pid)
    print("\nSub-shard placement (shard id -> worker pids):")
    for shard_id in sorted(by_shard):
        print(f"  s{shard_id}: {sorted(by_shard[shard_id])}")

    mono_fp = [recommendation_fingerprint(r.result) for r in mono_responses]
    chain_fp = [recommendation_fingerprint(r.result) for r in chain_responses]
    print(f"\nMonolithic answers identical to sequential: {mono_fp == oracle_fp}")
    print(f"Chained answers identical to sequential:    {chain_fp == oracle_fp}")


if __name__ == "__main__":
    main()
