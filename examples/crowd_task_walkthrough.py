"""Walk through one crowdsourcing task end to end.

Run with::

    python examples/crowd_task_walkthrough.py

The script picks a route request whose candidate routes genuinely disagree,
then shows each stage of the paper's crowd module:

1. the candidate routes and the landmarks they pass;
2. landmark selection (the discriminative, high-significance question set);
3. the ID3 question tree and the expected number of questions;
4. the top-k eligible workers chosen by rated voting;
5. the simulated workers' answers, early stopping, and the final verdict.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.aggregation import AnswerAggregator
from repro.core.familiarity import FamiliarityModel
from repro.core.task_generation import TaskGenerator
from repro.core.worker_selection import WorkerSelector
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.exceptions import TaskGenerationError
from repro.experiments.metrics import route_quality


def main() -> None:
    scenario = build_scenario(SyntheticCityConfig(rows=10, cols=10))
    config = scenario.config.planner_config
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)

    task = None
    for query in scenario.sample_queries(40):
        candidates, seen = [], set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 3:
            continue
        try:
            task = generator.generate(query, candidates)
            break
        except TaskGenerationError:
            continue
    if task is None:
        print("No suitable disagreeing query found; rerun with a different seed.")
        return

    print(f"Request: {task.query.origin} -> {task.query.destination}\n")
    print("Candidate routes:")
    for index, landmark_route in enumerate(task.landmark_routes):
        names = [scenario.catalog.get(lid).name for lid in landmark_route.landmark_sequence[:6]]
        print(
            f"  [{index}] from {landmark_route.source:<16} "
            f"({len(landmark_route.route.path)} intersections) passes: {', '.join(names)}..."
        )

    print("\nSelected question landmarks (discriminative, high significance):")
    for landmark_id in task.selected_landmarks:
        landmark = scenario.catalog.get(landmark_id)
        print(f"  - {landmark.name:<20} significance={landmark.significance:.2f}")
    print(f"\nQuestion tree: depth={task.max_questions()}, expected questions={task.expected_questions():.2f}")
    for landmark_id, question in task.questions.items():
        print(f"  Q[{landmark_id}]: {question.text}")

    familiarity = FamiliarityModel(scenario.worker_pool, scenario.catalog, config)
    familiarity.fit()
    selector = WorkerSelector(scenario.worker_pool, familiarity, config)
    worker_ids = selector.select(task, config.workers_per_task)
    print(f"\nTop-{len(worker_ids)} eligible workers (rated voting): {worker_ids}")

    responses = scenario.crowd.collect_responses(task, worker_ids)
    aggregator = AnswerAggregator(config)
    result = aggregator.collect_with_early_stop(task, responses, expected_total=len(worker_ids))
    print("\nWorker responses (arrival order):")
    for response in result.responses:
        answer_text = ", ".join(
            f"{scenario.catalog.get(a.landmark_id).name}={'yes' if a.says_yes else 'no'}"
            for a in response.answers
        )
        print(
            f"  worker {response.worker_id:>3}: votes route [{response.chosen_route_index}] "
            f"after {response.questions_answered} questions ({answer_text})"
        )

    truth = scenario.ground_truth_path(task.query)
    quality = route_quality(scenario.network, result.winning_route.path, truth)
    print(
        f"\nVerdict: route [{result.winning_route_index}] from {result.winning_route.source} "
        f"with confidence {result.confidence:.2f}"
        f"{' (early stop)' if result.stopped_early else ''}; "
        f"overlap with driver-preferred route: {quality:.2f}"
    )


if __name__ == "__main__":
    main()
