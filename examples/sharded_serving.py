"""Session-based serving: a steady query stream through a persistent pool.

Run with::

    python examples/sharded_serving.py

The script builds a city large enough to hold several independent od
neighbourhoods, generates a steady stream of query batches, and serves it
three ways:

1. sequentially (`CrowdPlanner.recommend_batch` per batch — the oracle);
2. through a session-based :class:`RecommendationService` with the
   persistent ``pooled`` backend — the pool is forked once, workers keep
   their truth partitions warm between batches and the parent streams
   merged truth deltas back, so per-batch wall time drops once the pool is
   warm;
3. through the deprecated :class:`ShardedRecommendationEngine` shim, which
   forks a fresh pool for every batch — the amortisation baseline (and the
   proof that the legacy API still runs).

All three produce bit-identical answers — the serving layer's contract.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ServiceConfig
from repro.core.planner import CrowdPlanner
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import StreamWorkloadConfig, generate_stream_workload
from repro.serving import (
    RecommendationService,
    ShardedRecommendationEngine,
    recommendation_fingerprint,
)

POOL_SIZE = 4


def build_planner(scenario, familiarity):
    """A planner sharing the pre-fitted familiarity model (identical starts)."""
    return CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=scenario.sources,
        worker_pool=scenario.worker_pool,
        crowd_backend=scenario.crowd,
        config=scenario.config.planner_config,
        familiarity=familiarity,
    )


def main() -> None:
    print("Building an 18x18 synthetic city (5.4 km extent)...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=18, cols=18, block_size_m=320.0, num_landmarks=110,
            num_drivers=18, trips_per_driver=10, num_hot_pairs=14, num_workers=28, seed=31,
        )
    )
    batches = generate_stream_workload(
        scenario.network,
        StreamWorkloadConfig(num_batches=6, batch_size=50, num_clusters=6,
                             dominant_destination_fraction=0.1),
    )
    total = sum(len(batch) for batch in batches)
    print(f"Workload: {total} queries in {len(batches)} steady batches of ~50\n")

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    sequential_planner = scenario.build_planner()
    familiarity = sequential_planner.familiarity

    print("\nServing sequentially (the oracle)...")
    oracle = []
    started = time.perf_counter()
    for batch in batches:
        oracle.extend(sequential_planner.recommend_batch(batch))
    sequential_s = time.perf_counter() - started
    print(f"  {total / sequential_s:,.0f} queries/s")

    print(f"\nServing through RecommendationService (persistent pool of {POOL_SIZE})...")
    service_planner = build_planner(scenario, familiarity)
    config = ServiceConfig.from_planner_config(
        service_planner.config, backend="pooled", pool_size=POOL_SIZE
    )
    responses = []
    with RecommendationService(service_planner, config) as service:
        plan = service.plan(batches[0])
        print(f"  first batch shard plan: {len(plan.shards)} shard(s), "
              f"{plan.num_components} component(s)")
        service_s = 0.0
        for number, batch in enumerate(batches, start=1):
            started = time.perf_counter()
            ticket = service.submit(batch)
            batch_responses = service.results(ticket)
            elapsed = time.perf_counter() - started
            service_s += elapsed
            responses.extend(batch_responses)
            warm = batch_responses[0].provenance.warm_pool
            print(f"  batch {number}: {len(batch) / elapsed:7,.0f} queries/s  "
                  f"({'warm pool' if warm else 'cold pool (forked here)'})")
        pids = sorted({r.provenance.worker_pid for r in responses if r.provenance.worker_pid})
        print(f"  {total / service_s:,.0f} queries/s overall; "
              f"worker pids {pids} stayed constant across all {len(batches)} batches")

    print("\nServing through the deprecated per-batch shim (forks every batch)...")
    shim_planner = build_planner(scenario, familiarity)
    engine = ShardedRecommendationEngine(shim_planner, workers=POOL_SIZE)
    shim_results = []
    started = time.perf_counter()
    for batch in batches:
        shim_results.extend(engine.recommend_batch(batch))
    shim_s = time.perf_counter() - started
    print(f"  {total / shim_s:,.0f} queries/s "
          f"(persistent pool amortised {shim_s / service_s:.2f}x of this)")

    oracle_fp = [recommendation_fingerprint(r) for r in oracle]
    service_fp = [recommendation_fingerprint(r.result) for r in responses]
    shim_fp = [recommendation_fingerprint(r) for r in shim_results]
    print(f"\nService answers identical to sequential: {service_fp == oracle_fp}")
    print(f"Shim answers identical to sequential:    {shim_fp == oracle_fp}")

    methods = {}
    truth_hits = 0
    for response in responses:
        methods[response.method] = methods.get(response.method, 0) + 1
        truth_hits += response.provenance.truth_reused
    print("Resolution methods:", dict(sorted(methods.items())))
    print(f"Warm truth-store hits: {truth_hits}/{total} "
          f"(later batches reuse truths recorded by earlier ones)")


if __name__ == "__main__":
    main()
