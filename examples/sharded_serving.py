"""Sharded serving: answer a large query batch across worker processes.

Run with::

    python examples/sharded_serving.py

The script builds a city large enough to hold several independent od
neighbourhoods, generates a clustered large-batch workload, shows the shard
plan the planner derives for it (interaction-closed components packed onto
workers), then serves the batch sequentially and through the sharded engine
and verifies the answers are identical — the engine's core contract.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.planner import CrowdPlanner
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import LargeBatchWorkloadConfig, generate_large_batch_workload
from repro.serving import ShardedRecommendationEngine, recommendation_fingerprint


def main() -> None:
    print("Building an 18x18 synthetic city (5.4 km extent)...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=18, cols=18, block_size_m=320.0, num_landmarks=110,
            num_drivers=18, trips_per_driver=10, num_hot_pairs=14, num_workers=28, seed=31,
        )
    )
    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(num_queries=300, num_clusters=6, dominant_destination_fraction=0.1),
    )
    print(f"Workload: {len(workload)} queries in 6 od clusters (10% to one dominant destination)\n")

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    sequential_planner = scenario.build_planner()
    # The sharded planner shares the already-fitted familiarity model so both
    # runs start from identical worker-selection behaviour.
    sharded_planner = CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=scenario.sources,
        worker_pool=scenario.worker_pool,
        crowd_backend=scenario.crowd,
        config=scenario.config.planner_config,
        familiarity=sequential_planner.familiarity,
    )

    engine = ShardedRecommendationEngine(sharded_planner, workers=4)
    plan = engine.plan(workload)
    print(f"\nShard plan (interaction radius {plan.interaction_radius_m:.0f} m, "
          f"reach {plan.cell_reach} cells):")
    for shard in plan.shards:
        print(f"  shard {shard.shard_id}: {len(shard)} queries in {shard.components} component(s)")

    print("\nServing sequentially (the oracle)...")
    started = time.perf_counter()
    sequential = sequential_planner.recommend_batch(workload)
    sequential_s = time.perf_counter() - started
    print(f"  {len(workload) / sequential_s:,.0f} queries/s")

    print("Serving sharded (4 workers)...")
    started = time.perf_counter()
    sharded = engine.recommend_batch(workload)
    sharded_s = time.perf_counter() - started
    print(f"  {len(workload) / sharded_s:,.0f} queries/s across {len(plan.shards)} shards")

    identical = [recommendation_fingerprint(r) for r in sequential] == [
        recommendation_fingerprint(r) for r in sharded
    ]
    print(f"\nSharded answers identical to sequential: {identical}")
    methods = {}
    for result in sharded:
        methods[result.method] = methods.get(result.method, 0) + 1
    print("Resolution methods:", dict(sorted(methods.items())))


if __name__ == "__main__":
    main()
