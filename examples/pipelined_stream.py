"""Pipelined streaming: overlap batches whose od-cell closures are disjoint.

Run with::

    python examples/pipelined_stream.py

The script builds a city with several independent od neighbourhoods and
turns them into a *skewed* stream: each batch is one neighbourhood's worth
of queries, so consecutive batches often touch disjoint parts of the city
(think district-by-district commute waves).  The stream is then served
twice through the persistent pooled backend:

1. with ``pipeline_window=1`` — the per-batch barrier: batch N+1 waits for
   batch N's straggler shard even when the two share no od cell;
2. with ``pipeline_window=4`` — up to four pending batches form a window,
   ``repro.serving.pipeline.batch_dependencies`` computes which shards of
   later batches interact with in-flight earlier ones, and the DAG
   dispatcher starts the independent shards immediately.

Overlap is made visible, not just claimed: the cross-batch dependency DAG
is printed per shard, ``service.statistics()["pipeline"]`` counts the
dispatches that jumped ahead of the merge frontier, and provenance batch
and shard ids show where every answer was produced.  Merges still happen
strictly in submission order, so both runs are bit-identical to the
sequential oracle — the serving contract holds for every window size (see
docs/serving-invariants.md).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ServiceConfig
from repro.core.planner import CrowdPlanner
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import (
    LargeBatchWorkloadConfig,
    generate_large_batch_workload,
)
from repro.serving import (
    RecommendationService,
    batch_dependencies,
    recommendation_fingerprint,
    window_parallelism,
)

POOL_SIZE = 4
WINDOW = 4


def build_planner(scenario, familiarity):
    """A planner sharing the pre-fitted familiarity model (identical starts)."""
    return CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=scenario.sources,
        worker_pool=scenario.worker_pool,
        crowd_backend=scenario.crowd,
        config=scenario.config.planner_config,
        familiarity=familiarity,
    )


def neighbourhood_stream(planner, network):
    """A stream whose batches are od neighbourhoods, not uniform samples.

    One large clustered workload is planned into interaction-closed shards,
    and each shard's queries become one batch: a skewed arrival order in
    which consecutive batches frequently touch disjoint od cells — exactly
    the stream shape the cross-batch dispatcher exists for.
    """
    big = generate_large_batch_workload(
        network, LargeBatchWorkloadConfig(num_queries=240, num_clusters=8, seed=17)
    )
    plan = planner.shard_plan(big, 8)
    return [
        [big[i] for i in shard.indices]
        for shard in plan.shards
        if len(shard.indices) >= 12
    ]


def serve(scenario, familiarity, batches, window):
    """Serve the stream submit-all-then-collect; returns (responses, stats, s)."""
    planner = build_planner(scenario, familiarity)
    config = ServiceConfig.from_planner_config(
        planner.config,
        backend="pooled",
        pool_size=POOL_SIZE,
        pipeline_window=window,
        max_pending_batches=max(16, len(batches)),
    )
    responses = []
    with RecommendationService(planner, config) as service:
        started = time.perf_counter()
        # Submit the whole stream before redeeming anything: consecutive
        # batches are then actually pending together, which is what hands
        # the backend full windows to overlap.  (service.stream() does the
        # same prefetch internally when pipeline_window > 1.)
        tickets = [service.submit(batch) for batch in batches]
        for ticket in tickets:
            responses.extend(service.results(ticket))
        elapsed = time.perf_counter() - started
        stats = service.statistics()["pipeline"]
    return responses, stats, elapsed


def main() -> None:
    print("Building an 18x18 synthetic city with independent od neighbourhoods...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=18, cols=18, block_size_m=320.0, num_landmarks=110,
            num_drivers=18, trips_per_driver=10, num_hot_pairs=14, num_workers=28, seed=31,
        )
    )

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    sequential_planner = scenario.build_planner()
    familiarity = sequential_planner.familiarity

    batches = neighbourhood_stream(sequential_planner, scenario.network)
    total = sum(len(batch) for batch in batches)
    print(f"Workload: {total} queries in {len(batches)} neighbourhood batches "
          f"of {[len(b) for b in batches]}\n")

    # What the dispatcher will see: the cross-batch dependency DAG.  A shard
    # marked "free" interacts with no earlier batch and may start the moment
    # a worker is idle; "batch b" means it must wait for batch b's merge —
    # but not for the batches in between.
    plans = [sequential_planner.shard_plan(batch, POOL_SIZE) for batch in batches]
    deps = batch_dependencies(plans)
    print("Cross-batch dependency DAG (submission order):")
    for batch_index, batch_deps in enumerate(deps):
        rendered = ", ".join(
            f"shard {shard}→{'free' if dep < 0 else f'batch {dep}'}"
            for shard, dep in enumerate(batch_deps)
        )
        print(f"  batch {batch_index}: {rendered}")
    print("  summary:", window_parallelism(deps))

    print("\nServing sequentially (the oracle)...")
    oracle = []
    for batch in batches:
        oracle.extend(sequential_planner.recommend_batch(batch))
    oracle_fp = [recommendation_fingerprint(r) for r in oracle]

    print(f"Serving with the per-batch barrier (pipeline_window=1, pool of {POOL_SIZE})...")
    barrier_responses, barrier_stats, barrier_s = serve(scenario, familiarity, batches, 1)
    print(f"  {total / barrier_s:7,.0f} queries/s   pipeline stats: {barrier_stats}")

    print(f"Serving with the DAG dispatcher  (pipeline_window={WINDOW}, pool of {POOL_SIZE})...")
    windowed_responses, windowed_stats, windowed_s = serve(scenario, familiarity, batches, WINDOW)
    print(f"  {total / windowed_s:7,.0f} queries/s   pipeline stats: {windowed_stats}")
    print(f"  {windowed_stats['overlapped_dispatches']} shard dispatch(es) jumped "
          "ahead of the merge frontier")

    # Overlap shows up in provenance too: responses carry the batch and
    # shard that produced them, and batches merged strictly in submission
    # order even though their shards interleaved on the pool.
    by_batch = {}
    for response in windowed_responses:
        prov = response.provenance
        by_batch.setdefault(prov.batch_id, set()).add((prov.shard_id, prov.worker_pid))
    print("\nPer-batch shard placement under the window "
          "(batch id -> {(shard id, worker pid)}):")
    for batch_id in sorted(by_batch):
        print(f"  batch {batch_id}: {sorted(by_batch[batch_id])}")

    barrier_fp = [recommendation_fingerprint(r.result) for r in barrier_responses]
    windowed_fp = [recommendation_fingerprint(r.result) for r in windowed_responses]
    print(f"\nBarrier answers identical to sequential:  {barrier_fp == oracle_fp}")
    print(f"Windowed answers identical to sequential: {windowed_fp == oracle_fp}")


if __name__ == "__main__":
    main()
