"""Multi-tenant serving: isolated workspaces over one shared worker pool.

Run with::

    python examples/multitenant_serving.py

The script opens a :class:`~repro.serving.WorkspaceService` over one
prepared planner and creates three workspaces — fully isolated tenants that
share the scenario substrate (road network, landmarks, the *fitted*
familiarity model) and one forked two-worker pool, while each owns its own
truth store, batch numbering and journal directory.  Their query streams
interleave round-robin over the warm pool, and every tenant's answers are
asserted bit-identical to a dedicated single-tenant service run — the
isolation contract from ``docs/serving-invariants.md``.

One tenant runs a custom :class:`~repro.config.PlannerConfig` (a stricter
confidence threshold) to show per-tenant planning knobs without refitting
the shared familiarity model.  The per-workspace statistics breakdown is
printed, and a final act drops the service and rebuilds every workspace
from its journal with :meth:`WorkspaceService.recover_all`.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ServiceConfig
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import StreamWorkloadConfig, generate_stream_workload
from repro.serving import (
    WorkspaceService,
    build_tenant_planner,
    recommendation_fingerprint,
)

POOL_SIZE = 2
TENANTS = ("acme", "globex", "initech")


def fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def main() -> None:
    print("Building a 14x14 synthetic city...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=14, cols=14, block_size_m=320.0, num_landmarks=80,
            num_drivers=14, trips_per_driver=10, num_hot_pairs=10,
            num_workers=24, seed=31,
        )
    )
    print("Preparing the template planner (familiarity matrix + PMF)...")
    template = scenario.build_planner()

    # One stream per tenant — distinct seeds, so distinct queries.
    streams = {
        name: generate_stream_workload(
            scenario.network,
            StreamWorkloadConfig(num_batches=3, batch_size=20, num_clusters=5,
                                 dominant_destination_fraction=0.1, seed=101 + i),
        )
        for i, name in enumerate(TENANTS)
    }
    # initech plans under a stricter confidence threshold than the template.
    configs = {name: template.config for name in TENANTS}
    configs["initech"] = dataclasses.replace(template.config, confidence_threshold=0.9)

    print("\nAct 0 — dedicated single-tenant oracles (sequential)...")
    oracles = {}
    for name in TENANTS:
        planner = build_tenant_planner(template, configs[name])
        oracles[name] = [
            recommendation_fingerprint(result)
            for batch in streams[name]
            for result in planner.recommend_batch(batch)
        ]
        print(f"  {name}: {len(oracles[name])} answers "
              f"(confidence_threshold={configs[name].confidence_threshold})")

    with tempfile.TemporaryDirectory() as root:
        config = ServiceConfig.from_planner_config(
            template.config, backend="pooled", pool_size=POOL_SIZE,
        )
        print(f"\nAct 1 — three workspaces interleaved over one {POOL_SIZE}-worker pool...")
        with WorkspaceService(template, config=config, journal_root=root) as service:
            for name in TENANTS:
                service.create_workspace(
                    name, None if name != "initech" else configs["initech"]
                )
            print(f"  workspaces: {service.list_workspaces()}")
            produced = {name: [] for name in TENANTS}
            for round_index in range(3):
                for name in TENANTS:  # round-robin: the pool stays warm per tenant
                    workspace = service.workspace(name)
                    ticket = workspace.submit(streams[name][round_index])
                    produced[name].extend(fingerprints(workspace.results(ticket)))
            for name in TENANTS:
                assert produced[name] == oracles[name], (
                    f"tenant {name} diverged from its dedicated-service oracle"
                )
            print(f"  shared pool pids {sorted(service.worker_pids())} "
                  f"(forked once, warm across all tenants)")
            print("  every tenant bit-identical to its dedicated single-tenant run")

            stats = service.statistics()
            print("\n  per-workspace breakdown (service.statistics()):")
            for name, entry in stats["workspaces"].items():
                print(f"    {name:8s} batches={entry['batches']} "
                      f"truths={entry['truths']} respawns={entry['respawns']} "
                      f"journal_bytes={entry['journal_bytes']}")

        print("\nAct 2 — recover every workspace from its journal...")
        recovered = WorkspaceService.recover_all(
            template, root, config=config
        )
        with recovered:
            for name in TENANTS:
                workspace = recovered.workspace(name)
                assert workspace.batches_executed == 3
                print(f"  {name}: resumed at batch {workspace.batches_executed + 1} "
                      f"with {workspace.planner.truth_cursor()} truths "
                      f"(manifest kept confidence_threshold="
                      f"{workspace.planner.config.confidence_threshold})")

    print("\nOne pool, many tenants — isolation by construction, not by luck.")


if __name__ == "__main__":
    main()
