"""Compare recommendation sources against driver-preferred routes.

Run with::

    python examples/compare_route_sources.py

This reproduces, interactively, the motivating observation of the paper
(following Ceikute & Jensen): the routes returned by distance/time-optimising
web services differ from the routes experienced drivers actually take, and the
popular-route miners (MPR, LDR, MFP) each capture a different slice of driver
behaviour.  The script prints, per source, the mean length-weighted overlap
with the ground-truth driver-preferred route and the win rate.
"""

from __future__ import annotations

import os
import sys
from collections import defaultdict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import SyntheticCityConfig, build_scenario
from repro.experiments.metrics import route_quality
from repro.utils.stats import mean


def main() -> None:
    scenario = build_scenario(SyntheticCityConfig(rows=12, cols=12, num_drivers=30, trips_per_driver=15))
    queries = scenario.sample_queries(25)

    qualities = defaultdict(list)
    wins = defaultdict(int)
    produced = defaultdict(int)

    for query in queries:
        truth = scenario.ground_truth_path(query)
        per_query = {}
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None:
                continue
            produced[source.name] += 1
            score = route_quality(scenario.network, candidate.path, truth)
            qualities[source.name].append(score)
            per_query[source.name] = score
        if per_query:
            best = max(per_query.values())
            for name, score in per_query.items():
                if score >= best - 1e-9:
                    wins[name] += 1

    print(f"{'source':<18} {'mean quality':>12} {'win rate':>9} {'coverage':>9}")
    print("-" * 52)
    for name in sorted(qualities, key=lambda n: -mean(qualities[n])):
        print(
            f"{name:<18} {mean(qualities[name]):>12.3f} "
            f"{wins[name] / len(queries):>9.2f} {produced[name] / len(queries):>9.2f}"
        )
    print(
        "\nNote: mining sources only answer od-pairs with enough historical support\n"
        "(their coverage is below 1.0) — exactly the gap CrowdPlanner fills with the crowd."
    )


if __name__ == "__main__":
    main()
