"""Durable serving: journal a stream, crash hard, recover exactly.

Run with::

    python examples/durable_serving.py

The script serves a journaled query stream in a child process and SIGKILLs
it mid-stream — the hardest crash there is: no handlers, no flushes, the
worker pool dies with it.  It then recovers in this process with
:meth:`RecommendationService.recover`: the journal replays snapshot + tail
into a fresh planner, ``journal.batch_count`` names exactly which batches
were durably executed, and redeeming the remainder produces answers
bit-identical to an uninterrupted sequential run.

A second act wedges a pool worker with SIGSTOP mid-stream: the heartbeat
supervisor declares it hung within the RPC deadline, SIGKILLs it, resubmits
its in-flight shards and forks a replacement mid-batch — results unchanged,
and the supervision counters in ``service.statistics()`` tell the story.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import tempfile
import time
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ServiceConfig
from repro.core.planner import CrowdPlanner
from repro.datasets import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import StreamWorkloadConfig, generate_stream_workload
from repro.serving import RecommendationService, recommendation_fingerprint

POOL_SIZE = 2


def build_planner(scenario, familiarity):
    """A planner sharing the pre-fitted familiarity model (identical starts)."""
    return CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=scenario.sources,
        worker_pool=scenario.worker_pool,
        crowd_backend=scenario.crowd,
        config=scenario.config.planner_config,
        familiarity=familiarity,
    )


def journaled_config(planner, journal_dir) -> ServiceConfig:
    return ServiceConfig.from_planner_config(
        planner.config,
        backend="pooled",
        pool_size=POOL_SIZE,
        journal_path=str(journal_dir),
        snapshot_every_truths=64,
    )


def serve_until_killed(planner, batches, journal_dir, progress_path):
    """Child body: serve the whole stream; the parent shoots us mid-way."""
    service = RecommendationService(planner, config=journaled_config(planner, journal_dir))
    for number, batch in enumerate(batches, start=1):
        service.results(service.submit(batch))
        with open(progress_path, "w") as handle:
            handle.write(str(number))
            handle.flush()
            os.fsync(handle.fileno())


def fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def main() -> None:
    print("Building a 14x14 synthetic city...")
    scenario = build_scenario(
        SyntheticCityConfig(
            rows=14, cols=14, block_size_m=320.0, num_landmarks=80,
            num_drivers=14, trips_per_driver=10, num_hot_pairs=10,
            num_workers=24, seed=31,
        )
    )
    batches = generate_stream_workload(
        scenario.network,
        StreamWorkloadConfig(num_batches=6, batch_size=24, num_clusters=5,
                             dominant_destination_fraction=0.1),
    )
    total = sum(len(batch) for batch in batches)
    print(f"Workload: {total} queries in {len(batches)} journaled batches\n")

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    oracle_planner = scenario.build_planner()
    familiarity = oracle_planner.familiarity

    print("\nAct 0 — the uninterrupted oracle (sequential, no journal)...")
    oracle = []
    for batch in batches:
        oracle.extend(
            recommendation_fingerprint(result)
            for result in oracle_planner.recommend_batch(batch)
        )

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = os.path.join(tmp, "journal")
        progress_path = os.path.join(tmp, "progress")

        print("\nAct 1 — serve in a child process and SIGKILL it mid-stream...")
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=serve_until_killed,
            args=(build_planner(scenario, familiarity), batches, journal_dir, progress_path),
        )
        child.start()
        while True:
            done = int(open(progress_path).read() or 0) if os.path.exists(progress_path) else 0
            if done >= 2:
                break
            time.sleep(0.02)
        os.kill(child.pid, signal.SIGKILL)
        child.join()
        print(f"  child served >= 2 batches, then died with signal {-child.exitcode}")

        print("\nAct 2 — recover from the journal and finish the stream...")
        planner = build_planner(scenario, familiarity)
        with warnings.catch_warnings():
            # A kill mid-append can leave a torn tail; recovery truncates it.
            warnings.simplefilter("ignore", RuntimeWarning)
            service = RecommendationService.recover(
                planner, journal_dir, config=journaled_config(planner, journal_dir)
            )
        executed = service.journal.batch_count
        stats = service.journal.stats()
        print(f"  journal: generation {stats['generation']}, {stats['truths']} truths, "
              f"{executed} durably executed batches")
        produced = []
        for batch in batches[executed:]:
            produced.extend(fingerprints(service.results(service.submit(batch))))
        service.close()
        assert produced == oracle[sum(len(b) for b in batches[:executed]):], \
            "recovered stream diverged from the uninterrupted oracle"
        print(f"  resumed at batch {executed + 1}; the remaining "
              f"{len(produced)} answers are bit-identical to the oracle")

    print("\nAct 3 — wedge a worker with SIGSTOP; the supervisor heals the pool...")
    planner = build_planner(scenario, familiarity)
    config = ServiceConfig.from_planner_config(
        planner.config, backend="pooled", pool_size=POOL_SIZE,
        heartbeat_interval_s=0.05, rpc_deadline_s=0.8, respawn_backoff_s=0.01,
    )
    produced = []
    with RecommendationService(planner, config) as service:
        produced.extend(fingerprints(service.results(service.submit(batches[0]))))
        victim = service.worker_pids()[0]
        os.kill(victim, signal.SIGSTOP)
        print(f"  SIGSTOP'd worker {victim} (alive but silent)")
        for batch in batches[1:]:
            produced.extend(fingerprints(service.results(service.submit(batch))))
        supervision = service.statistics()["supervision"]
        print(f"  supervisor: {supervision['hung_workers_killed']} hung worker killed, "
              f"{supervision['resubmitted_shards']} shard(s) resubmitted, "
              f"{supervision['respawns']} replacement(s) forked mid-batch")
        print(f"  pool back at full strength: pids {sorted(service.worker_pids())}")
    assert produced == oracle, "supervised stream diverged from the oracle"
    print(f"  all {len(produced)} answers bit-identical to the oracle\n")

    print("Durability and supervision never change answers — only availability.")


if __name__ == "__main__":
    main()
