"""Quickstart: build a synthetic city and answer route requests with CrowdPlanner.

Run with::

    python examples/quickstart.py

The script builds a small synthetic deployment (road network, landmarks,
historical taxi trajectories, a simulated crowd of workers), then answers a
handful of route-recommendation requests and prints how each one was resolved
— from the verified-truth store, automatically by the traditional module, or
by asking the crowd.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import SyntheticCityConfig, build_scenario
from repro.experiments.metrics import route_quality


def main() -> None:
    print("Building the synthetic city scenario (network, landmarks, trajectories, crowd)...")
    scenario = build_scenario(
        SyntheticCityConfig(rows=10, cols=10, num_landmarks=90, num_drivers=20, trips_per_driver=12, num_workers=30)
    )
    print(f"  road network : {scenario.network.node_count} intersections, {scenario.network.edge_count} segments")
    print(f"  landmarks    : {len(scenario.catalog)}")
    print(f"  trajectories : {len(scenario.store)}")
    print(f"  workers      : {len(scenario.worker_pool)}")

    print("Preparing the planner (familiarity matrix + PMF completion)...")
    planner = scenario.build_planner()

    queries = scenario.sample_queries(8)
    print(f"\nAnswering {len(queries)} route requests:\n")
    for index, query in enumerate(queries, start=1):
        result = planner.recommend(query)
        truth = scenario.ground_truth_path(query)
        quality = route_quality(scenario.network, result.route.path, truth)
        print(
            f"  request {index}: {query.origin} -> {query.destination}  "
            f"method={result.method:<16} source={result.route.source:<16} "
            f"confidence={result.confidence:.2f}  quality-vs-drivers={quality:.2f}"
        )
        if result.task_result is not None:
            task = result.task_result
            print(
                f"             crowd task: {task.task.num_candidates} candidates, "
                f"{len(task.task.selected_landmarks)} landmark questions, "
                f"{len(task.responses)} responses"
                f"{' (stopped early)' if task.stopped_early else ''}"
            )

    print("\nPlanner statistics:")
    for key, value in planner.statistics.as_dict().items():
        print(f"  {key:>25}: {value}")


if __name__ == "__main__":
    main()
