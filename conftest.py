"""Ensure the in-repo sources are importable when the package is not installed.

The normal workflow is ``pip install -e .``; this fallback keeps ``pytest``
working in offline environments where the editable build backend is
unavailable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
