"""Tests for repro.config."""

import pytest

from repro.config import DEFAULT_CONFIG, DEFAULT_SERVICE_CONFIG, PlannerConfig, ServiceConfig
from repro.exceptions import ConfigurationError


class TestPlannerConfigValidation:
    def test_default_config_is_valid(self):
        DEFAULT_CONFIG.validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("confidence_threshold", 0.0),
            ("confidence_threshold", 1.5),
            ("agreement_threshold", -0.1),
            ("truth_reuse_radius_m", 0.0),
            ("truth_time_slot_minutes", 0),
            ("worker_quota", 0),
            ("response_time_threshold", 0.0),
            ("knowledge_radius_m", -1.0),
            ("familiarity_alpha", 1.5),
            ("familiarity_beta", 1.0),
            ("workers_per_task", 0),
            ("early_stop_confidence", 0.0),
            ("pmf_latent_dim", 0),
            ("reward_per_question", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            PlannerConfig(**{field: value})

    def test_with_overrides_returns_new_validated_config(self):
        config = PlannerConfig().with_overrides(workers_per_task=9)
        assert config.workers_per_task == 9
        assert DEFAULT_CONFIG.workers_per_task != 9

    def test_with_overrides_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            PlannerConfig().with_overrides(worker_quota=-1)

    def test_to_dict_round_trip(self):
        config = PlannerConfig(workers_per_task=4)
        data = config.to_dict()
        assert data["workers_per_task"] == 4
        assert PlannerConfig(**data) == config

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.workers_per_task = 3


class TestServiceConfig:
    def test_default_service_config_is_valid(self):
        DEFAULT_SERVICE_CONFIG.validate()
        assert DEFAULT_SERVICE_CONFIG.backend == "pooled"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("backend", "bogus"),
            ("pool_size", 0),
            ("max_pending_batches", 0),
            ("merge_every_batches", 0),
            ("stream_batch_size", 0),
            # Planner-level validation still applies to the subclass.
            ("confidence_threshold", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**{field: value})

    def test_from_planner_config_lifts_planner_fields(self):
        planner_config = PlannerConfig(workers_per_task=7, random_seed=99)
        config = ServiceConfig.from_planner_config(planner_config, pool_size=3, backend="inline")
        assert config.workers_per_task == 7
        assert config.random_seed == 99
        assert config.pool_size == 3
        assert config.backend == "inline"

    def test_planner_config_round_trip(self):
        planner_config = PlannerConfig(workers_per_task=7, truth_reuse_radius_m=300.0)
        config = ServiceConfig.from_planner_config(planner_config, pool_size=2)
        assert config.planner_config() == planner_config

    def test_to_dict_includes_serving_fields(self):
        data = ServiceConfig(pool_size=4, merge_every_batches=2).to_dict()
        assert data["pool_size"] == 4
        assert data["merge_every_batches"] == 2
        assert data["workers_per_task"] == DEFAULT_CONFIG.workers_per_task

    def test_is_a_planner_config(self):
        assert isinstance(DEFAULT_SERVICE_CONFIG, PlannerConfig)
