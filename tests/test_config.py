"""Tests for repro.config."""

import pytest

from repro.config import DEFAULT_CONFIG, PlannerConfig
from repro.exceptions import ConfigurationError


class TestPlannerConfigValidation:
    def test_default_config_is_valid(self):
        DEFAULT_CONFIG.validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("confidence_threshold", 0.0),
            ("confidence_threshold", 1.5),
            ("agreement_threshold", -0.1),
            ("truth_reuse_radius_m", 0.0),
            ("truth_time_slot_minutes", 0),
            ("worker_quota", 0),
            ("response_time_threshold", 0.0),
            ("knowledge_radius_m", -1.0),
            ("familiarity_alpha", 1.5),
            ("familiarity_beta", 1.0),
            ("workers_per_task", 0),
            ("early_stop_confidence", 0.0),
            ("pmf_latent_dim", 0),
            ("reward_per_question", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            PlannerConfig(**{field: value})

    def test_with_overrides_returns_new_validated_config(self):
        config = PlannerConfig().with_overrides(workers_per_task=9)
        assert config.workers_per_task == 9
        assert DEFAULT_CONFIG.workers_per_task != 9

    def test_with_overrides_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            PlannerConfig().with_overrides(worker_quota=-1)

    def test_to_dict_round_trip(self):
        config = PlannerConfig(workers_per_task=4)
        data = config.to_dict()
        assert data["workers_per_task"] == 4
        assert PlannerConfig(**data) == config

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.workers_per_task = 3
