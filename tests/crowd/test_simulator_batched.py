"""Batched crowd simulation: responses identical to the sequential oracle
across seeds, plus the vectorized behaviour-model evaluation."""

import numpy as np
import pytest

from repro.core.task_generation import TaskGenerator
from repro.crowd.simulator import SimulatedCrowd
from repro.exceptions import TaskGenerationError


@pytest.fixture(scope="module")
def crowd_tasks(scenario):
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    tasks = []
    for query in scenario.sample_queries(40, seed=733):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            tasks.append(generator.generate(query, candidates))
        except TaskGenerationError:
            continue
        if len(tasks) >= 5:
            break
    if not tasks:
        pytest.skip("no crowd task could be generated")
    return tasks


def _fresh_crowd(scenario, seed, batched=True):
    return SimulatedCrowd(
        pool=scenario.worker_pool,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        ground_truth=scenario.crowd.ground_truth,
        behavior=scenario.crowd.behavior,
        seed=seed,
        batched=batched,
    )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("seed", [1, 42, 97])
    def test_responses_identical_across_seeds(self, scenario, crowd_tasks, seed):
        worker_ids = scenario.worker_pool.ids()
        batched = _fresh_crowd(scenario, seed)
        sequential = _fresh_crowd(scenario, seed)
        for task in crowd_tasks:
            assert batched.collect_responses(task, worker_ids) == (
                sequential.collect_responses_sequential(task, worker_ids)
            )

    def test_batched_false_uses_sequential_path(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()[:6]
        plain = _fresh_crowd(scenario, 5, batched=False)
        oracle = _fresh_crowd(scenario, 5)
        task = crowd_tasks[0]
        assert plain.collect_responses(task, worker_ids) == (
            oracle.collect_responses_sequential(task, worker_ids)
        )

    def test_subset_of_workers(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()[:3]
        batched = _fresh_crowd(scenario, 11)
        sequential = _fresh_crowd(scenario, 11)
        for task in crowd_tasks:
            assert batched.collect_responses(task, worker_ids) == (
                sequential.collect_responses_sequential(task, worker_ids)
            )

    def test_truth_cache_reused_across_tasks_for_same_query(self, scenario, crowd_tasks):
        crowd = _fresh_crowd(scenario, 13)
        task = crowd_tasks[0]
        crowd.collect_responses(task, scenario.worker_pool.ids()[:2])
        assert len(crowd._truth_cache) == 1
        crowd.collect_responses(task, scenario.worker_pool.ids()[:2])
        assert len(crowd._truth_cache) == 1


class TestVectorizedAccuracies:
    def test_matches_scalar_model(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()[:25]
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        for worker in scenario.worker_pool.workers()[:10]:
            vectorized = behavior.answer_accuracies(worker, xs, ys)
            scalar = [behavior.answer_accuracy(worker, lm.anchor) for lm in landmarks]
            # np.hypot may differ from math.hypot in the final ulp, so the
            # comparison allows that window (the response-level tests above
            # pin exact equality).
            np.testing.assert_allclose(vectorized, scalar, rtol=1e-12, atol=0.0)

    def test_matrix_rows_match_single_worker_path(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()[:25]
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        workers = scenario.worker_pool.workers()[:10]
        matrix = behavior.answer_accuracies_matrix(workers, xs, ys)
        assert matrix.shape == (len(workers), len(landmarks))
        for worker, row in zip(workers, matrix):
            assert np.array_equal(row, behavior.answer_accuracies(worker, xs, ys))

    def test_accuracy_bounds(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        matrix = behavior.answer_accuracies_matrix(scenario.worker_pool.workers(), xs, ys)
        assert (matrix >= behavior.base_accuracy).all()
        assert (matrix <= behavior.max_accuracy).all()
