"""Batched crowd simulation: responses identical to the sequential oracle
across seeds, plus the vectorized behaviour-model evaluation."""

import numpy as np
import pytest

from repro.core.task_generation import TaskGenerator
from repro.crowd.simulator import SimulatedCrowd
from repro.exceptions import TaskGenerationError


@pytest.fixture(scope="module")
def crowd_tasks(scenario):
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    tasks = []
    for query in scenario.sample_queries(40, seed=733):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            tasks.append(generator.generate(query, candidates))
        except TaskGenerationError:
            continue
        if len(tasks) >= 5:
            break
    if not tasks:
        pytest.skip("no crowd task could be generated")
    return tasks


def _fresh_crowd(scenario, seed, batched=True):
    return SimulatedCrowd(
        pool=scenario.worker_pool,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        ground_truth=scenario.crowd.ground_truth,
        behavior=scenario.crowd.behavior,
        seed=seed,
        batched=batched,
    )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("seed", [1, 42, 97])
    def test_responses_identical_across_seeds(self, scenario, crowd_tasks, seed):
        worker_ids = scenario.worker_pool.ids()
        batched = _fresh_crowd(scenario, seed)
        sequential = _fresh_crowd(scenario, seed)
        for task in crowd_tasks:
            assert batched.collect_responses(task, worker_ids) == (
                sequential.collect_responses_sequential(task, worker_ids)
            )

    def test_batched_false_uses_sequential_path(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()[:6]
        plain = _fresh_crowd(scenario, 5, batched=False)
        oracle = _fresh_crowd(scenario, 5)
        task = crowd_tasks[0]
        assert plain.collect_responses(task, worker_ids) == (
            oracle.collect_responses_sequential(task, worker_ids)
        )

    def test_subset_of_workers(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()[:3]
        batched = _fresh_crowd(scenario, 11)
        sequential = _fresh_crowd(scenario, 11)
        for task in crowd_tasks:
            assert batched.collect_responses(task, worker_ids) == (
                sequential.collect_responses_sequential(task, worker_ids)
            )

    def test_truth_cache_reused_across_tasks_for_same_query(self, scenario, crowd_tasks):
        crowd = _fresh_crowd(scenario, 13)
        task = crowd_tasks[0]
        crowd.collect_responses(task, scenario.worker_pool.ids()[:2])
        assert len(crowd._truth_cache) == 1
        crowd.collect_responses(task, scenario.worker_pool.ids()[:2])
        assert len(crowd._truth_cache) == 1


class TestPopulationAccuracies:
    """The population-level matrix is a pure cache: slices must be
    bit-identical to the per-task evaluation it replaces."""

    def test_responses_identical_to_per_task_path(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()
        population = _fresh_crowd(scenario, 23)
        population.refresh_population_accuracies()
        assert population._population is not None
        oracle = _fresh_crowd(scenario, 23)
        oracle.use_population_accuracies = False
        for task in crowd_tasks:
            assert population.collect_responses(task, worker_ids) == (
                oracle.collect_responses(task, worker_ids)
            )

    def test_slices_bit_identical_to_per_task_matrix(self, scenario, crowd_tasks):
        crowd = _fresh_crowd(scenario, 29)
        crowd.refresh_population_accuracies()
        workers = scenario.worker_pool.workers()[:7]
        for task in crowd_tasks:
            tree = crowd._compiled_tree(task)
            sliced = crowd._crew_accuracies(tree, workers)
            direct = crowd.behavior.answer_accuracies_matrix(
                workers, tree.xs, tree.ys
            ).tolist()
            assert sliced == direct

    def test_no_per_task_numpy_dispatch_after_refresh(
        self, scenario, crowd_tasks, monkeypatch
    ):
        from repro.crowd.behavior import AnswerBehaviorModel

        crowd = _fresh_crowd(scenario, 31)
        calls = []
        original = AnswerBehaviorModel.answer_accuracies_matrix

        def counting(self, workers, xs, ys):
            calls.append(len(workers))
            return original(self, workers, xs, ys)

        monkeypatch.setattr(AnswerBehaviorModel, "answer_accuracies_matrix", counting)
        crowd.refresh_population_accuracies()
        assert len(calls) == 1  # the single population-wide evaluation
        for task in crowd_tasks:
            crowd.collect_responses(task, scenario.worker_pool.ids())
        assert len(calls) == 1  # every crew row came from the population slice

    def test_unknown_landmark_falls_back_to_per_task(self, scenario, crowd_tasks):
        worker_ids = scenario.worker_pool.ids()[:5]
        crowd = _fresh_crowd(scenario, 37)
        crowd.refresh_population_accuracies()
        worker_rows, landmark_cols = crowd._population
        task = crowd_tasks[0]
        tree = crowd._compiled_tree(task)
        # Drop one questioned landmark from the matrix: the slice must give
        # way to the per-task evaluation, not mis-index.
        stale_cols = {
            lid: col for lid, col in landmark_cols.items() if lid != tree.landmark_ids[0]
        }
        crowd._population = (worker_rows, stale_cols)
        oracle = _fresh_crowd(scenario, 37)
        oracle.use_population_accuracies = False
        assert crowd.collect_responses(task, worker_ids) == (
            oracle.collect_responses(task, worker_ids)
        )

    def test_knob_off_disables_the_matrix(self, scenario):
        crowd = _fresh_crowd(scenario, 41)
        crowd.use_population_accuracies = False
        crowd.refresh_population_accuracies()
        assert crowd._population is None


class TestVectorizedAccuracies:
    def test_matches_scalar_model(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()[:25]
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        for worker in scenario.worker_pool.workers()[:10]:
            vectorized = behavior.answer_accuracies(worker, xs, ys)
            scalar = [behavior.answer_accuracy(worker, lm.anchor) for lm in landmarks]
            # np.hypot may differ from math.hypot in the final ulp, so the
            # comparison allows that window (the response-level tests above
            # pin exact equality).
            np.testing.assert_allclose(vectorized, scalar, rtol=1e-12, atol=0.0)

    def test_matrix_rows_match_single_worker_path(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()[:25]
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        workers = scenario.worker_pool.workers()[:10]
        matrix = behavior.answer_accuracies_matrix(workers, xs, ys)
        assert matrix.shape == (len(workers), len(landmarks))
        for worker, row in zip(workers, matrix):
            assert np.array_equal(row, behavior.answer_accuracies(worker, xs, ys))

    def test_accuracy_bounds(self, scenario):
        behavior = scenario.crowd.behavior
        landmarks = scenario.catalog.all()
        xs = np.array([landmark.anchor.x for landmark in landmarks])
        ys = np.array([landmark.anchor.y for landmark in landmarks])
        matrix = behavior.answer_accuracies_matrix(scenario.worker_pool.workers(), xs, ys)
        assert (matrix >= behavior.base_accuracy).all()
        assert (matrix <= behavior.max_accuracy).all()
