"""Test package marker so relative imports inside the suite resolve."""
