"""Tests for the simulated worker population and answering behaviour."""

import random

import pytest

from repro.crowd.behavior import AnswerBehaviorModel
from repro.crowd.population import WorkerPopulationConfig, generate_worker_pool
from repro.exceptions import ConfigurationError
from repro.spatial import Point


class TestPopulationConfig:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            WorkerPopulationConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            WorkerPopulationConfig(knowledge_radius_m=0)
        with pytest.raises(ConfigurationError):
            WorkerPopulationConfig(min_response_time_s=100, max_response_time_s=50)
        with pytest.raises(ConfigurationError):
            WorkerPopulationConfig(expert_fraction=2.0)


class TestPopulationGeneration:
    def test_worker_count_and_unique_ids(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=25, seed=1))
        assert len(pool) == 25
        assert len(set(pool.ids())) == 25

    def test_homes_inside_city(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=15, seed=2))
        box = small_network.bounding_box()
        for worker in pool:
            assert box.contains(worker.home)

    def test_deterministic_for_seed(self, small_network):
        a = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=10, seed=3))
        b = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=10, seed=3))
        assert [w.home for w in a] == [w.home for w in b]

    def test_response_rates_positive(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=20, seed=4))
        assert all(worker.response_rate > 0 for worker in pool)


class TestAnswerBehavior:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            AnswerBehaviorModel(knowledge_radius_m=0)
        with pytest.raises(ConfigurationError):
            AnswerBehaviorModel(base_accuracy=0.9, max_accuracy=0.5)

    def test_knowledge_decreases_with_distance(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=5, seed=5))
        model = AnswerBehaviorModel(knowledge_radius_m=2000.0)
        worker = pool.get(0)
        near = model.knowledge_of(worker, worker.home)
        far = model.knowledge_of(worker, Point(worker.home.x + 50_000, worker.home.y))
        assert near > far
        assert far == 0.0

    def test_accuracy_bounds(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=5, seed=6))
        model = AnswerBehaviorModel(base_accuracy=0.5, max_accuracy=0.95)
        worker = pool.get(0)
        assert model.answer_accuracy(worker, worker.home) <= 0.95
        assert model.answer_accuracy(worker, Point(1e7, 1e7)) == pytest.approx(0.5)

    def test_knowledgeable_worker_answers_mostly_correctly(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=5, seed=7))
        model = AnswerBehaviorModel(max_accuracy=0.95)
        worker = pool.get(0)
        rng = random.Random(11)
        answers = [model.answer(worker, worker.home, True, rng) for _ in range(300)]
        assert sum(answers) / len(answers) > 0.8

    def test_clueless_worker_answers_randomly(self, small_network):
        pool = generate_worker_pool(small_network, WorkerPopulationConfig(num_workers=5, seed=8))
        model = AnswerBehaviorModel()
        worker = pool.get(0)
        rng = random.Random(13)
        faraway = Point(1e7, 1e7)
        answers = [model.answer(worker, faraway, True, rng) for _ in range(400)]
        assert 0.35 < sum(answers) / len(answers) < 0.65
