"""Tests for the simulated crowd backend."""

import pytest

from repro.core.familiarity import FamiliarityModel
from repro.core.task_generation import TaskGenerator
from repro.core.worker_selection import WorkerSelector
from repro.crowd.behavior import AnswerBehaviorModel
from repro.crowd.simulator import SimulatedCrowd
from repro.exceptions import CrowdPlannerError, TaskGenerationError


@pytest.fixture(scope="module")
def crowd_task(scenario):
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    for query in scenario.sample_queries(30, seed=501):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            return generator.generate(query, candidates)
        except TaskGenerationError:
            continue
    pytest.skip("no crowd task could be generated")


class TestSimulatedCrowd:
    def test_no_workers_rejected(self, scenario, crowd_task):
        with pytest.raises(CrowdPlannerError):
            scenario.crowd.collect_responses(crowd_task, [])

    def test_responses_cover_all_workers(self, scenario, crowd_task):
        worker_ids = scenario.worker_pool.ids()[:5]
        responses = scenario.crowd.collect_responses(crowd_task, worker_ids)
        assert sorted(r.worker_id for r in responses) == sorted(worker_ids)

    def test_responses_sorted_by_arrival_time(self, scenario, crowd_task):
        worker_ids = scenario.worker_pool.ids()[:6]
        responses = scenario.crowd.collect_responses(crowd_task, worker_ids)
        times = [r.total_response_time_s for r in responses]
        assert times == sorted(times)

    def test_answers_follow_question_tree(self, scenario, crowd_task):
        worker_ids = scenario.worker_pool.ids()[:4]
        responses = scenario.crowd.collect_responses(crowd_task, worker_ids)
        for response in responses:
            assert 0 <= response.chosen_route_index < crowd_task.num_candidates
            assert response.questions_answered <= crowd_task.max_questions()
            asked = [answer.landmark_id for answer in response.answers]
            assert all(lid in crowd_task.selected_landmarks for lid in asked)

    def test_chosen_route_consistent_with_answers(self, scenario, crowd_task):
        worker_ids = scenario.worker_pool.ids()[:4]
        responses = scenario.crowd.collect_responses(crowd_task, worker_ids)
        for response in responses:
            answers = {answer.landmark_id: answer.says_yes for answer in response.answers}
            decided, _ = crowd_task.question_tree.traverse(answers)
            assert crowd_task.route_index(decided) == response.chosen_route_index

    def test_knowledgeable_crowd_finds_preferred_route(self, scenario, crowd_task):
        """With a perfectly accurate crowd the verdict matches the candidate
        closest to the ground-truth route."""
        perfect = SimulatedCrowd(
            pool=scenario.worker_pool,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            ground_truth=scenario.ground_truth_path,
            behavior=AnswerBehaviorModel(max_accuracy=1.0, base_accuracy=1.0),
            seed=5,
        )
        worker_ids = scenario.worker_pool.ids()[:5]
        responses = perfect.collect_responses(crowd_task, worker_ids)
        # All perfectly informed workers traverse the tree identically.
        chosen = {response.chosen_route_index for response in responses}
        assert len(chosen) == 1
