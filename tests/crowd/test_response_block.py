"""Columnar crowd responses: ``ResponseBlock`` ≡ the object-path oracle.

The columnar fast path (:meth:`SimulatedCrowd.collect_responses_block`) must
be a pure representation change: materializing its columns yields exactly
the :class:`WorkerResponse` objects of the preserved object path
(:meth:`collect_responses_objects`) — and therefore of the original
sequential simulation — for any seed and any worker crew.  The hypothesis
property runs in the fast tier (few, cheap examples over a shared
scenario); the planner-level test pins that a planner fed by blocks is
fingerprint-identical to one on the pure object path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.aggregation import AnswerAggregator
from repro.core.planner import CrowdPlanner
from repro.core.task_generation import TaskGenerator
from repro.crowd.simulator import SimulatedCrowd
from repro.exceptions import TaskGenerationError
from repro.serving import recommendation_fingerprint


@pytest.fixture(scope="module")
def crowd_tasks(scenario):
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    tasks = []
    for query in scenario.sample_queries(40, seed=733):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            tasks.append(generator.generate(query, candidates))
        except TaskGenerationError:
            continue
        if len(tasks) >= 5:
            break
    if not tasks:
        pytest.skip("no crowd task could be generated")
    return tasks


def _fresh_crowd(scenario, seed):
    return SimulatedCrowd(
        pool=scenario.worker_pool,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        ground_truth=scenario.crowd.ground_truth,
        behavior=scenario.crowd.behavior,
        seed=seed,
    )


class TestBlockEquivalenceProperty:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        crew_seed=st.integers(min_value=0, max_value=2**16),
        task_index=st.integers(min_value=0, max_value=4),
    )
    def test_block_equals_object_path(self, scenario, crowd_tasks, seed, crew_seed, task_index):
        """Any seed, any crew: block columns materialize to the oracle's
        objects, answer for answer."""
        import random

        task = crowd_tasks[task_index % len(crowd_tasks)]
        ids = scenario.worker_pool.ids()
        crew = random.Random(crew_seed).sample(ids, random.Random(crew_seed + 1).randint(1, len(ids)))
        columnar = _fresh_crowd(scenario, seed)
        oracle = _fresh_crowd(scenario, seed)
        block = columnar.collect_responses_block(task, crew)
        expected = oracle.collect_responses_objects(task, crew)
        assert block.to_responses() == expected
        # Column-level invariants against the objects.
        assert block.worker_ids.tolist() == [r.worker_id for r in expected]
        assert block.chosen_route_index.tolist() == [r.chosen_route_index for r in expected]
        assert block.total_response_time_s.tolist() == [r.total_response_time_s for r in expected]
        assert block.answer_offsets.tolist() == (
            np.cumsum([0] + [len(r.answers) for r in expected]).tolist()
        )
        assert block.answer_landmark_ids.tolist() == [
            a.landmark_id for r in expected for a in r.answers
        ]
        assert block.answer_says_yes.tolist() == [
            a.says_yes for r in expected for a in r.answers
        ]
        assert block.answer_time_s.tolist() == [
            a.response_time_s for r in expected for a in r.answers
        ]

    def test_materialize_prefix_matches_full(self, scenario, crowd_tasks):
        crowd = _fresh_crowd(scenario, 7)
        block = crowd.collect_responses_block(crowd_tasks[0], scenario.worker_pool.ids())
        full = block.to_responses()
        for upto in (0, 1, len(block) // 2, len(block), len(block) + 3):
            assert block.materialize(upto) == full[:upto]
        assert block.questions_answered() == sum(r.questions_answered for r in full)

    def test_accuracy_and_correctness_columns(self, scenario, crowd_tasks):
        """Diagnostic columns: correctness agrees with the ground-truth
        landmark set, accuracies with the behaviour model."""
        task = crowd_tasks[0]
        crowd = _fresh_crowd(scenario, 19)
        block = crowd.collect_responses_block(task, scenario.worker_pool.ids()[:6])
        truth_landmarks = crowd._cached_truth_landmarks(task.query)
        expected_correct = [
            says_yes == (landmark in truth_landmarks)
            for landmark, says_yes in zip(
                block.answer_landmark_ids.tolist(), block.answer_says_yes.tolist()
            )
        ]
        assert block.answer_correct.tolist() == expected_correct
        assert (block.answer_accuracy >= crowd.behavior.base_accuracy).all()
        assert (block.answer_accuracy <= crowd.behavior.max_accuracy).all()

    def test_block_aggregation_matches_object_aggregation(self, scenario, crowd_tasks):
        """collect_block_with_early_stop ≡ collect_with_early_stop on the
        materialized responses, field for field."""
        aggregator = AnswerAggregator(scenario.config.planner_config)
        crowd = _fresh_crowd(scenario, 3)
        for task in crowd_tasks:
            block = crowd.collect_responses_block(task, scenario.worker_pool.ids())
            expected = aggregator.collect_with_early_stop(
                task, block.to_responses(), expected_total=len(block)
            )
            result = aggregator.collect_block_with_early_stop(
                task, block, expected_total=len(block)
            )
            assert result.responses == expected.responses
            assert result.votes == expected.votes
            assert result.winning_route_index == expected.winning_route_index
            assert result.confidence == expected.confidence
            assert result.stopped_early == expected.stopped_early
            assert not any(
                isinstance(key, np.integer) or isinstance(value, np.integer)
                for key, value in result.votes.items()
            )

    def test_batched_false_declines_block(self, scenario, crowd_tasks):
        crowd = SimulatedCrowd(
            pool=scenario.worker_pool,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            ground_truth=scenario.crowd.ground_truth,
            behavior=scenario.crowd.behavior,
            seed=5,
            batched=False,
        )
        assert crowd.collect_responses_block(crowd_tasks[0], scenario.worker_pool.ids()) is None


class TestPlannerBlockParity:
    def test_planner_fingerprints_identical_to_object_path(self, scenario):
        """End to end: a planner consuming blocks is bit-identical (results,
        statistics, worker histories, rewards) to one on the object path."""
        import copy

        queries = scenario.sample_queries(30, seed=881)
        familiarity = scenario.build_planner().familiarity

        def run(batched):
            pool = copy.deepcopy(scenario.worker_pool)
            crowd = SimulatedCrowd(
                pool=pool,
                catalog=scenario.catalog,
                calibrator=scenario.calibrator,
                ground_truth=scenario.crowd.ground_truth,
                behavior=scenario.crowd.behavior,
                seed=scenario.crowd.seed,
                batched=batched,
            )
            planner = CrowdPlanner(
                network=scenario.network,
                catalog=scenario.catalog,
                calibrator=scenario.calibrator,
                sources=scenario.sources,
                worker_pool=pool,
                crowd_backend=crowd,
                config=scenario.config.planner_config,
                familiarity=familiarity,
            )
            results = planner.recommend_batch(queries)
            histories = {
                worker.worker_id: {
                    landmark: (record.correct, record.wrong)
                    for landmark, record in worker.answer_history.items()
                }
                for worker in pool.workers()
            }
            rewards = {worker.worker_id: worker.reward_points for worker in pool.workers()}
            return (
                [recommendation_fingerprint(result) for result in results],
                planner.statistics.as_dict(),
                histories,
                rewards,
            )

        assert run(batched=True) == run(batched=False)
