"""Tests for repro.utils.rng."""

from repro.utils.rng import SeedSequence, derive_rng, shuffled, spawn_seeds


class TestSeedSequence:
    def test_same_label_same_seed(self):
        seeds = SeedSequence(7)
        assert seeds.seed_for("crowd") == seeds.seed_for("crowd")

    def test_different_labels_different_seeds(self):
        seeds = SeedSequence(7)
        assert seeds.seed_for("crowd") != seeds.seed_for("trajectories")

    def test_different_roots_different_seeds(self):
        assert SeedSequence(1).seed_for("x") != SeedSequence(2).seed_for("x")

    def test_rng_for_reproducible(self):
        seeds = SeedSequence(7)
        assert seeds.rng_for("a").random() == seeds.rng_for("a").random()

    def test_numpy_rng_reproducible(self):
        seeds = SeedSequence(7)
        a = seeds.numpy_rng_for("np").normal(size=3)
        b = seeds.numpy_rng_for("np").normal(size=3)
        assert list(a) == list(b)


class TestHelpers:
    def test_derive_rng_with_label(self):
        assert derive_rng(3, "x").random() == derive_rng(3, "x").random()

    def test_derive_rng_without_label(self):
        assert derive_rng(3).random() == derive_rng(3).random()

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(9, 10)
        assert len(set(seeds)) == 10

    def test_shuffled_does_not_mutate(self):
        original = [1, 2, 3, 4, 5]
        result = shuffled(original, derive_rng(1))
        assert original == [1, 2, 3, 4, 5]
        assert sorted(result) == original
