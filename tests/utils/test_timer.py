"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer


def test_timer_measures_nonnegative_time():
    with Timer() as timer:
        sum(range(1000))
    assert timer.elapsed >= 0.0


def test_timer_stop_before_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_elapsed_while_running_increases():
    timer = Timer()
    timer.start()
    first = timer.elapsed
    sum(range(10000))
    assert timer.elapsed >= first
    timer.stop()
