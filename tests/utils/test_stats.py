"""Tests for repro.utils.stats."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    empirical_entropy,
    gini,
    mean,
    normalize,
    normalize_to_sum,
    pairs,
    percentile,
    summarize,
    weighted_choice,
)


class TestEmpiricalEntropy:
    pytestmark = [pytest.mark.property]

    def test_uniform_two_classes_is_one_bit(self):
        assert empirical_entropy(["a", "a", "b", "b"]) == pytest.approx(1.0)

    def test_single_class_is_zero(self):
        assert empirical_entropy(["a", "a", "a"]) == 0.0

    def test_empty_is_zero(self):
        assert empirical_entropy([]) == 0.0

    def test_n_distinct_items_is_log2_n(self):
        assert empirical_entropy(range(8)) == pytest.approx(3.0)

    def test_skewed_distribution_below_uniform(self):
        skewed = empirical_entropy(["a"] * 9 + ["b"])
        assert 0.0 < skewed < 1.0

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=50))
    def test_entropy_bounded_by_log2_of_distinct_count(self, labels):
        distinct = len(set(labels))
        assert 0.0 <= empirical_entropy(labels) <= math.log2(distinct) + 1e-9


class TestNormalize:
    def test_empty(self):
        assert normalize([]) == []

    def test_constant_maps_to_ones(self):
        assert normalize([4.0, 4.0]) == [1.0, 1.0]

    def test_range_maps_to_unit_interval(self):
        values = normalize([0.0, 5.0, 10.0])
        assert values == [0.0, 0.5, 1.0]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30))
    def test_output_in_unit_interval(self, values):
        result = normalize(values)
        assert all(0.0 <= value <= 1.0 for value in result)

    def test_normalize_to_sum_uniform_when_all_zero(self):
        assert normalize_to_sum([0.0, 0.0]) == [0.5, 0.5]

    def test_normalize_to_sum_sums_to_one(self):
        assert sum(normalize_to_sum([1.0, 2.0, 3.0])) == pytest.approx(1.0)


class TestPercentileAndMean:
    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_mean_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0


class TestGini:
    def test_equal_values_zero(self):
        assert gini([1.0, 1.0, 1.0]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_values_near_one(self):
        assert gini([0.0] * 99 + [100.0]) > 0.9

    def test_empty_is_zero(self):
        assert gini([]) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=40))
    def test_gini_in_unit_interval(self, values):
        assert -1e-9 <= gini(values) <= 1.0 + 1e-9


class TestWeightedChoiceAndPairs:
    def test_weighted_choice_respects_zero_weights(self):
        rng = random.Random(1)
        picks = {weighted_choice(["a", "b"], [0.0, 1.0], rng) for _ in range(50)}
        assert picks == {"b"}

    def test_weighted_choice_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(["a"], [0.5, 0.5], random.Random(0))

    def test_weighted_choice_empty(self):
        with pytest.raises(ValueError):
            weighted_choice([], [], random.Random(0))

    def test_pairs_count(self):
        assert len(pairs([1, 2, 3, 4])) == 6

    def test_pairs_empty(self):
        assert pairs([]) == []
