"""Tests for repro.trajectory.generator."""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.roadnet.shortest_path import dijkstra_path, path_cost
from repro.trajectory.generator import DriverProfile, TrajectoryGenerator, TrajectoryGeneratorConfig


@pytest.fixture(scope="module")
def generator(small_network):
    config = TrajectoryGeneratorConfig(
        num_drivers=6, num_hot_pairs=5, trips_per_driver=4, min_od_distance_m=600.0, seed=21
    )
    return TrajectoryGenerator(small_network, config)


class TestConfigValidation:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            TrajectoryGeneratorConfig(num_drivers=0)
        with pytest.raises(ConfigurationError):
            TrajectoryGeneratorConfig(route_alternatives=0)
        with pytest.raises(ConfigurationError):
            TrajectoryGeneratorConfig(gps_sampling_interval_m=0)
        with pytest.raises(ConfigurationError):
            TrajectoryGeneratorConfig(zipf_exponent=0)

    def test_driver_profile_exploration_bounds(self, small_network):
        from repro.spatial import Point

        with pytest.raises(ConfigurationError):
            DriverProfile(0, Point(0, 0), Point(1, 1), exploration=1.5)


class TestGeneration:
    def test_generate_drivers_count_and_determinism(self, generator):
        drivers = generator.generate_drivers()
        assert len(drivers) == 6
        again = generator.generate_drivers()
        assert [d.home for d in drivers] == [d.home for d in again]

    def test_hot_pairs_respect_min_distance(self, generator, small_network):
        for origin, destination in generator.generate_hot_od_pairs():
            distance = small_network.node_location(origin).distance_to(
                small_network.node_location(destination)
            )
            assert distance >= 600.0

    def test_generate_produces_valid_trajectories(self, generator, small_network):
        trajectories = generator.generate()
        assert trajectories
        for trajectory in trajectories[:10]:
            small_network.validate_path(list(trajectory.source_path))
            assert len(trajectory) >= 2
            assert trajectory.duration_s > 0

    def test_generate_is_deterministic(self, small_network):
        config = TrajectoryGeneratorConfig(num_drivers=3, num_hot_pairs=3, trips_per_driver=2, seed=5)
        a = TrajectoryGenerator(small_network, config).generate()
        b = TrajectoryGenerator(small_network, config).generate()
        assert [t.source_path for t in a] == [t.source_path for t in b]

    def test_trip_count_upper_bound(self, generator):
        trajectories = generator.generate()
        assert len(trajectories) <= 6 * 4


class TestPreferenceModel:
    def test_population_route_connects_endpoints(self, generator, small_network):
        origin, destination = generator.generate_hot_od_pairs()[0]
        path = generator.population_preferred_route(origin, destination)
        small_network.validate_path(path)
        assert path[0] == origin and path[-1] == destination

    def test_population_route_is_memoised(self, generator):
        origin, destination = generator.generate_hot_od_pairs()[0]
        first = generator.population_preferred_route(origin, destination)
        second = generator.population_preferred_route(origin, destination)
        assert first == second
        assert first is not second  # defensive copy

    def test_preference_cost_penalises_traffic_lights(self, generator, small_network):
        lit_edges = [
            edge for edge in small_network.edges() if small_network.node(edge.target).has_traffic_light
        ]
        dark_edges = [
            edge
            for edge in small_network.edges()
            if not small_network.node(edge.target).has_traffic_light
            and abs(edge.length_m - lit_edges[0].length_m) < 30
            and edge.road_class is lit_edges[0].road_class
        ]
        if not lit_edges or not dark_edges:
            pytest.skip("network sample lacks comparable edges")
        assert generator.preference_cost(lit_edges[0]) > generator.preference_cost(dark_edges[0])

    def test_driver_route_usually_differs_from_shortest_somewhere(self, generator, small_network):
        drivers = generator.generate_drivers()
        pairs = generator.generate_hot_od_pairs()
        rng = random.Random(3)
        differences = 0
        comparisons = 0
        for origin, destination in pairs:
            shortest = dijkstra_path(small_network, origin, destination)
            for driver in drivers[:3]:
                route = generator.driver_route(driver, origin, destination, rng)
                comparisons += 1
                if route != shortest:
                    differences += 1
        # Driver preferences must create divergence from the pure shortest
        # path for a meaningful share of trips — the premise of the paper.
        assert differences / comparisons > 0.2

    def test_path_to_trajectory_timestamps_increase(self, generator, small_network):
        origin, destination = generator.generate_hot_od_pairs()[0]
        path = generator.population_preferred_route(origin, destination)
        trajectory = generator.path_to_trajectory(path, 99, 1, 8 * 3600.0, random.Random(2))
        times = [p.timestamp for p in trajectory.points]
        assert times == sorted(times)
        assert trajectory.departure_time_s == 8 * 3600.0
