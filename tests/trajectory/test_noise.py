"""Tests for repro.trajectory.noise."""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.spatial import Point
from repro.trajectory.noise import GPSNoiseModel


class TestGPSNoiseModel:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GPSNoiseModel(position_sigma_m=-1)
        with pytest.raises(ConfigurationError):
            GPSNoiseModel(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            GPSNoiseModel(outlier_probability=-0.1)

    def test_endpoints_never_dropped(self):
        model = GPSNoiseModel(drop_probability=0.9, position_sigma_m=0.0, outlier_probability=0.0)
        points = [Point(float(i), 0.0) for i in range(20)]
        rng = random.Random(3)
        noisy = model.apply(points, rng)
        assert noisy[0] == points[0]
        assert noisy[-1] == points[-1]

    def test_zero_noise_is_identity(self):
        model = GPSNoiseModel(position_sigma_m=0.0, drop_probability=0.0, outlier_probability=0.0)
        points = [Point(0, 0), Point(10, 10)]
        assert model.apply(points, random.Random(1)) == points

    def test_noise_perturbs_points(self):
        model = GPSNoiseModel(position_sigma_m=5.0, drop_probability=0.0, outlier_probability=0.0)
        points = [Point(float(i * 10), 0.0) for i in range(10)]
        noisy = model.apply(points, random.Random(7))
        assert any(original != perturbed for original, perturbed in zip(points, noisy))
        # ... but not by absurd amounts (5 sigma bound).
        for original, perturbed in zip(points, noisy):
            assert original.distance_to(perturbed) < 5 * 5.0 * 2

    def test_dropping_reduces_count(self):
        model = GPSNoiseModel(position_sigma_m=0.0, drop_probability=0.5, outlier_probability=0.0)
        points = [Point(float(i), 0.0) for i in range(100)]
        noisy = model.apply(points, random.Random(9))
        assert len(noisy) < len(points)

    def test_deterministic_given_rng_seed(self):
        model = GPSNoiseModel()
        points = [Point(float(i), 0.0) for i in range(30)]
        assert model.apply(points, random.Random(4)) == model.apply(points, random.Random(4))
