"""Tests for repro.trajectory.calibration (anchor-based calibration)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import CalibrationError
from repro.landmarks.model import Landmark, LandmarkKind
from repro.roadnet.shortest_path import dijkstra_path
from repro.spatial import Point
from repro.trajectory.calibration import AnchorCalibrator


def landmark_at(landmark_id, x, y, extent=0.0):
    return Landmark(
        landmark_id=landmark_id,
        name=f"lm-{landmark_id}",
        kind=LandmarkKind.POINT if extent == 0 else LandmarkKind.REGION,
        anchor=Point(x, y),
        extent_m=extent,
    )


class TestCalibratorBasics:
    def test_invalid_radius(self, tiny_network):
        with pytest.raises(CalibrationError):
            AnchorCalibrator(tiny_network, [], attach_radius_m=0)

    def test_unknown_landmark_raises(self, tiny_network):
        calibrator = AnchorCalibrator(tiny_network, [landmark_at(1, 0, 0)])
        with pytest.raises(CalibrationError):
            calibrator.landmark(99)

    def test_too_short_path_raises(self, tiny_network):
        calibrator = AnchorCalibrator(tiny_network, [landmark_at(1, 0, 0)])
        with pytest.raises(CalibrationError):
            calibrator.calibrate_path([0])

    def test_landmark_count(self, tiny_network):
        calibrator = AnchorCalibrator(tiny_network, [landmark_at(1, 0, 0), landmark_at(2, 1, 1)])
        assert calibrator.landmark_count == 2


class TestCalibration:
    pytestmark = [pytest.mark.property]

    def test_on_route_landmark_attached_in_order(self, tiny_network):
        landmarks = [
            landmark_at(10, 0, 0),        # at node 0
            landmark_at(11, 100, 50),     # along edge 1->3
            landmark_at(12, 100, 100),    # at node 3
            landmark_at(13, 0, 100),      # at node 2, off the 0-1-3 route but within 150m default radius
        ]
        calibrator = AnchorCalibrator(tiny_network, landmarks, attach_radius_m=60.0)
        sequence = calibrator.calibrate_path([0, 1, 3])
        assert sequence == [10, 11, 12]

    def test_far_landmark_not_attached(self, tiny_network):
        calibrator = AnchorCalibrator(tiny_network, [landmark_at(1, 5000, 5000)], attach_radius_m=100.0)
        assert calibrator.calibrate_path([0, 1, 3]) == []

    def test_region_landmark_uses_extent(self, tiny_network):
        region = landmark_at(7, 400, 0, extent=320.0)
        calibrator = AnchorCalibrator(tiny_network, [region], attach_radius_m=50.0)
        assert calibrator.calibrate_path([0, 1]) == [7]

    def test_each_landmark_appears_once(self, small_network, small_catalog):
        calibrator = AnchorCalibrator(small_network, small_catalog.all())
        path = dijkstra_path(small_network, 0, small_network.node_count - 1)
        sequence = calibrator.calibrate_path(path)
        assert len(sequence) == len(set(sequence))

    def test_calibrate_points_matches_path_version(self, tiny_network):
        landmarks = [landmark_at(1, 0, 0), landmark_at(2, 100, 100)]
        calibrator = AnchorCalibrator(tiny_network, landmarks, attach_radius_m=60.0)
        path_sequence = calibrator.calibrate_path([0, 1, 3])
        point_sequence = calibrator.calibrate_points(tiny_network.path_points([0, 1, 3]))
        assert path_sequence == point_sequence

    def test_calibrate_points_too_short_raises(self, tiny_network):
        calibrator = AnchorCalibrator(tiny_network, [landmark_at(1, 0, 0)])
        with pytest.raises(CalibrationError):
            calibrator.calibrate_points([Point(0, 0)])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    def test_reverse_path_gives_reversed_set(self, small_network, small_catalog, origin, destination):
        if origin == destination:
            return
        calibrator = AnchorCalibrator(small_network, small_catalog.all())
        try:
            forward = dijkstra_path(small_network, origin, destination)
        except Exception:
            return
        backward = list(reversed(forward))
        try:
            small_network.validate_path(backward)
        except Exception:
            return
        forward_set = set(calibrator.calibrate_path(forward))
        backward_set = set(calibrator.calibrate_path(backward))
        # The same geometry passes the same landmarks regardless of direction.
        assert forward_set == backward_set
