"""Tests for repro.trajectory.model."""

import pytest

from repro.exceptions import TrajectoryError
from repro.spatial import Point
from repro.trajectory.model import GPSPoint, Trajectory


def make_trajectory(points, **kwargs):
    gps = [GPSPoint(Point(x, y), t) for (x, y, t) in points]
    return Trajectory(trajectory_id=kwargs.pop("trajectory_id", 1), driver_id=kwargs.pop("driver_id", 2), points=gps, **kwargs)


class TestTrajectory:
    def test_requires_two_points(self):
        with pytest.raises(TrajectoryError):
            make_trajectory([(0, 0, 0)])

    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(TrajectoryError):
            make_trajectory([(0, 0, 10), (1, 1, 5)])

    def test_duration_and_length(self):
        trajectory = make_trajectory([(0, 0, 0), (3, 4, 10), (3, 4, 20)])
        assert trajectory.duration_s == 20
        assert trajectory.length_m == pytest.approx(5.0)

    def test_average_speed(self):
        trajectory = make_trajectory([(0, 0, 0), (100, 0, 10)])
        assert trajectory.average_speed_ms() == pytest.approx(10.0)

    def test_average_speed_zero_duration(self):
        trajectory = make_trajectory([(0, 0, 5), (10, 0, 5)])
        assert trajectory.average_speed_ms() == 0.0

    def test_start_end_and_len(self):
        trajectory = make_trajectory([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        assert trajectory.start.location == Point(0, 0)
        assert trajectory.end.location == Point(2, 0)
        assert len(trajectory) == 3

    def test_locations_and_bounding_box(self):
        trajectory = make_trajectory([(0, 0, 0), (5, 7, 1)])
        assert trajectory.locations() == [Point(0, 0), Point(5, 7)]
        assert trajectory.bounding_box().max_y == 7

    def test_source_path_stored_as_tuple(self):
        trajectory = make_trajectory([(0, 0, 0), (1, 0, 1)], source_path=[4, 5, 6])
        assert trajectory.source_path == (4, 5, 6)

    def test_gps_point_accessors(self):
        point = GPSPoint(Point(3, 4), 12.0)
        assert point.x == 3 and point.y == 4 and point.timestamp == 12.0
