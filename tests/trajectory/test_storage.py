"""Tests for repro.trajectory.storage."""

import pytest

from repro.exceptions import TrajectoryError
from repro.spatial import Point
from repro.trajectory.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.storage import TrajectoryStore


@pytest.fixture(scope="module")
def populated_store(small_network):
    generator = TrajectoryGenerator(
        small_network,
        TrajectoryGeneratorConfig(num_drivers=6, num_hot_pairs=5, trips_per_driver=4, seed=33),
    )
    trajectories = generator.generate()
    store = TrajectoryStore(small_network)
    store.add_many(trajectories)
    return store, trajectories


class TestInsertion:
    def test_add_many_counts(self, populated_store):
        store, trajectories = populated_store
        assert len(store) == len(trajectories)

    def test_duplicate_id_rejected(self, populated_store, small_network):
        store, trajectories = populated_store
        with pytest.raises(TrajectoryError):
            store.add(trajectories[0])

    def test_unknown_id_raises(self, populated_store):
        store, _ = populated_store
        with pytest.raises(TrajectoryError):
            store.get(10_000)
        with pytest.raises(TrajectoryError):
            store.matched_path(10_000)

    def test_matched_path_is_source_path_when_available(self, populated_store):
        store, trajectories = populated_store
        sample = trajectories[0]
        assert store.matched_path(sample.trajectory_id) == list(sample.source_path)

    def test_map_matching_fallback_when_no_source_path(self, small_network):
        store = TrajectoryStore(small_network, use_source_paths=False)
        start = small_network.node_location(0)
        end = small_network.node_location(small_network.node_count - 1)
        trajectory = Trajectory(
            trajectory_id=1,
            driver_id=1,
            points=[GPSPoint(start, 0.0), GPSPoint(start.midpoint(end), 60.0), GPSPoint(end, 120.0)],
        )
        store.add(trajectory)
        path = store.matched_path(1)
        small_network.validate_path(path)


class TestQueries:
    def test_edge_and_node_support_consistency(self, populated_store):
        store, trajectories = populated_store
        sample_path = store.matched_path(trajectories[0].trajectory_id)
        first_edge = (sample_path[0], sample_path[1])
        assert store.edge_support(*first_edge) >= 1
        assert trajectories[0].trajectory_id in store.trajectories_through_edge(*first_edge)
        assert store.node_support(sample_path[0]) >= 1
        assert trajectories[0].trajectory_id in store.trajectories_through_node(sample_path[0])

    def test_find_by_od_returns_matching_trajectories(self, populated_store, small_network):
        store, trajectories = populated_store
        sample = trajectories[0]
        path = list(sample.source_path)
        origin = small_network.node_location(path[0])
        destination = small_network.node_location(path[-1])
        found = store.find_by_od(origin, destination, radius_m=150.0)
        assert sample.trajectory_id in found

    def test_find_by_od_time_slot_filter(self, populated_store, small_network):
        store, trajectories = populated_store
        sample = trajectories[0]
        path = list(sample.source_path)
        origin = small_network.node_location(path[0])
        destination = small_network.node_location(path[-1])
        departure = sample.departure_time_s % (24 * 3600)
        inside = store.find_by_od(origin, destination, 150.0, time_slot=(departure - 1, departure + 1))
        outside = store.find_by_od(
            origin, destination, 150.0, time_slot=((departure + 6 * 3600) % 86400, (departure + 6 * 3600) % 86400 + 1)
        )
        assert sample.trajectory_id in inside
        assert sample.trajectory_id not in outside

    def test_support_between_matches_find_by_od(self, populated_store, small_network):
        store, trajectories = populated_store
        sample = trajectories[0]
        path = list(sample.source_path)
        origin = small_network.node_location(path[0])
        destination = small_network.node_location(path[-1])
        assert store.support_between(origin, destination, 150.0) == len(
            store.find_by_od(origin, destination, 150.0)
        )

    def test_paths_between_are_valid(self, populated_store, small_network):
        store, trajectories = populated_store
        sample = trajectories[0]
        path = list(sample.source_path)
        origin = small_network.node_location(path[0])
        destination = small_network.node_location(path[-1])
        for stored_path in store.paths_between(origin, destination, 150.0):
            small_network.validate_path(stored_path)

    def test_node_visit_counts_total(self, populated_store):
        store, _ = populated_store
        counts = store.node_visit_counts()
        assert counts
        assert all(count >= 1 for count in counts.values())

    def test_far_away_od_has_no_support(self, populated_store):
        store, _ = populated_store
        assert store.support_between(Point(1e7, 1e7), Point(2e7, 2e7), 100.0) == 0
