"""End-to-end integration tests: the full request lifecycle on the shared scenario."""

import pytest

from repro.experiments.metrics import route_quality
from repro.utils.stats import mean


class TestEndToEnd:
    def test_batch_of_requests_resolves_and_is_reasonably_accurate(self, scenario):
        planner = scenario.build_planner()
        queries = scenario.sample_queries(12, seed=901)
        qualities = []
        methods = set()
        for query in queries:
            result = planner.recommend(query)
            methods.add(result.method)
            scenario.network.validate_path(list(result.route.path))
            truth = scenario.ground_truth_path(query)
            qualities.append(route_quality(scenario.network, result.route.path, truth))
        # The crowd-arbitrated system should track driver preference well on
        # average (the paper's headline claim, in shape if not in magnitude).
        assert mean(qualities) > 0.5
        # The pipeline should have exercised more than one resolution method.
        assert len(methods) >= 2

    def test_crowd_cost_decreases_with_repetition(self, scenario):
        planner = scenario.build_planner()
        queries = scenario.sample_queries(6, seed=902)
        # First pass: some crowd tasks are needed.
        for query in queries:
            planner.recommend(query)
        first_pass_crowd = planner.statistics.crowd_tasks
        # Second pass over the same queries: everything is a truth hit.
        for query in queries:
            result = planner.recommend(query)
            assert result.method == "truth_reuse"
        assert planner.statistics.crowd_tasks == first_pass_crowd
        assert planner.statistics.truth_hits >= len(queries)

    def test_crowdplanner_at_least_as_good_as_average_single_source(self, scenario):
        planner = scenario.build_planner()
        queries = scenario.sample_queries(10, seed=903)
        system_quality = []
        source_quality = []
        for query in queries:
            truth = scenario.ground_truth_path(query)
            result = planner.recommend(query)
            system_quality.append(route_quality(scenario.network, result.route.path, truth))
            per_source = []
            for source in scenario.sources:
                candidate = source.recommend_or_none(query)
                if candidate is not None:
                    per_source.append(route_quality(scenario.network, candidate.path, truth))
            if per_source:
                source_quality.append(mean(per_source))
        assert mean(system_quality) >= mean(source_quality) - 0.05

    def test_reward_economy_is_conserved(self, scenario):
        planner = scenario.build_planner()
        for query in scenario.sample_queries(8, seed=904):
            planner.recommend(query)
        ledger_total = planner.rewards.total_points_awarded()
        entries_total = sum(entry.points for entry in planner.rewards.history())
        assert ledger_total == pytest.approx(entries_total)
