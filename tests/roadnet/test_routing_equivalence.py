"""Compiled-graph routing must be indistinguishable from the reference.

The CSR fast path in ``repro.roadnet.shortest_path`` promises *bit-identical*
routes and costs versus the original dict-per-edge implementations preserved
in ``repro.roadnet.reference``.  These property-style tests compare the two
over small random networks (several seeds, both generator topologies),
including the forbidden-node/edge searches Yen's algorithm depends on and
custom per-edge cost callables.
"""

import pytest
from hypothesis import given, settings, strategies as st

# Hypothesis equivalence suite: thorough but the heaviest property coverage,
# so the default fast tier (scripts/ci.sh) skips it; --all runs it.
pytestmark = [pytest.mark.property, pytest.mark.slow]

from repro.exceptions import NoPathError
from repro.roadnet import reference
from repro.roadnet import shortest_path as fast
from repro.roadnet.generators import (
    GridCityConfig,
    generate_grid_city,
    generate_radial_city,
    random_od_pairs,
)

GRID_SEEDS = (1, 7, 23, 99)


def _grid(seed):
    return generate_grid_city(
        GridCityConfig(rows=6, cols=6, seed=seed, drop_edge_probability=0.08, jitter_m=20.0)
    )


def _pairs(network, count, seed):
    return random_od_pairs(network, count, min_distance_m=400.0, seed=seed)


@pytest.mark.parametrize("seed", GRID_SEEDS)
class TestIdenticalOnRandomGrids:
    def test_dijkstra_paths_identical(self, seed):
        network = _grid(seed)
        for origin, destination in _pairs(network, 12, seed + 100):
            assert fast.dijkstra_path(network, origin, destination) == reference.dijkstra_path(
                network, origin, destination
            )

    def test_dijkstra_time_cost_identical(self, seed):
        network = _grid(seed)
        for origin, destination in _pairs(network, 8, seed + 200):
            assert fast.dijkstra_path(
                network, origin, destination, cost=fast.free_flow_time_cost
            ) == reference.dijkstra_path(
                network, origin, destination, cost=reference.free_flow_time_cost
            )

    def test_astar_paths_identical(self, seed):
        network = _grid(seed)
        for origin, destination in _pairs(network, 12, seed + 300):
            assert fast.astar_path(network, origin, destination) == reference.astar_path(
                network, origin, destination
            )

    def test_k_shortest_identical(self, seed):
        network = _grid(seed)
        for origin, destination in _pairs(network, 5, seed + 400):
            for k in (1, 3, 7):
                assert fast.k_shortest_paths(
                    network, origin, destination, k
                ) == reference.k_shortest_paths(network, origin, destination, k)

    def test_path_costs_identical(self, seed):
        network = _grid(seed)
        for origin, destination in _pairs(network, 8, seed + 500):
            path = fast.dijkstra_path(network, origin, destination)
            assert fast.path_cost(network, path) == reference.path_cost(network, path)
            assert fast.path_cost(network, path, fast.free_flow_time_cost) == reference.path_cost(
                network, path, reference.free_flow_time_cost
            )

    def test_custom_cost_callable_identical(self, seed):
        network = _grid(seed)

        def wacky(edge):
            return edge.length_m * 1.7 + (3.0 if edge.road_class.value == "local" else 0.0)

        for origin, destination in _pairs(network, 6, seed + 600):
            assert fast.dijkstra_path(network, origin, destination, cost=wacky) == (
                reference.dijkstra_path(network, origin, destination, cost=wacky)
            )
            assert fast.k_shortest_paths(network, origin, destination, 4, cost=wacky) == (
                reference.k_shortest_paths(network, origin, destination, 4, cost=wacky)
            )


class TestForbiddenSets:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_forbidden_nodes_and_edges_identical(self, seed):
        network = _grid(seed % 50)
        pairs = _pairs(network, 1, seed % 997)
        if not pairs:
            return
        origin, destination = pairs[0]
        base = fast.dijkstra_path(network, origin, destination)
        # Forbid the middle node and first edge of the best path, as Yen does.
        forbidden_nodes = {base[len(base) // 2]} if len(base) > 2 else set()
        forbidden_edges = {(base[0], base[1])}
        try:
            expected = reference.dijkstra_path(
                network,
                origin,
                destination,
                forbidden_nodes=forbidden_nodes,
                forbidden_edges=forbidden_edges,
            )
        except NoPathError:
            with pytest.raises(NoPathError):
                fast.dijkstra_path(
                    network,
                    origin,
                    destination,
                    forbidden_nodes=forbidden_nodes,
                    forbidden_edges=forbidden_edges,
                )
            return
        got = fast.dijkstra_path(
            network,
            origin,
            destination,
            forbidden_nodes=forbidden_nodes,
            forbidden_edges=forbidden_edges,
        )
        assert got == expected

    def test_unknown_ids_in_forbidden_sets_are_ignored(self):
        network = _grid(3)
        origin, destination = _pairs(network, 1, 11)[0]
        assert fast.dijkstra_path(
            network,
            origin,
            destination,
            forbidden_nodes={-1, 10**9},
            forbidden_edges={(-1, -2), (10**9, 0)},
        ) == reference.dijkstra_path(network, origin, destination)


class TestRadialTopology:
    def test_all_algorithms_identical(self):
        network = generate_radial_city(rings=4, spokes=10, seed=3)
        for origin, destination in random_od_pairs(network, 10, min_distance_m=800.0, seed=4):
            assert fast.dijkstra_path(network, origin, destination) == reference.dijkstra_path(
                network, origin, destination
            )
            assert fast.astar_path(network, origin, destination) == reference.astar_path(
                network, origin, destination
            )
            assert fast.k_shortest_paths(network, origin, destination, 6) == (
                reference.k_shortest_paths(network, origin, destination, 6)
            )


class TestCompiledLifecycle:
    def test_compiled_view_is_cached(self):
        network = _grid(5)
        assert network.compiled() is network.compiled()

    def test_mutation_invalidates_compiled_view(self):
        from repro.roadnet.graph import RoadEdge, RoadNetwork, RoadNode
        from repro.spatial import Point

        network = RoadNetwork()
        network.add_node(RoadNode(0, Point(0.0, 0.0)))
        network.add_node(RoadNode(1, Point(1000.0, 0.0)))
        network.add_node(RoadNode(2, Point(500.0, 800.0)))
        network.add_edge(RoadEdge(0, 2, 1000.0), bidirectional=True)
        network.add_edge(RoadEdge(2, 1, 1000.0), bidirectional=True)
        assert fast.dijkstra_path(network, 0, 1) == [0, 2, 1]
        stale = network.compiled()
        # A new direct edge must be visible to the next search.
        network.add_edge(RoadEdge(0, 1, 900.0), bidirectional=True)
        assert network.compiled() is not stale
        assert fast.dijkstra_path(network, 0, 1) == [0, 1]

    def test_search_state_reuse_does_not_leak_between_calls(self):
        network = _grid(9)
        pairs = _pairs(network, 6, 21)
        # Interleave different endpoints and metrics; pooled scratch arrays
        # must behave as if freshly allocated for every call.
        expected = [reference.dijkstra_path(network, o, d) for o, d in pairs]
        for _ in range(3):
            assert [fast.dijkstra_path(network, o, d) for o, d in pairs] == expected
            network.compiled()  # touch the cache between rounds
