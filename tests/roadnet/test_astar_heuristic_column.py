"""The hybrid A* heuristic column must not change a single route.

:meth:`CompiledGraph.heuristic_column` is a lazy first-hit hybrid: a
destination's first query gets per-touched-node values
(:class:`_LazyHeuristicColumn`), the second and later queries the fully
precomputed column — same ``math.hypot`` arithmetic in both forms.
Heuristic ulps change heap ordering, so these tests pin the values of both
forms to the scalar reference arithmetic and the routes to the preserved
reference implementation — including the repeated-goal traffic shape the
column cache exists for and the one-off destinations the lazy form exists
for.
"""

import math

import pytest

from repro.roadnet import reference
from repro.roadnet import shortest_path as fast
from repro.roadnet.compiled import CompiledGraph, _LazyHeuristicColumn
from repro.roadnet.generators import GridCityConfig, generate_grid_city, random_od_pairs


@pytest.fixture(scope="module")
def city():
    return generate_grid_city(
        GridCityConfig(rows=8, cols=8, block_size_m=220.0, seed=11, drop_edge_probability=0.06)
    )


@pytest.fixture(scope="module")
def repeated_goal_pairs(city):
    pairs = random_od_pairs(city, 24, min_distance_m=600.0, seed=3)
    goals = sorted({destination for _, destination in pairs})[:4]
    origins = sorted({origin for origin, _ in pairs})[:6]
    return [(origin, goal) for goal in goals for origin in origins if origin != goal]


class TestColumnValues:
    def test_column_matches_reference_arithmetic(self, city):
        compiled = CompiledGraph(city)
        destination = compiled.node_count // 2
        first = compiled.heuristic_column(destination)
        column = compiled.heuristic_column(destination)
        goal_x, goal_y = compiled.xs[destination], compiled.ys[destination]
        expected = [
            math.hypot(x - goal_x, y - goal_y) for x, y in zip(compiled.xs, compiled.ys)
        ]
        # First hit: lazy per-node values; second: the full column.  Both
        # must be bitwise-identical to the reference arithmetic (ulps change
        # heap ordering).
        assert isinstance(first, _LazyHeuristicColumn)
        assert [first[node] for node in range(compiled.node_count)] == expected
        assert column == expected

    def test_scaled_column_matches_reference_arithmetic(self, city):
        compiled = CompiledGraph(city)
        destination = 3
        scale = 90.0 / 3.6
        first = compiled.heuristic_column(destination, scale)
        column = compiled.heuristic_column(destination, scale)
        goal_x, goal_y = compiled.xs[destination], compiled.ys[destination]
        expected = [
            math.hypot(x - goal_x, y - goal_y) / scale
            for x, y in zip(compiled.xs, compiled.ys)
        ]
        assert [first[node] for node in range(compiled.node_count)] == expected
        assert column == expected

    def test_first_query_is_lazy_then_column_is_cached(self, city):
        compiled = CompiledGraph(city)
        first = compiled.heuristic_column(0)
        assert isinstance(first, _LazyHeuristicColumn)
        assert not first.values  # nothing computed until a node is touched
        first[5]
        assert set(first.values) == {5}
        second = compiled.heuristic_column(0)
        assert isinstance(second, list)
        assert compiled.heuristic_column(0) is second  # cached thereafter

    def test_lazy_memoizes_per_node(self, city):
        compiled = CompiledGraph(city)
        lazy = compiled.heuristic_column(7)
        value = lazy[3]
        assert lazy[3] == value
        assert lazy.values == {3: value}

    def test_column_is_cached_and_lru_bounded(self, city, monkeypatch):
        compiled = CompiledGraph(city)
        monkeypatch.setattr(CompiledGraph, "HEURISTIC_CACHE_LIMIT", 3)
        for destination in range(6):
            compiled.heuristic_column(destination)  # first hit: lazy probe
            compiled.heuristic_column(destination)  # second hit: full column
        assert len(compiled._heuristic_columns) == 3
        # Least recently used destinations were evicted, recent ones kept.
        assert (5, 1.0) in compiled._heuristic_columns
        assert (0, 1.0) not in compiled._heuristic_columns

    def test_probe_ledger_is_bounded(self, city, monkeypatch):
        compiled = CompiledGraph(city)
        monkeypatch.setattr(CompiledGraph, "HEURISTIC_CACHE_LIMIT", 2)
        for destination in range(12):
            compiled.heuristic_column(destination)  # one-off destinations
        assert len(compiled._heuristic_probes) <= 4 * 2
        assert len(compiled._heuristic_columns) == 0  # nothing warmed


class TestRepeatedGoalRoutes:
    def test_repeated_goal_paths_match_reference(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs:
            assert fast.astar_path(city, origin, destination) == reference.astar_path(
                city, origin, destination
            )

    def test_cold_goal_paths_match_reference(self, repeated_goal_pairs):
        """Every pair against a fresh graph: each goal's *first* (lazy-form)
        search must already be route-identical to the reference."""
        fresh = generate_grid_city(
            GridCityConfig(rows=8, cols=8, block_size_m=220.0, seed=11, drop_edge_probability=0.06)
        )
        seen = set()
        for origin, destination in repeated_goal_pairs:
            if destination in seen:
                continue
            seen.add(destination)
            assert fast.astar_path(fresh, origin, destination) == reference.astar_path(
                fresh, origin, destination
            )

    def test_time_cost_with_heuristic_speed_matches_reference(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs[:8]:
            assert fast.astar_path(
                city, origin, destination, cost=fast.free_flow_time_cost, heuristic_speed_kmh=90.0
            ) == reference.astar_path(
                city, origin, destination, cost=reference.free_flow_time_cost,
                heuristic_speed_kmh=90.0,
            )

    def test_astar_agrees_with_dijkstra_cost(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs[:8]:
            astar = fast.astar_path(city, origin, destination)
            dijkstra = fast.dijkstra_path(city, origin, destination)
            assert fast.path_cost(city, astar) == pytest.approx(
                fast.path_cost(city, dijkstra), rel=1e-12
            )
