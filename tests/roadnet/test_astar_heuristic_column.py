"""The precomputed A* heuristic column must not change a single route.

The column (:meth:`CompiledGraph.heuristic_column`) replaces the former lazy
per-node heuristic: same ``math.hypot`` arithmetic, precomputed per
destination and amortised across repeated same-goal queries.  Heuristic ulps
change heap ordering, so these tests pin the values to the scalar reference
arithmetic and the routes to the preserved reference implementation —
including the repeated-goal traffic shape the cache exists for.
"""

import math

import pytest

from repro.roadnet import reference
from repro.roadnet import shortest_path as fast
from repro.roadnet.compiled import CompiledGraph
from repro.roadnet.generators import GridCityConfig, generate_grid_city, random_od_pairs


@pytest.fixture(scope="module")
def city():
    return generate_grid_city(
        GridCityConfig(rows=8, cols=8, block_size_m=220.0, seed=11, drop_edge_probability=0.06)
    )


@pytest.fixture(scope="module")
def repeated_goal_pairs(city):
    pairs = random_od_pairs(city, 24, min_distance_m=600.0, seed=3)
    goals = sorted({destination for _, destination in pairs})[:4]
    origins = sorted({origin for origin, _ in pairs})[:6]
    return [(origin, goal) for goal in goals for origin in origins if origin != goal]


class TestColumnValues:
    def test_column_matches_reference_arithmetic(self, city):
        compiled = city.compiled()
        destination = compiled.node_count // 2
        column = compiled.heuristic_column(destination)
        goal_x, goal_y = compiled.xs[destination], compiled.ys[destination]
        expected = [
            math.hypot(x - goal_x, y - goal_y) for x, y in zip(compiled.xs, compiled.ys)
        ]
        assert column == expected  # bitwise: ulps change heap ordering

    def test_scaled_column_matches_reference_arithmetic(self, city):
        compiled = city.compiled()
        destination = 3
        scale = 90.0 / 3.6
        column = compiled.heuristic_column(destination, scale)
        goal_x, goal_y = compiled.xs[destination], compiled.ys[destination]
        expected = [
            math.hypot(x - goal_x, y - goal_y) / scale
            for x, y in zip(compiled.xs, compiled.ys)
        ]
        assert column == expected

    def test_column_is_cached_and_lru_bounded(self, city, monkeypatch):
        compiled = CompiledGraph(city)
        assert compiled.heuristic_column(0) is compiled.heuristic_column(0)
        monkeypatch.setattr(CompiledGraph, "HEURISTIC_CACHE_LIMIT", 3)
        for destination in range(6):
            compiled.heuristic_column(destination)
        assert len(compiled._heuristic_columns) == 3
        # Least recently used destinations were evicted, recent ones kept.
        assert (5, 1.0) in compiled._heuristic_columns
        assert (0, 1.0) not in compiled._heuristic_columns


class TestRepeatedGoalRoutes:
    def test_repeated_goal_paths_match_reference(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs:
            assert fast.astar_path(city, origin, destination) == reference.astar_path(
                city, origin, destination
            )

    def test_time_cost_with_heuristic_speed_matches_reference(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs[:8]:
            assert fast.astar_path(
                city, origin, destination, cost=fast.free_flow_time_cost, heuristic_speed_kmh=90.0
            ) == reference.astar_path(
                city, origin, destination, cost=reference.free_flow_time_cost,
                heuristic_speed_kmh=90.0,
            )

    def test_astar_agrees_with_dijkstra_cost(self, city, repeated_goal_pairs):
        for origin, destination in repeated_goal_pairs[:8]:
            astar = fast.astar_path(city, origin, destination)
            dijkstra = fast.dijkstra_path(city, origin, destination)
            assert fast.path_cost(city, astar) == pytest.approx(
                fast.path_cost(city, dijkstra), rel=1e-12
            )
