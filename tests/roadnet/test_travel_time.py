"""Tests for repro.roadnet.travel_time."""

import pytest

from repro.exceptions import ConfigurationError
from repro.roadnet.graph import RoadClass, RoadEdge
from repro.roadnet.travel_time import SpeedProfile, TravelTimeModel


class TestSpeedProfile:
    def test_peak_is_slower_than_offpeak(self):
        profile = SpeedProfile()
        assert profile.multiplier(8.0 * 3600) > profile.multiplier(3.0 * 3600)

    def test_multiplier_at_least_base(self):
        profile = SpeedProfile()
        for hour in range(24):
            assert profile.multiplier(hour * 3600) >= profile.base_multiplier - 1e-9

    def test_peak_multiplier_bound(self):
        profile = SpeedProfile(peak_multiplier=2.0)
        for hour in range(0, 24):
            assert profile.multiplier(hour * 3600) <= 2.0 + 1e-9

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            SpeedProfile(peak_multiplier=0.5, base_multiplier=1.0)
        with pytest.raises(ConfigurationError):
            SpeedProfile(peak_width_hours=0)

    def test_wraps_around_midnight(self):
        profile = SpeedProfile(morning_peak_hour=0.5)
        assert profile.multiplier(23.5 * 3600) > profile.multiplier(12 * 3600)


class TestTravelTimeModel:
    def test_edge_travel_time_slower_at_peak(self):
        model = TravelTimeModel()
        edge = RoadEdge(0, 1, 1000.0, RoadClass.ARTERIAL)
        assert model.edge_travel_time(edge, 8 * 3600.0) > model.edge_travel_time(edge, 3 * 3600.0)

    def test_edge_travel_time_at_least_free_flow(self):
        model = TravelTimeModel()
        edge = RoadEdge(0, 1, 500.0, RoadClass.LOCAL)
        assert model.edge_travel_time(edge, 12 * 3600.0) >= edge.free_flow_travel_time_s

    def test_path_travel_time_includes_lights(self, tiny_network):
        model = TravelTimeModel(traffic_light_penalty_s=30.0)
        silent = TravelTimeModel(traffic_light_penalty_s=0.0)
        # Node 1 has a traffic light on the tiny network.
        with_light = model.path_travel_time(tiny_network, [0, 1, 3], 3 * 3600.0)
        without_light = silent.path_travel_time(tiny_network, [0, 1, 3], 3 * 3600.0)
        # The clock advances past the light wait, so the congestion seen by
        # later edges shifts slightly; the penalty dominates the difference.
        assert with_light - without_light == pytest.approx(30.0, abs=1.0)

    def test_negative_light_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            TravelTimeModel(traffic_light_penalty_s=-1)

    def test_edge_cost_at_returns_callable(self):
        model = TravelTimeModel()
        edge = RoadEdge(0, 1, 1000.0, RoadClass.ARTERIAL)
        cost = model.edge_cost_at(8 * 3600.0)
        assert cost(edge) == pytest.approx(model.edge_travel_time(edge, 8 * 3600.0))

    def test_custom_profiles_override(self):
        flat = SpeedProfile(peak_multiplier=1.0)
        model = TravelTimeModel(profiles={RoadClass.ARTERIAL: flat})
        edge = RoadEdge(0, 1, 1000.0, RoadClass.ARTERIAL)
        assert model.edge_travel_time(edge, 8 * 3600.0) == pytest.approx(edge.free_flow_travel_time_s)
