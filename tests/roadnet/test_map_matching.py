"""Tests for repro.roadnet.map_matching."""

import pytest

from repro.exceptions import TrajectoryError
from repro.roadnet.map_matching import MapMatcher
from repro.spatial import Point


class TestMapMatcher:
    def test_invalid_snap_distance(self, small_network):
        with pytest.raises(TrajectoryError):
            MapMatcher(small_network, max_snap_distance_m=0)

    def test_snap_point(self, tiny_network):
        matcher = MapMatcher(tiny_network, max_snap_distance_m=50)
        assert matcher.snap_point(Point(5, 5)) == 0
        assert matcher.snap_point(Point(5000, 5000)) is None

    def test_match_follows_path(self, tiny_network):
        matcher = MapMatcher(tiny_network)
        points = [Point(2, 1), Point(95, 3), Point(99, 95)]
        assert matcher.match(points) == [0, 1, 3]

    def test_match_fills_gaps_with_shortest_path(self, tiny_network):
        matcher = MapMatcher(tiny_network)
        # Only origin and destination points: the matcher must bridge them.
        path = matcher.match([Point(0, 0), Point(100, 100)])
        assert path[0] == 0 and path[-1] == 3
        tiny_network.validate_path(path)

    def test_match_collapses_duplicates(self, tiny_network):
        matcher = MapMatcher(tiny_network)
        path = matcher.match([Point(0, 0), Point(1, 1), Point(2, 0), Point(100, 5), Point(99, 97)])
        assert path == [0, 1, 3]

    def test_match_requires_two_points(self, tiny_network):
        with pytest.raises(TrajectoryError):
            MapMatcher(tiny_network).match([Point(0, 0)])

    def test_match_off_network_raises(self, tiny_network):
        matcher = MapMatcher(tiny_network, max_snap_distance_m=50)
        with pytest.raises(TrajectoryError):
            matcher.match([Point(9000, 9000), Point(9100, 9100)])

    def test_match_produces_valid_path_on_grid(self, small_network):
        matcher = MapMatcher(small_network)
        start = small_network.node_location(0)
        end = small_network.node_location(small_network.node_count - 1)
        mid = start.midpoint(end)
        path = matcher.match([start, mid, end])
        small_network.validate_path(path)
        assert path[0] == 0
        assert path[-1] == small_network.node_count - 1

    def test_removes_backtracking(self, tiny_network):
        matcher = MapMatcher(tiny_network)
        # Noise snaps to 1 then back near 0 then onwards: a-b-a artefacts are removed.
        path = matcher.match([Point(0, 0), Point(95, 0), Point(10, 2), Point(95, 0), Point(99, 95)])
        for first, second, third in zip(path, path[1:], path[2:]):
            assert not (first == third)
