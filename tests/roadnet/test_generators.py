"""Tests for repro.roadnet.generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.roadnet.generators import (
    GridCityConfig,
    _reachable_from,
    generate_grid_city,
    generate_radial_city,
    random_od_pairs,
)
from repro.roadnet.graph import RoadClass


class TestGridCityConfig:
    def test_rejects_too_small(self):
        with pytest.raises(ConfigurationError):
            GridCityConfig(rows=1, cols=5)

    def test_rejects_bad_drop_probability(self):
        with pytest.raises(ConfigurationError):
            GridCityConfig(drop_edge_probability=0.9)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            GridCityConfig(jitter_m=-1)


class TestGridCity:
    def test_node_count(self):
        network = generate_grid_city(GridCityConfig(rows=6, cols=7, seed=1))
        assert network.node_count == 42

    def test_deterministic_for_seed(self):
        a = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=9))
        b = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=9))
        assert a.describe() == b.describe()
        assert sorted(e.key for e in a.edges()) == sorted(e.key for e in b.edges())

    def test_different_seeds_differ(self):
        a = generate_grid_city(GridCityConfig(rows=6, cols=6, seed=1, drop_edge_probability=0.1))
        b = generate_grid_city(GridCityConfig(rows=6, cols=6, seed=2, drop_edge_probability=0.1))
        assert sorted(e.key for e in a.edges()) != sorted(e.key for e in b.edges())

    def test_strongly_connected(self):
        network = generate_grid_city(GridCityConfig(rows=8, cols=8, seed=4, drop_edge_probability=0.2))
        root = network.node_ids()[0]
        assert _reachable_from(network, root) == set(network.node_ids())

    def test_has_multiple_road_classes(self):
        network = generate_grid_city(GridCityConfig(rows=10, cols=10, seed=2))
        classes = {edge.road_class for edge in network.edges()}
        assert RoadClass.ARTERIAL in classes
        assert RoadClass.LOCAL in classes
        assert RoadClass.HIGHWAY in classes

    def test_edges_are_bidirectional(self):
        network = generate_grid_city(GridCityConfig(rows=5, cols=5, seed=3, drop_edge_probability=0.0))
        for edge in list(network.edges()):
            assert network.has_edge(edge.target, edge.source)


class TestRadialCity:
    def test_node_count(self):
        network = generate_radial_city(rings=3, spokes=8)
        assert network.node_count == 1 + 3 * 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_radial_city(rings=0)
        with pytest.raises(ConfigurationError):
            generate_radial_city(spokes=2)
        with pytest.raises(ConfigurationError):
            generate_radial_city(ring_spacing_m=0)

    def test_center_connects_to_first_ring(self):
        network = generate_radial_city(rings=2, spokes=6)
        assert len(network.neighbors(0)) == 6

    def test_strongly_connected(self):
        network = generate_radial_city(rings=4, spokes=10)
        assert _reachable_from(network, 0) == set(network.node_ids())


class TestRandomOdPairs:
    def test_respects_min_distance(self, small_network):
        pairs = random_od_pairs(small_network, 10, min_distance_m=800.0, seed=5)
        for origin, destination in pairs:
            distance = small_network.node_location(origin).distance_to(
                small_network.node_location(destination)
            )
            assert distance >= 800.0

    def test_count(self, small_network):
        assert len(random_od_pairs(small_network, 7, min_distance_m=400.0)) == 7

    def test_negative_count_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            random_od_pairs(small_network, -1)
