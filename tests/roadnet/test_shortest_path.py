"""Tests for repro.roadnet.shortest_path."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoPathError, RoadNetworkError
from repro.roadnet.generators import GridCityConfig, generate_grid_city
from repro.roadnet.graph import RoadEdge, RoadNetwork, RoadNode
from repro.roadnet.shortest_path import (
    astar_path,
    dijkstra_path,
    free_flow_time_cost,
    k_shortest_paths,
    length_cost,
    path_cost,
)
from repro.spatial import Point


class TestDijkstra:
    def test_shortest_route_on_tiny_network(self, tiny_network):
        path = dijkstra_path(tiny_network, 0, 3)
        assert path in ([0, 1, 3], [0, 2, 3])
        assert tiny_network.path_length(path) == pytest.approx(200.0)

    def test_unknown_nodes_raise(self, tiny_network):
        with pytest.raises(RoadNetworkError):
            dijkstra_path(tiny_network, 0, 99)
        with pytest.raises(RoadNetworkError):
            dijkstra_path(tiny_network, 99, 0)

    def test_no_path_raises(self):
        network = RoadNetwork()
        network.add_node(RoadNode(0, Point(0, 0)))
        network.add_node(RoadNode(1, Point(100, 0)))
        with pytest.raises(NoPathError):
            dijkstra_path(network, 0, 1)

    def test_forbidden_nodes(self, tiny_network):
        path = dijkstra_path(tiny_network, 0, 3, forbidden_nodes={1, 2})
        assert path == [0, 3]

    def test_forbidden_edges(self, tiny_network):
        path = dijkstra_path(tiny_network, 0, 3, forbidden_edges={(0, 1), (0, 2)})
        assert path == [0, 3]

    def test_negative_cost_rejected(self, tiny_network):
        with pytest.raises(RoadNetworkError):
            dijkstra_path(tiny_network, 0, 3, cost=lambda edge: -1.0)

    def test_origin_equals_destination(self, tiny_network):
        assert dijkstra_path(tiny_network, 0, 0) == [0]

    def test_time_cost_prefers_fast_road(self):
        # Two parallel roads: a long highway and a short local street.  The
        # length cost picks the local street, the time cost the highway.
        network = RoadNetwork()
        network.add_node(RoadNode(0, Point(0, 0)))
        network.add_node(RoadNode(1, Point(1000, 0)))
        network.add_node(RoadNode(2, Point(500, 400)))
        from repro.roadnet.graph import RoadClass

        network.add_edge(RoadEdge(0, 1, 1000.0, RoadClass.LOCAL), bidirectional=True)
        network.add_edge(RoadEdge(0, 2, 700.0, RoadClass.HIGHWAY), bidirectional=True)
        network.add_edge(RoadEdge(2, 1, 700.0, RoadClass.HIGHWAY), bidirectional=True)
        assert dijkstra_path(network, 0, 1, cost=length_cost) == [0, 1]
        assert dijkstra_path(network, 0, 1, cost=free_flow_time_cost) == [0, 2, 1]


class TestAStar:
    def test_matches_dijkstra_cost_on_grid(self, small_network):
        nodes = small_network.node_ids()
        for origin, destination in [(nodes[0], nodes[-1]), (nodes[3], nodes[-5])]:
            d_path = dijkstra_path(small_network, origin, destination)
            a_path = astar_path(small_network, origin, destination)
            assert path_cost(small_network, a_path) == pytest.approx(
                path_cost(small_network, d_path)
            )

    def test_time_heuristic(self, small_network):
        nodes = small_network.node_ids()
        path = astar_path(
            small_network,
            nodes[0],
            nodes[-1],
            cost=free_flow_time_cost,
            heuristic_speed_kmh=120.0,
        )
        reference = dijkstra_path(small_network, nodes[0], nodes[-1], cost=free_flow_time_cost)
        assert path_cost(small_network, path, free_flow_time_cost) == pytest.approx(
            path_cost(small_network, reference, free_flow_time_cost)
        )

    def test_invalid_heuristic_speed(self, tiny_network):
        with pytest.raises(RoadNetworkError):
            astar_path(tiny_network, 0, 3, heuristic_speed_kmh=0.0)


class TestKShortestPaths:
    def test_returns_increasing_costs(self, small_network):
        nodes = small_network.node_ids()
        paths = k_shortest_paths(small_network, nodes[0], nodes[-1], 4)
        costs = [path_cost(small_network, path) for path in paths]
        assert costs == sorted(costs)

    def test_paths_are_distinct_and_loopless(self, small_network):
        nodes = small_network.node_ids()
        paths = k_shortest_paths(small_network, nodes[0], nodes[-1], 4)
        assert len({tuple(path) for path in paths}) == len(paths)
        for path in paths:
            assert len(path) == len(set(path))

    def test_first_path_is_shortest(self, tiny_network):
        paths = k_shortest_paths(tiny_network, 0, 3, 3)
        assert path_cost(tiny_network, paths[0]) == pytest.approx(200.0)

    def test_k_zero(self, tiny_network):
        assert k_shortest_paths(tiny_network, 0, 3, 0) == []

    def test_k_larger_than_available(self, tiny_network):
        paths = k_shortest_paths(tiny_network, 0, 3, 50)
        assert 1 <= len(paths) <= 50


class TestAgainstBruteForce:
    pytestmark = [pytest.mark.property]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_dijkstra_optimal_on_small_grid(self, seed):
        network = generate_grid_city(
            GridCityConfig(rows=4, cols=4, seed=seed % 1000, drop_edge_probability=0.0, jitter_m=5.0)
        )
        origin, destination = 0, network.node_count - 1
        best = dijkstra_path(network, origin, destination)
        best_cost = path_cost(network, best)
        # Enumerate all simple paths up to length 8 nodes by DFS and check
        # none beats Dijkstra.
        stack = [(origin, [origin], 0.0)]
        while stack:
            node, path, cost = stack.pop()
            if cost > best_cost + 1e-6:
                continue
            if node == destination:
                assert cost >= best_cost - 1e-6
                continue
            if len(path) >= 8:
                continue
            for neighbor in network.neighbors(node):
                if neighbor in path:
                    continue
                edge = network.edge(node, neighbor)
                stack.append((neighbor, path + [neighbor], cost + edge.length_m))
