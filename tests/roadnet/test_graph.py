"""Tests for repro.roadnet.graph."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.roadnet.graph import RoadClass, RoadEdge, RoadNetwork, RoadNode
from repro.spatial import Point


@pytest.fixture()
def network():
    net = RoadNetwork(index_cell_size=100.0)
    net.add_node(RoadNode(1, Point(0, 0)))
    net.add_node(RoadNode(2, Point(100, 0), has_traffic_light=True))
    net.add_node(RoadNode(3, Point(200, 0)))
    net.add_edge(RoadEdge(1, 2, 100.0, RoadClass.ARTERIAL), bidirectional=True)
    net.add_edge(RoadEdge(2, 3, 100.0, RoadClass.LOCAL))
    return net


class TestNodes:
    def test_node_lookup(self, network):
        assert network.node(1).location == Point(0, 0)
        assert network.has_node(2)
        assert not network.has_node(99)

    def test_unknown_node_raises(self, network):
        with pytest.raises(RoadNetworkError):
            network.node(99)

    def test_node_count_and_ids(self, network):
        assert network.node_count == 3
        assert sorted(network.node_ids()) == [1, 2, 3]

    def test_nearest_node(self, network):
        assert network.nearest_node(Point(95, 5)) == 2

    def test_nodes_within(self, network):
        found = [node for node, _ in network.nodes_within(Point(0, 0), 150)]
        assert set(found) == {1, 2}


class TestEdges:
    def test_edge_lookup_and_direction(self, network):
        assert network.has_edge(1, 2)
        assert network.has_edge(2, 1)  # bidirectional
        assert network.has_edge(2, 3)
        assert not network.has_edge(3, 2)  # one way

    def test_unknown_edge_raises(self, network):
        with pytest.raises(RoadNetworkError):
            network.edge(3, 1)

    def test_edge_to_missing_node_raises(self, network):
        with pytest.raises(RoadNetworkError):
            network.add_edge(RoadEdge(1, 99, 10.0))

    def test_self_loop_rejected(self, network):
        with pytest.raises(RoadNetworkError):
            network.add_edge(RoadEdge(1, 1, 10.0))

    def test_non_positive_length_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadEdge(1, 2, 0.0)

    def test_neighbors_and_predecessors(self, network):
        assert set(network.neighbors(2)) == {1, 3}
        assert network.predecessors(3) == [2]

    def test_out_edges(self, network):
        assert {edge.target for edge in network.out_edges(2)} == {1, 3}

    def test_free_flow_speed_uses_class_default(self):
        edge = RoadEdge(1, 2, 1000.0, RoadClass.HIGHWAY)
        assert edge.free_flow_speed_kmh == RoadClass.HIGHWAY.default_speed_kmh
        assert edge.free_flow_travel_time_s == pytest.approx(36.0)

    def test_explicit_speed_limit_wins(self):
        edge = RoadEdge(1, 2, 1000.0, RoadClass.HIGHWAY, speed_limit_kmh=50.0)
        assert edge.free_flow_speed_kmh == 50.0


class TestPaths:
    def test_validate_path_accepts_connected(self, network):
        network.validate_path([1, 2, 3])

    def test_validate_path_rejects_short(self, network):
        with pytest.raises(RoadNetworkError):
            network.validate_path([1])

    def test_validate_path_rejects_disconnected(self, network):
        with pytest.raises(RoadNetworkError):
            network.validate_path([1, 3])

    def test_validate_path_rejects_unknown_node(self, network):
        with pytest.raises(RoadNetworkError):
            network.validate_path([1, 99])

    def test_path_length(self, network):
        assert network.path_length([1, 2, 3]) == pytest.approx(200.0)

    def test_path_traffic_lights(self, network):
        assert network.path_traffic_lights([1, 2, 3]) == 1

    def test_path_points(self, network):
        assert network.path_points([1, 2]) == [Point(0, 0), Point(100, 0)]

    def test_bounding_box(self, network):
        box = network.bounding_box()
        assert box.max_x == 200

    def test_empty_network_bounding_box_raises(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork().bounding_box()

    def test_describe(self, network):
        summary = network.describe()
        assert summary["nodes"] == 3
        assert summary["edges"] == 3
