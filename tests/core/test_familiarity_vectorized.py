"""Vectorized familiarity accumulation: bit-identical to the sequential
oracle across seeds, with the neighbour structure cached per catalogue
version."""

import numpy as np
import pytest

from repro.core.familiarity import FamiliarityModel
from repro.landmarks.model import Landmark, LandmarkKind
from repro.spatial import Point


@pytest.fixture()
def model(scenario):
    return FamiliarityModel(scenario.worker_pool, scenario.catalog)


class TestAccumulateEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 23, 101])
    def test_bit_identical_on_random_matrices(self, model, seed):
        rng = np.random.default_rng(seed)
        completed = rng.random((len(model.worker_ids), len(model.landmark_ids)))
        vectorized = model._accumulate(completed)
        reference = model._accumulate_reference(completed)
        assert np.array_equal(vectorized, reference)

    @pytest.mark.parametrize("use_pmf", [True, False])
    def test_bit_identical_through_fit(self, scenario, use_pmf):
        model = FamiliarityModel(scenario.worker_pool, scenario.catalog)
        accumulated = model.fit(use_pmf=use_pmf)
        assert np.array_equal(accumulated, model._accumulate_reference(model.completed_matrix()))

    def test_zero_matrix_stays_zero(self, model):
        completed = np.zeros((len(model.worker_ids), len(model.landmark_ids)))
        assert not model._accumulate(completed).any()


class TestStructureCache:
    def test_rounds_cached_between_calls(self, model):
        first = model._accumulation_rounds()
        assert model._accumulation_rounds() is first

    def test_catalog_mutation_invalidates(self, scenario):
        # A private catalogue copy so mutating it cannot leak into the
        # session-scoped scenario.
        from repro.landmarks.model import LandmarkCatalog

        catalog = LandmarkCatalog(scenario.catalog.all())
        model = FamiliarityModel(scenario.worker_pool, catalog)
        rng = np.random.default_rng(3)
        completed = rng.random((len(model.worker_ids), len(model.landmark_ids)))
        stale_rounds = model._accumulation_rounds()

        # Moving an existing landmark changes the neighbourhood geometry
        # without changing the id set the model was built over.
        moved = catalog.get(model.landmark_ids[0])
        catalog.add(
            Landmark(
                landmark_id=moved.landmark_id,
                name=moved.name,
                kind=LandmarkKind.POINT,
                anchor=Point(moved.anchor.x + 5_000.0, moved.anchor.y + 5_000.0),
            )
        )
        assert model._accumulation_rounds() is not stale_rounds
        assert np.array_equal(model._accumulate(completed), model._accumulate_reference(completed))
