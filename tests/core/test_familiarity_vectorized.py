"""Vectorized familiarity kernels vs their sequential oracles: the
accumulation (bit-identical, neighbour structure cached per catalogue
version) and the raw-matrix anchor-distance kernel (tight allclose — its
``np.hypot``/``np.exp`` may differ from the scalar ``math`` calls by an
ulp)."""

import numpy as np
import pytest

from repro.core.familiarity import FamiliarityModel
from repro.landmarks.model import Landmark, LandmarkKind
from repro.spatial import Point


@pytest.fixture()
def model(scenario):
    return FamiliarityModel(scenario.worker_pool, scenario.catalog)


class TestRawMatrixEquivalence:
    def test_matches_double_loop_oracle(self, model):
        fast = model.build_raw_matrix()
        oracle = model.build_raw_matrix_reference()
        assert fast.shape == oracle.shape
        np.testing.assert_allclose(fast, oracle, rtol=1e-12, atol=1e-15)
        # "No information" entries must agree exactly: the PMF treats zeros
        # as unobserved, so an ulp of leakage would change the sparsity.
        assert np.array_equal(fast == 0.0, oracle == 0.0)

    def test_history_term_scattered(self, scenario):
        import copy

        pool = copy.deepcopy(scenario.worker_pool)
        model = FamiliarityModel(pool, scenario.catalog)
        worker_id = model.worker_ids[0]
        landmark_id = model.landmark_ids[0]
        worker = pool.get(worker_id)
        worker.record_answer(landmark_id, correct=True)
        worker.record_answer(landmark_id, correct=False)
        fast = model.build_raw_matrix()
        oracle = model.build_raw_matrix_reference()
        np.testing.assert_allclose(fast, oracle, rtol=1e-12, atol=1e-15)
        row = model._worker_index[worker_id]
        column = model._landmark_index[landmark_id]
        beta = model.config.familiarity_beta
        alpha = model.config.familiarity_alpha
        assert fast[row, column] >= (1.0 - alpha) * (1.0 + beta * 1.0)

    def test_no_familiar_places_falls_back_to_home(self, scenario):
        import copy

        pool = copy.deepcopy(scenario.worker_pool)
        for worker in pool.workers():
            worker.familiar_places.clear()
        model = FamiliarityModel(pool, scenario.catalog)
        np.testing.assert_allclose(
            model.build_raw_matrix(), model.build_raw_matrix_reference(), rtol=1e-12, atol=1e-15
        )

    def test_fit_consumes_vectorized_kernel(self, scenario):
        model = FamiliarityModel(scenario.worker_pool, scenario.catalog)
        accumulated = model.fit(use_pmf=False)
        oracle = model._accumulate_reference(model.build_raw_matrix())
        assert np.array_equal(accumulated, oracle)


class TestAccumulateEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 23, 101])
    def test_bit_identical_on_random_matrices(self, model, seed):
        rng = np.random.default_rng(seed)
        completed = rng.random((len(model.worker_ids), len(model.landmark_ids)))
        vectorized = model._accumulate(completed)
        reference = model._accumulate_reference(completed)
        assert np.array_equal(vectorized, reference)

    @pytest.mark.parametrize("use_pmf", [True, False])
    def test_bit_identical_through_fit(self, scenario, use_pmf):
        model = FamiliarityModel(scenario.worker_pool, scenario.catalog)
        accumulated = model.fit(use_pmf=use_pmf)
        assert np.array_equal(accumulated, model._accumulate_reference(model.completed_matrix()))

    def test_zero_matrix_stays_zero(self, model):
        completed = np.zeros((len(model.worker_ids), len(model.landmark_ids)))
        assert not model._accumulate(completed).any()


class TestStructureCache:
    def test_rounds_cached_between_calls(self, model):
        first = model._accumulation_rounds()
        assert model._accumulation_rounds() is first

    def test_catalog_mutation_invalidates(self, scenario):
        # A private catalogue copy so mutating it cannot leak into the
        # session-scoped scenario.
        from repro.landmarks.model import LandmarkCatalog

        catalog = LandmarkCatalog(scenario.catalog.all())
        model = FamiliarityModel(scenario.worker_pool, catalog)
        rng = np.random.default_rng(3)
        completed = rng.random((len(model.worker_ids), len(model.landmark_ids)))
        stale_rounds = model._accumulation_rounds()

        # Moving an existing landmark changes the neighbourhood geometry
        # without changing the id set the model was built over.
        moved = catalog.get(model.landmark_ids[0])
        catalog.add(
            Landmark(
                landmark_id=moved.landmark_id,
                name=moved.name,
                kind=LandmarkKind.POINT,
                anchor=Point(moved.anchor.x + 5_000.0, moved.anchor.y + 5_000.0),
            )
        )
        assert model._accumulation_rounds() is not stale_rounds
        assert np.array_equal(model._accumulate(completed), model._accumulate_reference(completed))
