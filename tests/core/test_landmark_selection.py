"""Tests for repro.core.landmark_selection (Section III-B)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discriminative import is_discriminative
from repro.core.landmark_selection import (
    BruteForceSelector,
    GreedySelector,
    IncrementalLandmarkSelector,
    SelectionResult,
    minimum_set_size,
    objective_value,
)
from repro.exceptions import TaskGenerationError

from .helpers import landmark_route, paper_example_routes


ALL_SELECTORS = [BruteForceSelector, GreedySelector, IncrementalLandmarkSelector]


class TestObjective:
    def test_objective_value_is_mean_significance(self):
        assert objective_value([1, 2], {1: 0.4, 2: 0.8}) == pytest.approx(0.6)

    def test_objective_empty(self):
        assert objective_value([], {}) == 0.0

    def test_minimum_set_size(self):
        assert minimum_set_size(1) == 0
        assert minimum_set_size(2) == 1
        assert minimum_set_size(4) == 2
        assert minimum_set_size(5) == 3


class TestSelectorsOnPaperExample:
    @pytest.mark.parametrize("selector_cls", ALL_SELECTORS)
    def test_result_is_discriminative(self, selector_cls):
        routes, significance = paper_example_routes()
        result = selector_cls().select(routes, significance)
        assert is_discriminative(result.landmark_ids, routes)

    @pytest.mark.parametrize("selector_cls", ALL_SELECTORS)
    def test_result_meets_size_lower_bound(self, selector_cls):
        routes, significance = paper_example_routes()
        result = selector_cls().select(routes, significance)
        assert len(result.landmark_ids) >= minimum_set_size(len(routes))

    @pytest.mark.parametrize("selector_cls", [GreedySelector, IncrementalLandmarkSelector])
    def test_matches_brute_force_optimum(self, selector_cls):
        routes, significance = paper_example_routes()
        exact = BruteForceSelector().select(routes, significance)
        heuristic = selector_cls().select(routes, significance)
        assert heuristic.value == pytest.approx(exact.value)

    @pytest.mark.parametrize("selector_cls", ALL_SELECTORS)
    def test_never_selects_common_or_absent_landmarks(self, selector_cls):
        routes, significance = paper_example_routes()
        result = selector_cls().select(routes, significance)
        # l1 and l10 are on every route and cannot discriminate anything.
        assert 1 not in result.landmark_ids
        assert 10 not in result.landmark_ids

    def test_greedy_evaluates_fewer_sets_than_brute_force(self):
        routes, significance = paper_example_routes()
        brute = BruteForceSelector().select(routes, significance)
        greedy = GreedySelector().select(routes, significance)
        assert greedy.evaluated_sets < brute.evaluated_sets


class TestErrorHandling:
    @pytest.mark.parametrize("selector_cls", ALL_SELECTORS)
    def test_single_route_rejected(self, selector_cls):
        routes, significance = paper_example_routes()
        with pytest.raises(TaskGenerationError):
            selector_cls().select(routes[:1], significance)

    @pytest.mark.parametrize("selector_cls", ALL_SELECTORS)
    def test_indistinguishable_routes_rejected(self, selector_cls):
        routes = [landmark_route(0, [1, 2]), landmark_route(1, [2, 1])]
        with pytest.raises(TaskGenerationError):
            selector_cls().select(routes, {1: 0.5, 2: 0.5})

    def test_missing_significance_rejected(self):
        routes = [landmark_route(0, [1, 2]), landmark_route(1, [1, 3])]
        with pytest.raises(TaskGenerationError):
            GreedySelector().select(routes, {1: 0.5, 2: 0.5})

    def test_invalid_candidate_cap(self):
        with pytest.raises(TaskGenerationError):
            GreedySelector(max_candidate_landmarks=0)

    def test_candidate_cap_equal_to_candidates_is_lossless(self):
        routes, significance = paper_example_routes()
        uncapped = GreedySelector().select(routes, significance)
        capped = GreedySelector(max_candidate_landmarks=8).select(routes, significance)
        assert capped.value == pytest.approx(uncapped.value)

    def test_too_small_candidate_cap_raises(self):
        # With only the 2 most significant beneficial landmarks available no
        # discriminative set exists for the 4-route example, so the selector
        # must fail loudly rather than return a non-discriminative set.
        routes, significance = paper_example_routes()
        with pytest.raises(TaskGenerationError):
            GreedySelector(max_candidate_landmarks=2).select(routes, significance)


@st.composite
def distinguishable_route_sets(draw):
    """Random route sets whose landmark sets are pairwise distinct."""
    num_landmarks = draw(st.integers(min_value=4, max_value=9))
    num_routes = draw(st.integers(min_value=2, max_value=4))
    sets = draw(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=num_landmarks - 1), min_size=1, max_size=num_landmarks),
            min_size=num_routes,
            max_size=num_routes,
            unique=True,
        )
    )
    significance = {
        lid: round(draw(st.floats(min_value=0.01, max_value=1.0)), 3) for lid in range(num_landmarks)
    }
    routes = [landmark_route(i, sorted(s)) for i, s in enumerate(sets)]
    return routes, significance


class TestSelectorAgreementProperty:
    pytestmark = [pytest.mark.property, pytest.mark.slow]

    @settings(max_examples=40, deadline=None)
    @given(distinguishable_route_sets())
    def test_greedy_and_ils_match_brute_force(self, data):
        routes, significance = data
        try:
            exact = BruteForceSelector().select(routes, significance)
        except TaskGenerationError:
            # No discriminative set exists (e.g. one landmark set contains another
            # and they coincide on every candidate landmark) — all selectors
            # must agree on the failure.
            with pytest.raises(TaskGenerationError):
                GreedySelector().select(routes, significance)
            with pytest.raises(TaskGenerationError):
                IncrementalLandmarkSelector().select(routes, significance)
            return
        greedy = GreedySelector().select(routes, significance)
        ils = IncrementalLandmarkSelector().select(routes, significance)
        assert greedy.value == pytest.approx(exact.value, abs=1e-9)
        assert ils.value == pytest.approx(exact.value, abs=1e-9)
        assert is_discriminative(greedy.landmark_ids, routes)
        assert is_discriminative(ils.landmark_ids, routes)
