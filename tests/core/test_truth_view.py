"""Copy-on-write truth views must be indistinguishable from partitions.

``TruthDatabase.view_by_cells`` is the serving layer's shard-seeding
primitive: reads must answer exactly like a materialised
``partition_by_cells`` over the same cells (member set, lookup tie-breaks,
neighbourhood enumeration order, ``all()`` order), while writes stay in the
view and never touch the base store.
"""

import pytest

from repro.config import PlannerConfig
from repro.core.truth import TruthDatabase, TruthDatabaseView
from repro.exceptions import TruthStoreError
from repro.roadnet.shortest_path import dijkstra_path
from repro.routing.base import CandidateRoute, RouteQuery


@pytest.fixture()
def populated_db(small_network):
    """A truth store with truths spread over many destination cells."""
    db = TruthDatabase(
        small_network, PlannerConfig(truth_reuse_radius_m=250.0, truth_time_slot_minutes=60)
    )
    nodes = small_network.node_ids()
    for index in range(24):
        origin = nodes[index]
        destination = nodes[-1 - (index % 11)]
        if origin == destination:
            continue
        path = dijkstra_path(small_network, origin, destination)
        db.record(
            RouteQuery(origin, destination, departure_time_s=9 * 3600.0),
            CandidateRoute(path=path, source=f"s{index}", support=index),
            verified_by="test",
            confidence=0.5 + (index % 5) / 10.0,
        )
    return db


def _truth_tuples(truths):
    return [(t.truth_id, t.origin, t.destination, t.time_slot, t.route.path) for t in truths]


def _cells_of(db, count):
    cells = sorted({db.destination_cell_of(t.destination) for t in db.all()})
    return cells[:count]


class TestViewReadEquivalence:
    def test_members_and_order_match_partition(self, populated_db):
        cells = _cells_of(populated_db, 3)
        partition = populated_db.partition_by_cells(cells)
        view = populated_db.view_by_cells(cells)
        assert len(view) == len(partition)
        assert _truth_tuples(view.all()) == _truth_tuples(partition.all())

    def test_lookup_and_neighbourhood_match_partition(self, populated_db, small_network):
        cells = _cells_of(populated_db, 4)
        partition = populated_db.partition_by_cells(cells)
        view = populated_db.view_by_cells(cells)
        nodes = small_network.node_ids()
        for origin in nodes[::5]:
            for destination in nodes[::7]:
                if origin == destination:
                    continue
                query = RouteQuery(origin, destination, departure_time_s=9 * 3600.0)
                expected = partition.lookup(query)
                got = view.lookup(query)
                assert (got.truth_id if got else None) == (
                    expected.truth_id if expected else None
                )
                o = small_network.node_location(origin)
                d = small_network.node_location(destination)
                assert _truth_tuples(view.truths_near(o, d, 1_500.0)) == _truth_tuples(
                    partition.truths_near(o, d, 1_500.0)
                )

    def test_get_resolves_members_and_rejects_others(self, populated_db):
        cells = _cells_of(populated_db, 2)
        view = populated_db.view_by_cells(cells)
        partition = populated_db.partition_by_cells(cells)
        member = partition.all()[0]
        assert view.get(member.truth_id).truth_id == member.truth_id
        outside = [t for t in populated_db.all() if t.truth_id not in view._member_ids]
        assert outside, "fixture must leave truths outside the view"
        with pytest.raises(TruthStoreError):
            view.get(outside[0].truth_id)


class TestViewWrites:
    def test_records_stay_in_overlay(self, populated_db, small_network):
        cells = _cells_of(populated_db, 3)
        view = populated_db.view_by_cells(cells)
        base_before = len(populated_db)
        view_before = len(view)
        nodes = small_network.node_ids()
        path = dijkstra_path(small_network, nodes[0], nodes[-1])
        query = RouteQuery(nodes[0], nodes[-1], departure_time_s=9 * 3600.0)
        recorded = view.record(
            query, CandidateRoute(path=path, source="overlay", support=1), "test", 0.9
        )
        assert len(populated_db) == base_before  # base untouched
        assert len(view) == view_before + 1
        assert view.all()[-1].truth_id == recorded.truth_id  # appended, like a partition
        assert view.get(recorded.truth_id).verified_by == "test"
        assert view.truths_since(view_before) == [recorded]
        assert view.lookup(query).truth_id == recorded.truth_id

    def test_overlay_ids_stay_newer_than_adopted_ids(self, populated_db, small_network):
        """After adopt_all of high parent ids, local records must be higher
        still — the id is the deterministic lookup tie-break."""
        base = TruthDatabase(small_network, populated_db.config)
        source = populated_db.all()
        base.adopt_all(source[:5])
        nodes = small_network.node_ids()
        path = dijkstra_path(small_network, nodes[1], nodes[-2])
        recorded = base.record(
            RouteQuery(nodes[1], nodes[-2], departure_time_s=9 * 3600.0),
            CandidateRoute(path=path, source="local", support=1),
            "test",
            0.8,
        )
        assert recorded.truth_id > max(t.truth_id for t in source[:5])

    def test_adopt_all_rejects_duplicates(self, populated_db, small_network):
        base = TruthDatabase(small_network, populated_db.config)
        truths = populated_db.all()[:2]
        base.adopt_all(truths)
        with pytest.raises(TruthStoreError):
            base.adopt_all(truths[:1])


class TestViewGuards:
    def test_no_view_over_view(self, populated_db):
        cells = _cells_of(populated_db, 2)
        view = populated_db.view_by_cells(cells)
        assert isinstance(view, TruthDatabaseView)
        with pytest.raises(TruthStoreError):
            view.view_by_cells(cells)
        with pytest.raises(TruthStoreError):
            view.partition_by_cells(cells)
        with pytest.raises(TruthStoreError):
            TruthDatabaseView(view, cells)
