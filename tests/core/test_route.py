"""Tests for repro.core.route."""

import pytest

from repro.core.route import (
    LandmarkRoute,
    beneficial_landmarks,
    ensure_distinguishable,
    significance_lookup,
    to_landmark_routes,
)
from repro.exceptions import TaskGenerationError
from repro.routing.base import CandidateRoute

from .helpers import landmark_route, paper_example_routes


class TestLandmarkRoute:
    def test_landmark_set_and_passes(self):
        route = landmark_route(0, [3, 1, 2])
        assert route.landmark_set == frozenset({1, 2, 3})
        assert route.passes(2)
        assert not route.passes(9)

    def test_restricted_to(self):
        route = landmark_route(0, [1, 2, 3])
        assert route.restricted_to([2, 9]) == frozenset({2})

    def test_source_proxied_from_candidate(self):
        route = landmark_route(0, [1], source="MFP")
        assert route.source == "MFP"


class TestBeneficialLandmarks:
    def test_union_minus_intersection(self):
        routes, _ = paper_example_routes()
        beneficial = beneficial_landmarks(routes)
        assert 1 not in beneficial and 10 not in beneficial
        assert set(beneficial) == {2, 3, 4, 5, 6, 7, 8, 9}

    def test_empty_input(self):
        assert beneficial_landmarks([]) == []

    def test_identical_routes_have_no_beneficial_landmarks(self):
        routes = [landmark_route(0, [1, 2]), landmark_route(1, [1, 2])]
        assert beneficial_landmarks(routes) == []


class TestEnsureDistinguishable:
    def test_accepts_distinct_routes(self):
        routes, _ = paper_example_routes()
        ensure_distinguishable(routes)

    def test_rejects_duplicate_landmark_sets(self):
        routes = [landmark_route(0, [1, 2]), landmark_route(1, [2, 1])]
        with pytest.raises(TaskGenerationError):
            ensure_distinguishable(routes)


class TestCalibrationBridge:
    def test_to_landmark_routes(self, small_network, small_catalog, small_calibrator):
        from repro.roadnet.shortest_path import dijkstra_path

        path = dijkstra_path(small_network, 0, small_network.node_count - 1)
        candidate = CandidateRoute(path=path, source="shortest")
        landmark_routes = to_landmark_routes([candidate], small_calibrator)
        assert len(landmark_routes) == 1
        assert landmark_routes[0].route is candidate
        assert list(landmark_routes[0].landmark_sequence) == small_calibrator.calibrate_path(path)

    def test_significance_lookup(self, small_catalog):
        routes = [landmark_route(0, small_catalog.ids()[:3])]
        scores = significance_lookup(routes, small_catalog)
        assert set(scores) == set(small_catalog.ids()[:3])
