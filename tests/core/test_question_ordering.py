"""Tests for repro.core.question_ordering (Section III-C)."""

import math

import pytest

from repro.core.landmark_selection import GreedySelector
from repro.core.question_ordering import build_question_tree, information_strength
from repro.exceptions import TaskGenerationError

from .helpers import landmark_route, paper_example_routes


class TestInformationStrength:
    def test_zero_when_landmark_on_all_routes(self):
        routes, significance = paper_example_routes()
        assert information_strength(1, routes, significance) == pytest.approx(0.0)

    def test_zero_when_landmark_on_no_route(self):
        routes, significance = paper_example_routes()
        assert information_strength(99, routes, significance) == pytest.approx(0.0)

    def test_even_split_maximises_information_gain(self):
        routes, significance = paper_example_routes()
        # l2 splits the 4 routes 2/2 (full bit of information); l6 splits 2/2
        # as well but with lower significance; l7 splits 1/3.
        gain_l2 = information_strength(2, routes, significance)
        gain_l7 = information_strength(7, routes, significance)
        assert gain_l2 > gain_l7

    def test_scaled_by_significance(self):
        routes, _ = paper_example_routes()
        low = information_strength(2, routes, {2: 0.1})
        high = information_strength(2, routes, {2: 0.9})
        assert high == pytest.approx(9 * low)

    def test_empty_routes(self):
        assert information_strength(1, [], {1: 0.5}) == 0.0


class TestBuildTree:
    def test_requires_discriminative_set(self):
        routes, significance = paper_example_routes()
        with pytest.raises(TaskGenerationError):
            build_question_tree(routes, [9], significance)

    def test_requires_routes(self):
        with pytest.raises(TaskGenerationError):
            build_question_tree([], [1], {1: 0.5})

    def test_every_leaf_resolves_to_one_route(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        for route in routes:
            answers = {lid: route.passes(lid) for lid in selection.landmark_ids}
            decided, asked = tree.traverse(answers)
            assert decided.landmark_set == route.landmark_set
            assert len(asked) <= len(selection.landmark_ids)

    def test_depth_bounds(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        assert math.ceil(math.log2(len(routes))) <= tree.depth() <= len(selection.landmark_ids)

    def test_expected_questions_at_most_depth(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        assert tree.expected_questions() <= tree.depth() + 1e-9
        assert tree.expected_questions() >= 1.0

    def test_first_question_has_maximum_information_strength(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        root_landmark = tree.root.landmark_id
        best = max(
            selection.landmark_ids,
            key=lambda lid: information_strength(lid, routes, significance),
        )
        assert information_strength(root_landmark, routes, significance) == pytest.approx(
            information_strength(best, routes, significance)
        )

    def test_traverse_with_missing_answer_raises(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        with pytest.raises(TaskGenerationError):
            tree.traverse({})

    def test_question_sequence_for_route(self):
        routes, significance = paper_example_routes()
        selection = GreedySelector().select(routes, significance)
        tree = build_question_tree(routes, selection.landmark_ids, significance)
        sequence = tree.question_sequence_for(routes[0])
        assert sequence
        assert all(lid in selection.landmark_ids for lid in sequence)

    def test_two_identical_routes_single_leaf_fallback(self):
        # Indistinguishable remainder resolves deterministically by support.
        routes = [landmark_route(0, [1], support=1), landmark_route(1, [1], support=5)]
        tree = build_question_tree(routes[:1], [], {1: 0.5})
        assert tree.root.is_leaf

    def test_single_route_tree_is_leaf(self):
        routes, significance = paper_example_routes()
        tree = build_question_tree(routes[:1], [2, 3], significance)
        assert tree.root.is_leaf
        assert tree.depth() == 0
