"""Tests for the CrowdPlanner facade."""

import pytest

from repro.config import PlannerConfig
from repro.core.planner import CrowdPlanner
from repro.exceptions import CrowdPlannerError, RoutingError
from repro.routing.base import CandidateRoute, RouteQuery, RouteSource


class FixedSource(RouteSource):
    """A test double returning a pre-baked route."""

    def __init__(self, name, path, support=0):
        self.name = name
        self._path = path
        self.support = support

    def recommend(self, query):
        return CandidateRoute(path=self._path, source=self.name, support=self.support)


class FailingSource(RouteSource):
    name = "failing"

    def recommend(self, query):
        raise RoutingError("this source always fails")


class TestPlannerConstruction:
    def test_requires_sources(self, scenario):
        with pytest.raises(CrowdPlannerError):
            CrowdPlanner(
                network=scenario.network,
                catalog=scenario.catalog,
                calibrator=scenario.calibrator,
                sources=[],
                worker_pool=scenario.worker_pool,
            )

    def test_crowd_needed_without_backend_raises(self, scenario):
        planner = CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=scenario.sources,
            worker_pool=scenario.worker_pool,
            crowd_backend=None,
        )
        queries = scenario.sample_queries(10, seed=77)
        raised = False
        for query in queries:
            try:
                planner.recommend(query)
            except CrowdPlannerError:
                raised = True
                break
        assert raised, "at least one query should have required the crowd"


class TestPlannerPipeline:
    def test_recommendation_returns_valid_route(self, scenario, planner):
        query = scenario.sample_queries(1, seed=402)[0]
        result = planner.recommend(query)
        scenario.network.validate_path(list(result.route.path))
        assert result.route.path[0] == query.origin
        assert result.route.path[-1] == query.destination
        assert 0.0 <= result.confidence <= 1.0

    def test_repeated_query_hits_truth_store(self, scenario, planner):
        query = scenario.sample_queries(1, seed=403)[0]
        first = planner.recommend(query)
        second = planner.recommend(query)
        assert second.method == "truth_reuse"
        assert second.route.path == first.route.path

    def test_statistics_accumulate(self, scenario, planner):
        before = planner.statistics.requests
        query = scenario.sample_queries(1, seed=404)[0]
        planner.recommend(query)
        assert planner.statistics.requests == before + 1
        counters = planner.statistics.as_dict()
        assert counters["requests"] >= counters["truth_hits"]

    def test_crowd_path_updates_rewards_and_history(self, scenario):
        # Use a dedicated planner so accumulated state from other tests does
        # not interfere.
        planner = scenario.build_planner()
        crowd_result = None
        for query in scenario.sample_queries(15, seed=405):
            result = planner.recommend(query)
            if result.used_crowd:
                crowd_result = result
                break
        if crowd_result is None:
            pytest.skip("no query required the crowd in this sample")
        assert crowd_result.task_result is not None
        assert crowd_result.task_result.responses
        rewarded_workers = {r.worker_id for r in crowd_result.task_result.responses}
        assert any(scenario.worker_pool.get(w).reward_points > 0 for w in rewarded_workers)
        # Outstanding-task counters must be released after the task finishes.
        assert all(scenario.worker_pool.get(w).outstanding_tasks == 0 for w in rewarded_workers)

    def test_single_candidate_short_circuits(self, scenario):
        path_query = scenario.sample_queries(1, seed=406)[0]
        ground_path = scenario.ground_truth_path(path_query)
        planner = CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=[FixedSource("only", ground_path), FailingSource()],
            worker_pool=scenario.worker_pool,
            crowd_backend=scenario.crowd,
        )
        result = planner.recommend(path_query)
        assert result.method == "single_candidate"
        assert list(result.route.path) == ground_path

    def test_agreeing_sources_answered_automatically(self, scenario):
        query = scenario.sample_queries(1, seed=407)[0]
        ground_path = scenario.ground_truth_path(query)
        planner = CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=[FixedSource("a", ground_path), FixedSource("b", list(ground_path), support=3)],
            worker_pool=scenario.worker_pool,
            crowd_backend=scenario.crowd,
        )
        result = planner.recommend(query)
        # Identical paths are deduplicated into a single candidate.
        assert result.method in ("single_candidate", "agreement")
        assert list(result.route.path) == ground_path

    def test_no_source_produces_route_raises(self, scenario):
        planner = CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=[FailingSource()],
            worker_pool=scenario.worker_pool,
            crowd_backend=scenario.crowd,
        )
        with pytest.raises(RoutingError):
            planner.recommend(scenario.sample_queries(1, seed=408)[0])

    def test_recommend_batch_matches_sequential_recommend(self, scenario):
        # Deterministic fixed sources so both planners resolve every query
        # identically (the shared simulated crowd draws fresh randomness per
        # task, which would make a crowd-answered comparison flaky).
        queries = scenario.sample_queries(6, seed=410)

        def build():
            return CrowdPlanner(
                network=scenario.network,
                catalog=scenario.catalog,
                calibrator=scenario.calibrator,
                sources=[
                    FixedSource("only", scenario.ground_truth_path(query))
                    for query in queries[:1]
                ],
                worker_pool=scenario.worker_pool,
            )

        sequential = build()
        expected = [sequential.recommend(query) for query in queries]
        results = build().recommend_batch(queries)
        assert [list(r.route.path) for r in results] == [list(r.route.path) for r in expected]
        assert [r.method for r in results] == [r.method for r in expected]

    def test_recommend_batch_answers_every_query(self, scenario):
        planner = scenario.build_planner()
        queries = scenario.sample_queries(5, seed=412)
        results = planner.recommend_batch(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.route.path[0] == query.origin
            assert result.route.path[-1] == query.destination
        assert planner.statistics.requests == len(queries)

    def test_recommend_batch_reuses_truths_within_batch(self, scenario):
        planner = scenario.build_planner()
        query = scenario.sample_queries(1, seed=411)[0]
        results = planner.recommend_batch([query, query])
        assert results[1].method == "truth_reuse"
        assert results[1].route.path == results[0].route.path

    def test_generate_candidates_deduplicates(self, scenario):
        query = scenario.sample_queries(1, seed=409)[0]
        ground_path = scenario.ground_truth_path(query)
        planner = CrowdPlanner(
            network=scenario.network,
            catalog=scenario.catalog,
            calibrator=scenario.calibrator,
            sources=[FixedSource("a", ground_path), FixedSource("b", ground_path)],
            worker_pool=scenario.worker_pool,
        )
        assert len(planner.generate_candidates(query)) == 1
