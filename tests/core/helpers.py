"""Shared helpers for the core test modules."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.route import LandmarkRoute
from repro.routing.base import CandidateRoute


def landmark_route(index: int, landmarks: Sequence[int], support: int = 0, source: str = "") -> LandmarkRoute:
    """Build a LandmarkRoute with a dummy two-node path."""
    candidate = CandidateRoute(
        path=[1000 + index * 2, 1001 + index * 2],
        source=source or f"src-{index}",
        support=support,
    )
    return LandmarkRoute(candidate, landmarks)


def paper_example_routes() -> Tuple[List[LandmarkRoute], Dict[int, float]]:
    """The Fig. 2 example of the paper: routes between l1 and l10.

    Four routes over landmarks l1..l10 with the significance values shown in
    the figure.  Landmark ids use the paper's numbering.
    """
    routes = [
        landmark_route(0, [1, 2, 4, 7, 9, 10], source="R1"),
        landmark_route(1, [1, 2, 4, 6, 10], source="R2"),
        landmark_route(2, [1, 3, 5, 8, 10], source="R3"),
        landmark_route(3, [1, 3, 5, 6, 10], source="R4"),
    ]
    significance = {
        1: 0.9,
        2: 0.7,
        3: 0.3,
        4: 0.8,
        5: 0.2,
        6: 0.4,
        7: 0.5,
        8: 0.2,
        9: 0.1,
        10: 0.9,
    }
    return routes, significance
