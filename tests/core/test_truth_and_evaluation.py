"""Tests for the truth database and the automatic route evaluator."""

import pytest

from repro.config import PlannerConfig
from repro.core.evaluation import EvaluationDecision, RouteEvaluator
from repro.core.truth import TruthDatabase
from repro.exceptions import RoutingError, TruthStoreError
from repro.roadnet.shortest_path import dijkstra_path, k_shortest_paths
from repro.routing.base import CandidateRoute, RouteQuery


@pytest.fixture()
def truth_db(small_network):
    return TruthDatabase(small_network, PlannerConfig(truth_reuse_radius_m=250.0, truth_time_slot_minutes=60))


@pytest.fixture(scope="module")
def sample_routes(small_network):
    nodes = small_network.node_ids()
    origin, destination = nodes[0], nodes[-1]
    paths = k_shortest_paths(small_network, origin, destination, 3)
    query = RouteQuery(origin, destination, departure_time_s=9 * 3600.0)
    candidates = [
        CandidateRoute(path=path, source=f"source-{index}", support=index)
        for index, path in enumerate(paths)
    ]
    return query, candidates


class TestTruthDatabase:
    def test_record_and_lookup_same_query(self, truth_db, sample_routes):
        query, candidates = sample_routes
        truth_db.record(query, candidates[0], verified_by="crowd", confidence=0.9)
        hit = truth_db.lookup(query)
        assert hit is not None
        assert hit.route.path == candidates[0].path
        assert len(truth_db) == 1

    def test_lookup_nearby_origin_hits(self, truth_db, sample_routes, small_network):
        query, candidates = sample_routes
        truth_db.record(query, candidates[0], verified_by="crowd", confidence=0.9)
        neighbors = small_network.nodes_within(small_network.node_location(query.origin), 220.0)
        nearby_origin = next((node for node, distance in neighbors if 0 < distance <= 220.0), None)
        if nearby_origin is None:
            pytest.skip("no intersection within the reuse radius")
        nearby_query = RouteQuery(nearby_origin, query.destination, departure_time_s=query.departure_time_s)
        assert truth_db.lookup(nearby_query) is not None

    def test_lookup_misses_for_different_time_slot(self, truth_db, sample_routes):
        query, candidates = sample_routes
        truth_db.record(query, candidates[0], verified_by="crowd", confidence=0.9)
        later = RouteQuery(query.origin, query.destination, departure_time_s=query.departure_time_s + 5 * 3600)
        assert truth_db.lookup(later) is None

    def test_lookup_misses_for_far_destination(self, truth_db, sample_routes, small_network):
        query, candidates = sample_routes
        truth_db.record(query, candidates[0], verified_by="crowd", confidence=0.9)
        other = RouteQuery(query.origin, small_network.node_ids()[5], departure_time_s=query.departure_time_s)
        if small_network.node_location(other.destination).distance_to(
            small_network.node_location(query.destination)
        ) <= 250:
            pytest.skip("chosen destination too close for the miss test")
        assert truth_db.lookup(other) is None

    def test_invalid_confidence_rejected(self, truth_db, sample_routes):
        query, candidates = sample_routes
        with pytest.raises(TruthStoreError):
            truth_db.record(query, candidates[0], verified_by="crowd", confidence=1.5)

    def test_unknown_truth_id(self, truth_db):
        with pytest.raises(TruthStoreError):
            truth_db.get(123456)

    def test_time_slot_of(self, truth_db):
        width = truth_db.config.truth_time_slot_minutes * 60
        assert truth_db.time_slot_of(0.0) == 0
        assert truth_db.time_slot_of(width + 1) == 1

    def test_truths_near_and_hit_rate(self, truth_db, sample_routes, small_network):
        query, candidates = sample_routes
        truth_db.record(query, candidates[0], verified_by="crowd", confidence=0.8)
        origin = small_network.node_location(query.origin)
        destination = small_network.node_location(query.destination)
        assert truth_db.truths_near(origin, destination, 500.0)
        assert truth_db.hit_rate(2, 10) == pytest.approx(0.2)
        assert truth_db.hit_rate(0, 0) == 0.0


class TestRouteEvaluator:
    def test_empty_candidates_rejected(self, truth_db, small_network):
        evaluator = RouteEvaluator(small_network, truth_db)
        with pytest.raises(RoutingError):
            evaluator.evaluate(RouteQuery(0, 1), [])

    def test_identical_candidates_trigger_agreement(self, truth_db, small_network, sample_routes):
        query, candidates = sample_routes
        evaluator = RouteEvaluator(small_network, truth_db, PlannerConfig(agreement_threshold=0.9))
        clones = [
            CandidateRoute(path=candidates[0].path, source="a"),
            CandidateRoute(path=candidates[0].path, source="b"),
        ]
        outcome = evaluator.evaluate(query, clones)
        assert outcome.decision is EvaluationDecision.AGREEMENT
        assert outcome.best_route.path == candidates[0].path
        assert outcome.mean_pairwise_similarity == pytest.approx(1.0)

    def test_disagreeing_candidates_without_truths_need_crowd(self, small_network, sample_routes):
        query, candidates = sample_routes
        config = PlannerConfig(agreement_threshold=0.95, confidence_threshold=0.7)
        evaluator = RouteEvaluator(small_network, TruthDatabase(small_network, config), config)
        if len({c.path for c in candidates}) < 2:
            pytest.skip("alternatives collapsed to a single path")
        outcome = evaluator.evaluate(query, candidates)
        if outcome.mean_pairwise_similarity >= 0.95:
            pytest.skip("candidates agree too much on this network")
        assert outcome.decision is EvaluationDecision.NEEDS_CROWD
        assert outcome.best_route is None

    def test_nearby_truth_makes_candidate_confident(self, small_network, sample_routes):
        query, candidates = sample_routes
        config = PlannerConfig(agreement_threshold=0.99, confidence_threshold=0.5)
        truths = TruthDatabase(small_network, config)
        truths.record(query, candidates[0], verified_by="crowd", confidence=1.0)
        evaluator = RouteEvaluator(small_network, truths, config)
        outcome = evaluator.evaluate(query, candidates)
        assert outcome.decision in (EvaluationDecision.CONFIDENT, EvaluationDecision.AGREEMENT)
        if outcome.decision is EvaluationDecision.CONFIDENT:
            assert outcome.best_route.source == candidates[0].source
            assert outcome.confidences[candidates[0].source] >= 0.5

    def test_confidence_scores_bounded(self, small_network, sample_routes):
        query, candidates = sample_routes
        config = PlannerConfig()
        truths = TruthDatabase(small_network, config)
        truths.record(query, candidates[0], verified_by="crowd", confidence=0.7)
        evaluator = RouteEvaluator(small_network, truths, config)
        scores = evaluator.confidence_scores(query, candidates)
        assert all(0.0 <= score <= 1.0 for score in scores.values())
        best = max(scores.values())
        assert scores[candidates[0].source] == pytest.approx(best)

    def test_invalid_neighbourhood_radius(self, truth_db, small_network):
        with pytest.raises(RoutingError):
            RouteEvaluator(small_network, truth_db, neighbourhood_radius_m=0)
