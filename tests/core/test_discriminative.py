"""Tests for repro.core.discriminative (Definitions 4 and 5 of the paper)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discriminative import is_discriminative, is_simplest_discriminative, route_signatures

from .helpers import landmark_route, paper_example_routes


class TestPaperDefinitions:
    """The worked example from Section II-A of the paper."""

    def setup_method(self):
        self.r1 = landmark_route(0, [1, 2, 3])
        self.r2 = landmark_route(1, [1, 2, 4])

    def test_l3_l4_is_discriminative(self):
        assert is_discriminative([3, 4], [self.r1, self.r2])

    def test_l1_l2_is_not_discriminative(self):
        assert not is_discriminative([1, 2], [self.r1, self.r2])

    def test_l3_l4_is_not_simplest(self):
        assert not is_simplest_discriminative([3, 4], [self.r1, self.r2])

    def test_singletons_are_simplest(self):
        assert is_simplest_discriminative([3], [self.r1, self.r2])
        assert is_simplest_discriminative([4], [self.r1, self.r2])


class TestEdgeCases:
    def test_single_route_everything_discriminative(self):
        route = landmark_route(0, [1, 2])
        assert is_discriminative([], [route])
        assert is_simplest_discriminative([], [route])

    def test_empty_set_not_discriminative_for_two_routes(self):
        routes = [landmark_route(0, [1]), landmark_route(1, [2])]
        assert not is_discriminative([], routes)

    def test_identical_routes_cannot_be_discriminated(self):
        routes = [landmark_route(0, [1, 2]), landmark_route(1, [2, 1])]
        assert not is_discriminative([1, 2], routes)

    def test_duplicate_landmarks_in_set_do_not_break_minimality(self):
        routes = [landmark_route(0, [1, 2, 3]), landmark_route(1, [1, 2, 4])]
        assert is_simplest_discriminative([3, 3], routes)

    def test_route_signatures(self):
        routes, _ = paper_example_routes()
        signatures = route_signatures([2, 3], routes)
        assert signatures[0] == frozenset({2})
        assert signatures[2] == frozenset({3})


class TestProperties:
    pytestmark = [pytest.mark.property]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), min_size=1, max_size=6),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    def test_full_landmark_set_is_discriminative_iff_routes_distinct(self, landmark_sets):
        routes = [landmark_route(i, sorted(s)) for i, s in enumerate(landmark_sets)]
        all_landmarks = sorted(set().union(*landmark_sets))
        # Because the sets themselves are pairwise distinct, the union of all
        # landmarks always distinguishes them.
        assert is_discriminative(all_landmarks, routes)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        st.sets(st.integers(min_value=0, max_value=6), max_size=4),
    )
    def test_supersets_of_discriminative_sets_are_discriminative(self, landmark_sets, extra):
        routes = [landmark_route(i, sorted(s)) for i, s in enumerate(landmark_sets)]
        all_landmarks = sorted(set().union(*landmark_sets))
        if not is_discriminative(all_landmarks, routes):
            return
        # Find any simplest discriminative subset by greedy removal, then
        # verify every superset of it stays discriminative.
        base = list(all_landmarks)
        for landmark in list(base):
            reduced = [l for l in base if l != landmark]
            if is_discriminative(reduced, routes):
                base = reduced
        assert is_simplest_discriminative(base, routes)
        superset = sorted(set(base) | set(extra))
        assert is_discriminative(superset, routes)
