"""Tests for worker selection, early stop, aggregation and rewards."""

import pytest

from repro.config import PlannerConfig
from repro.core.aggregation import AnswerAggregator
from repro.core.early_stop import EarlyStopMonitor
from repro.core.familiarity import FamiliarityModel
from repro.core.rewards import RewardLedger
from repro.core.task import Answer, WorkerResponse
from repro.core.task_generation import TaskGenerator
from repro.core.worker_selection import WorkerSelector
from repro.exceptions import TaskGenerationError, WorkerSelectionError


@pytest.fixture(scope="module")
def selection_setup(scenario):
    """Familiarity model, selector and one generated task on the shared scenario."""
    config = scenario.config.planner_config
    familiarity = FamiliarityModel(scenario.worker_pool, scenario.catalog, config)
    familiarity.fit(use_pmf=True)
    selector = WorkerSelector(scenario.worker_pool, familiarity, config)
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    task = None
    for query in scenario.sample_queries(30, seed=301):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            task = generator.generate(query, candidates)
            break
        except TaskGenerationError:
            continue
    if task is None:
        pytest.skip("no crowd task could be generated on the shared scenario")
    return config, familiarity, selector, task


class TestWorkerSelector:
    def test_selects_requested_number(self, selection_setup, scenario):
        _, _, selector, task = selection_setup
        workers = selector.select(task, 5)
        assert 1 <= len(workers) <= 5
        assert len(set(workers)) == len(workers)

    def test_selected_workers_are_registered(self, selection_setup, scenario):
        _, _, selector, task = selection_setup
        for worker_id in selector.select(task, 5):
            assert worker_id in scenario.worker_pool

    def test_invalid_k(self, selection_setup):
        _, _, selector, task = selection_setup
        with pytest.raises(WorkerSelectionError):
            selector.select(task, 0)

    def test_quota_filter_excludes_busy_workers(self, selection_setup, scenario):
        config, _, selector, task = selection_setup
        chosen = selector.select(task, 3)
        busy = scenario.worker_pool.get(chosen[0])
        original = busy.outstanding_tasks
        busy.outstanding_tasks = config.worker_quota
        try:
            assert chosen[0] not in selector.select(task, 3)
        finally:
            busy.outstanding_tasks = original

    def test_deadline_filter_excludes_slow_workers(self, selection_setup, scenario):
        _, _, selector, task = selection_setup
        from repro.routing.base import RouteQuery

        tight_query = RouteQuery(
            origin=task.query.origin,
            destination=task.query.destination,
            departure_time_s=task.query.departure_time_s,
            max_response_time_s=0.001,
        )
        from repro.core.task import Task

        tight_task = Task(
            query=tight_query,
            landmark_routes=task.landmark_routes,
            selected_landmarks=task.selected_landmarks,
            question_tree=task.question_tree,
            questions=task.questions,
        )
        with pytest.raises(WorkerSelectionError):
            selector.select(tight_task, 3)

    def test_rated_voting_considers_coverage(self, selection_setup):
        _, _, selector, task = selection_setup
        candidates = selector.candidate_workers(task)
        ranking = selector.rank_candidates(task, candidates)
        assert ranking == sorted(ranking, key=lambda s: (-s.preference_score, -s.familiarity_sum, s.worker_id))
        assert all(score.preference_score >= 0 for score in ranking)

    def test_familiarity_sum_baseline_ranking(self, selection_setup):
        _, _, selector, task = selection_setup
        candidates = selector.candidate_workers(task)
        baseline = selector.rank_by_familiarity_sum(task, candidates)
        assert baseline == sorted(baseline, key=lambda s: (-s.familiarity_sum, s.worker_id))


class TestEarlyStop:
    def test_no_votes_no_stop(self):
        monitor = EarlyStopMonitor(PlannerConfig())
        decision = monitor.evaluate({}, expected_total=5)
        assert not decision.should_stop and decision.leading_route_index is None

    def test_requires_minimum_responses(self):
        monitor = EarlyStopMonitor(PlannerConfig(early_stop_confidence=0.6), min_responses=3)
        assert not monitor.evaluate({0: 2}, expected_total=10).should_stop

    def test_stops_on_high_confidence(self):
        monitor = EarlyStopMonitor(PlannerConfig(early_stop_confidence=0.75))
        decision = monitor.evaluate({0: 3, 1: 1}, expected_total=10)
        assert decision.should_stop
        assert decision.confidence == pytest.approx(0.75)
        assert decision.leading_route_index == 0

    def test_stops_when_unbeatable(self):
        monitor = EarlyStopMonitor(PlannerConfig(early_stop_confidence=0.99))
        # 3 vs 1 with only one vote outstanding: the leader cannot be caught.
        assert monitor.evaluate({0: 3, 1: 1}, expected_total=5).should_stop

    def test_does_not_stop_when_race_is_open(self):
        monitor = EarlyStopMonitor(PlannerConfig(early_stop_confidence=0.9))
        assert not monitor.evaluate({0: 2, 1: 1}, expected_total=7).should_stop

    def test_invalid_min_responses(self):
        with pytest.raises(ValueError):
            EarlyStopMonitor(PlannerConfig(), min_responses=0)


def _response(worker_id, route_index, answers=(), time_s=10.0):
    return WorkerResponse(
        worker_id=worker_id,
        answers=list(answers),
        chosen_route_index=route_index,
        total_response_time_s=time_s,
    )


class TestAggregation:
    def test_majority_wins(self, selection_setup):
        config, _, _, task = selection_setup
        aggregator = AnswerAggregator(config)
        responses = [_response(1, 0), _response(2, 0), _response(3, 1)]
        result = aggregator.aggregate(task, responses)
        assert result.winning_route_index == 0
        assert result.votes == {0: 2, 1: 1}
        assert result.confidence == pytest.approx(2 / 3)

    def test_empty_responses_rejected(self, selection_setup):
        config, _, _, task = selection_setup
        with pytest.raises(TaskGenerationError):
            AnswerAggregator(config).aggregate(task, [])

    def test_tie_broken_by_support_then_source(self, selection_setup):
        config, _, _, task = selection_setup
        aggregator = AnswerAggregator(config)
        responses = [_response(1, 0), _response(2, 1)]
        result = aggregator.aggregate(task, responses)
        route_0 = task.candidate_routes[0]
        route_1 = task.candidate_routes[1]
        expected = 0 if (route_0.support, route_1.source) >= (route_1.support, route_0.source) else 1
        winner = result.winning_route_index
        # Deterministic: re-running gives the same winner.
        assert AnswerAggregator(config).aggregate(task, responses).winning_route_index == winner
        assert winner in (0, 1)
        if route_0.support != route_1.support:
            assert task.candidate_routes[winner].support == max(route_0.support, route_1.support)

    def test_early_stop_consumes_fewer_responses(self, selection_setup):
        config, _, _, task = selection_setup
        aggregator = AnswerAggregator(config.with_overrides(early_stop_confidence=0.6))
        responses = [_response(i, 0) for i in range(1, 6)]
        result = aggregator.collect_with_early_stop(task, responses, expected_total=5)
        assert result.stopped_early
        assert len(result.responses) < 5

    def test_no_early_stop_when_votes_split(self, selection_setup):
        config, _, _, task = selection_setup
        aggregator = AnswerAggregator(config.with_overrides(early_stop_confidence=0.95))
        responses = [_response(1, 0), _response(2, 1), _response(3, 0), _response(4, 1)]
        result = aggregator.collect_with_early_stop(task, responses, expected_total=6)
        assert len(result.responses) == 4
        assert not result.stopped_early


class TestRewards:
    def test_rewards_proportional_to_questions_with_agreement_bonus(self, selection_setup, scenario):
        config, _, _, task = selection_setup
        ledger = RewardLedger(scenario.worker_pool, config, agreement_bonus=2.0)
        worker_ids = scenario.worker_pool.ids()[:2]
        answers = [Answer(worker_ids[0], task.selected_landmarks[0], True)]
        responses = [
            _response(worker_ids[0], 0, answers=answers),
            _response(worker_ids[1], 1),
        ]
        aggregator = AnswerAggregator(config)
        result = aggregator.aggregate(task, responses)
        before = {wid: scenario.worker_pool.get(wid).reward_points for wid in worker_ids}
        entries = ledger.reward_task(result)
        assert len(entries) == 2
        for entry in entries:
            expected = config.reward_per_question * entry.questions_answered + (
                2.0 if entry.agreed_with_result else 0.0
            )
            assert entry.points == pytest.approx(expected)
            assert scenario.worker_pool.get(entry.worker_id).reward_points == pytest.approx(
                before[entry.worker_id] + entry.points
            )
        assert ledger.total_points_awarded() >= 2.0
        assert ledger.entries_for(worker_ids[0])

    def test_negative_bonus_rejected(self, scenario):
        with pytest.raises(ValueError):
            RewardLedger(scenario.worker_pool, agreement_bonus=-1.0)
