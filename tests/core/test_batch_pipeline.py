"""Batch-level planner plumbing: od-cell grouping, shared candidate
generation, the truth database's destination index and cached route
signatures."""

import pytest

from repro.core.planner import CrowdPlanner
from repro.core.truth import TruthDatabase
from repro.routing.base import CandidateRoute, RouteQuery, RouteSource


class CountingSource(RouteSource):
    """Returns the network's trivial two-node route, counting invocations."""

    name = "counting"

    def __init__(self, network):
        self.network = network
        self.recommend_calls = 0
        self.prepare_calls = 0

    def recommend(self, query):
        self.recommend_calls += 1
        from repro.roadnet.shortest_path import dijkstra_path

        return CandidateRoute(
            path=dijkstra_path(self.network, query.origin, query.destination),
            source=self.name,
        )

    def prepare_batch(self, queries):
        self.prepare_calls += 1


@pytest.fixture()
def counting_planner(scenario):
    source = CountingSource(scenario.network)
    planner = CrowdPlanner(
        network=scenario.network,
        catalog=scenario.catalog,
        calibrator=scenario.calibrator,
        sources=[source],
        worker_pool=scenario.worker_pool,
    )
    return planner, source


class TestBatchSharing:
    def test_prepare_batch_hook_runs_once(self, scenario, counting_planner):
        planner, source = counting_planner
        queries = scenario.sample_queries(3, seed=811)
        planner.recommend_batch(queries)
        assert source.prepare_calls == 1

    def test_candidate_memo_shares_identical_queries(self, scenario, counting_planner):
        planner, source = counting_planner
        query = scenario.sample_queries(1, seed=812)[0]
        planner._batch_candidate_memo = {}
        try:
            first = planner.generate_candidates(query)
            second = planner.generate_candidates(query)
        finally:
            planner._batch_candidate_memo = None
        assert source.recommend_calls == 1
        assert [c.path for c in first] == [c.path for c in second]
        # The memo hands out copies, so callers cannot corrupt it.
        assert first is not second

    def test_memo_disabled_outside_batches(self, scenario, counting_planner):
        planner, source = counting_planner
        query = scenario.sample_queries(1, seed=813)[0]
        planner.generate_candidates(query)
        planner.generate_candidates(query)
        assert source.recommend_calls == 2

    def test_od_cell_groups_cover_all_queries(self, scenario, counting_planner):
        planner, _ = counting_planner
        queries = scenario.sample_queries(8, seed=814)
        groups = planner.od_cell_groups(queries)
        indices = sorted(index for members in groups.values() for index in members)
        assert indices == list(range(len(queries)))
        assert planner.od_cell_groups([queries[0], queries[0]]) and (
            len(planner.od_cell_groups([queries[0], queries[0]])) == 1
        )

    def test_batch_matches_sequential_with_shared_generation(self, scenario):
        queries = scenario.sample_queries(6, seed=815)
        # Duplicate a query mid-batch so the memo and the truth store both
        # participate.
        queries = queries + [queries[0]]

        def build():
            return CrowdPlanner(
                network=scenario.network,
                catalog=scenario.catalog,
                calibrator=scenario.calibrator,
                sources=[CountingSource(scenario.network)],
                worker_pool=scenario.worker_pool,
            )

        sequential = build()
        expected = [sequential.recommend(query) for query in queries]
        batched = build().recommend_batch(queries)
        assert [list(r.route.path) for r in batched] == [list(r.route.path) for r in expected]
        assert [r.method for r in batched] == [r.method for r in expected]


class TestTruthDestinationIndex:
    def test_truths_near_matches_naive_filter(self, scenario):
        truths = TruthDatabase(scenario.network, scenario.config.planner_config)
        for query in scenario.sample_queries(12, seed=816):
            route = CandidateRoute(path=scenario.ground_truth_path(query), source="seed")
            truths.record(query, route, verified_by="test", confidence=0.8)
        assert len(truths) > 0
        radius = 2_000.0
        for probe in scenario.sample_queries(5, seed=817):
            origin = scenario.network.node_location(probe.origin)
            destination = scenario.network.node_location(probe.destination)
            indexed = truths.truths_near(origin, destination, radius)
            naive = [
                truth
                for truth, _ in (
                    (truths.get(tid), d)
                    for tid, d in truths._origin_index.within_radius(origin, radius)
                )
                if truth.destination.distance_to(destination) <= radius
            ]
            assert [t.truth_id for t in indexed] == [t.truth_id for t in naive]

    def test_lookup_still_prefers_closest_origin(self, scenario):
        config = scenario.config.planner_config
        database = TruthDatabase(scenario.network, config)
        query = scenario.sample_queries(1, seed=818)[0]
        route = CandidateRoute(path=scenario.ground_truth_path(query), source="x")
        recorded = database.record(query, route, verified_by="test", confidence=0.9)
        assert database.lookup(query).truth_id == recorded.truth_id
        assert database.lookup(query.reversed()) is None


class TestEdgeSignatureCache:
    def test_signature_cached_and_consistent(self):
        route = CandidateRoute(path=[1, 2, 3, 4], source="a")
        signature = route.edge_signature()
        assert route.edge_signature() is signature
        assert signature == frozenset({(1, 2), (2, 3), (3, 4)})
        assert route.edge_set() == set(signature)

    def test_similarity_unchanged(self):
        a = CandidateRoute(path=[1, 2, 3, 4], source="a")
        b = CandidateRoute(path=[1, 2, 5, 4], source="b")
        mine, theirs = a.edge_set(), b.edge_set()
        expected = len(mine & theirs) / len(mine | theirs)
        assert a.similarity_to(b) == expected
        assert a.similarity_to(a) == 1.0
