"""Tests for worker profiles, familiarity scores, PMF and response times."""

import math
import random

import numpy as np
import pytest

from repro.config import PlannerConfig
from repro.core.familiarity import FamiliarityModel
from repro.core.pmf import ProbabilisticMatrixFactorization
from repro.core.response_time import ResponseTimeModel
from repro.core.worker import AnswerRecord, Worker, WorkerPool
from repro.exceptions import ConfigurationError, WorkerSelectionError
from repro.landmarks.model import Landmark, LandmarkCatalog, LandmarkKind
from repro.spatial import Point


def make_worker(worker_id, home=(0.0, 0.0), work=(1000.0, 0.0), rate=1.0 / 300):
    return Worker(
        worker_id=worker_id,
        home=Point(*home),
        workplace=Point(*work),
        response_rate=rate,
    )


def make_catalog(positions):
    return LandmarkCatalog(
        [
            Landmark(i, f"lm-{i}", LandmarkKind.POINT, Point(x, y))
            for i, (x, y) in enumerate(positions)
        ]
    )


class TestWorkerPool:
    def test_add_get_contains(self):
        pool = WorkerPool([make_worker(1)])
        assert 1 in pool and len(pool) == 1
        assert pool.get(1).worker_id == 1

    def test_duplicate_rejected(self):
        pool = WorkerPool([make_worker(1)])
        with pytest.raises(WorkerSelectionError):
            pool.add(make_worker(1))

    def test_unknown_worker(self):
        with pytest.raises(WorkerSelectionError):
            WorkerPool().get(5)

    def test_assign_release(self):
        pool = WorkerPool([make_worker(1)])
        pool.assign(1)
        assert pool.get(1).outstanding_tasks == 1
        pool.release(1)
        pool.release(1)  # never below zero
        assert pool.get(1).outstanding_tasks == 0

    def test_answer_history(self):
        worker = make_worker(1)
        worker.record_answer(7, correct=True)
        worker.record_answer(7, correct=False)
        record = worker.history_for(7)
        assert record.correct == 1 and record.wrong == 1 and record.total == 2
        assert worker.history_for(99).total == 0

    def test_nearest_familiar_place_defaults_to_home(self):
        worker = make_worker(1, home=(5, 5))
        assert worker.nearest_familiar_place(Point(0, 0)) == Point(5, 5)


class TestResponseTimeModel:
    def test_probability_monotone_in_deadline(self):
        model = ResponseTimeModel()
        worker = make_worker(1, rate=1.0 / 600)
        assert model.probability_within(worker, 1200) > model.probability_within(worker, 300)

    def test_probability_zero_for_non_positive_deadline(self):
        assert ResponseTimeModel().probability_within(make_worker(1), 0) == 0.0

    def test_expected_response_time(self):
        worker = make_worker(1, rate=1.0 / 600)
        assert ResponseTimeModel().expected_response_time(worker) == pytest.approx(600.0)

    def test_meets_deadline_threshold(self):
        model = ResponseTimeModel()
        fast = make_worker(1, rate=1.0 / 60)
        slow = make_worker(2, rate=1.0 / 7200)
        assert model.meets_deadline(fast, 600, 0.9)
        assert not model.meets_deadline(slow, 600, 0.9)

    def test_sample_nonnegative(self):
        model = ResponseTimeModel()
        rng = random.Random(3)
        samples = [model.sample(make_worker(1), rng) for _ in range(100)]
        assert all(value >= 0 for value in samples)

    def test_invalid_minimum_rate(self):
        with pytest.raises(WorkerSelectionError):
            ResponseTimeModel(minimum_rate=0)


class TestPMF:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMatrixFactorization(latent_dim=0)
        with pytest.raises(ConfigurationError):
            ProbabilisticMatrixFactorization(learning_rate=0)
        with pytest.raises(ConfigurationError):
            ProbabilisticMatrixFactorization(max_iterations=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMatrixFactorization().predict()

    def test_reconstructs_low_rank_matrix(self):
        rng = np.random.default_rng(5)
        true_workers = rng.uniform(0.2, 1.0, size=(3, 20))
        true_landmarks = rng.uniform(0.2, 1.0, size=(3, 15))
        matrix = true_workers.T @ true_landmarks
        mask = rng.random(matrix.shape) < 0.6
        observed = np.where(mask, matrix, 0.0)
        pmf = ProbabilisticMatrixFactorization(latent_dim=3, max_iterations=2000, learning_rate=0.01)
        pmf.fit(observed, mask)
        predicted = pmf.predict()
        error = np.abs(predicted - matrix)[~mask].mean()
        assert error < 0.25

    def test_complete_preserves_observed_cells(self):
        matrix = np.array([[1.0, 0.0], [0.0, 2.0]])
        pmf = ProbabilisticMatrixFactorization(latent_dim=2, max_iterations=50)
        completed = pmf.complete(matrix)
        assert completed[0, 0] == pytest.approx(1.0)
        assert completed[1, 1] == pytest.approx(2.0)
        assert completed[0, 1] >= 0.0

    def test_objective_decreases(self):
        rng = np.random.default_rng(9)
        matrix = rng.uniform(0, 1, size=(10, 12))
        pmf = ProbabilisticMatrixFactorization(latent_dim=4, max_iterations=300)
        report = pmf.fit(matrix)
        assert report.final_objective < (matrix**2).sum()

    def test_rejects_bad_shapes(self):
        pmf = ProbabilisticMatrixFactorization()
        with pytest.raises(ConfigurationError):
            pmf.fit(np.zeros(5))
        with pytest.raises(ConfigurationError):
            pmf.fit(np.zeros((2, 2)), mask=np.zeros((3, 3), dtype=bool))

    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMatrixFactorization().fit(np.eye(3), method="magic")

    def test_sparse_matches_dense_training(self):
        # The observed-entry (COO) gradient path must minimise the same
        # objective as the original dense masked implementation.
        rng = np.random.default_rng(17)
        true_workers = rng.uniform(0.2, 1.0, size=(4, 25))
        true_landmarks = rng.uniform(0.2, 1.0, size=(4, 30))
        matrix = true_workers.T @ true_landmarks
        mask = rng.random(matrix.shape) < 0.08  # ~92% unobserved
        observed = np.where(mask, matrix, 0.0)

        sparse_pmf = ProbabilisticMatrixFactorization(latent_dim=4, max_iterations=150)
        dense_pmf = ProbabilisticMatrixFactorization(latent_dim=4, max_iterations=150)
        sparse_report = sparse_pmf.fit(observed, mask, method="sparse")
        dense_report = dense_pmf.fit(observed, mask, method="dense")

        assert sparse_report.final_objective == pytest.approx(
            dense_report.final_objective, rel=1e-6
        )
        assert np.allclose(sparse_pmf.predict(), dense_pmf.predict(), atol=1e-6)

    def test_sparse_handles_empty_mask(self):
        pmf = ProbabilisticMatrixFactorization(latent_dim=2, max_iterations=10)
        report = pmf.fit(np.zeros((4, 5)))
        assert np.isfinite(report.final_objective)
        assert pmf.predict().shape == (4, 5)


class TestFamiliarityModel:
    def setup_method(self):
        self.config = PlannerConfig(knowledge_radius_m=2000.0)
        # Two landmarks far apart; worker 0 lives at landmark 0, worker 1 far from both.
        self.catalog = make_catalog([(0.0, 0.0), (10_000.0, 0.0), (200.0, 0.0)])
        self.pool = WorkerPool(
            [
                make_worker(0, home=(0.0, 50.0), work=(100.0, 0.0)),
                make_worker(1, home=(50_000.0, 50_000.0), work=(51_000.0, 50_000.0)),
            ]
        )
        self.model = FamiliarityModel(self.pool, self.catalog, self.config)

    def test_raw_score_higher_for_local_worker(self):
        local = self.model.raw_score(self.pool.get(0), 0)
        remote = self.model.raw_score(self.pool.get(1), 0)
        assert local > remote
        assert remote == pytest.approx((1 - self.config.familiarity_alpha) * 0.0)

    def test_raw_score_includes_answer_history(self):
        worker = self.pool.get(1)
        before = self.model.raw_score(worker, 1)
        worker.record_answer(1, correct=True)
        after = self.model.raw_score(worker, 1)
        assert after > before

    def test_accumulated_requires_fit(self):
        with pytest.raises(WorkerSelectionError):
            self.model.accumulated_score(0, 0)

    def test_accumulated_aggregates_neighbourhood(self):
        self.model.fit(use_pmf=False)
        # Landmark 2 is 200 m from landmark 0, so worker 0's knowledge of 0
        # also contributes to their accumulated score at 2.
        assert self.model.accumulated_score(0, 2) > 0.0
        assert self.model.accumulated_score(0, 0) > self.model.accumulated_score(1, 0)

    def test_workers_knowing(self):
        self.model.fit(use_pmf=False)
        assert 0 in self.model.workers_knowing(0)

    def test_unknown_ids_raise(self):
        self.model.fit(use_pmf=False)
        with pytest.raises(WorkerSelectionError):
            self.model.accumulated_score(99, 0)

    def test_pmf_fills_unobserved_cells(self, scenario):
        model = FamiliarityModel(scenario.worker_pool, scenario.catalog, scenario.config.planner_config)
        raw = model.build_raw_matrix()
        completed_matrix = model.fit(use_pmf=True)
        assert completed_matrix.shape == raw.shape
        # Accumulation + completion never produces negative familiarity.
        assert (completed_matrix >= -1e-9).all()
