"""Tests for repro.core.task_generation and repro.core.task."""

import pytest

from repro.core.discriminative import is_discriminative
from repro.core.task import render_question
from repro.core.task_generation import TaskGenerator
from repro.exceptions import TaskGenerationError
from repro.routing.base import CandidateRoute, RouteQuery
from repro.roadnet.shortest_path import k_shortest_paths


@pytest.fixture(scope="module")
def task_setup(scenario):
    """A query with genuinely different candidate routes plus a generator."""
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    for query in scenario.sample_queries(20, seed=101):
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 3:
            continue
        try:
            task = generator.generate(query, candidates)
        except TaskGenerationError:
            continue
        return generator, query, candidates, task
    pytest.skip("no suitable query with disagreeing candidates found")


class TestTaskGeneration:
    def test_selected_landmarks_are_discriminative(self, task_setup):
        _, _, _, task = task_setup
        assert is_discriminative(task.selected_landmarks, task.landmark_routes)

    def test_every_selected_landmark_has_a_question(self, task_setup):
        _, _, _, task = task_setup
        assert set(task.questions) == set(task.selected_landmarks)

    def test_question_text_mentions_landmark_name(self, task_setup, scenario):
        _, _, _, task = task_setup
        for landmark_id, question in task.questions.items():
            assert scenario.catalog.get(landmark_id).name in question.text

    def test_expected_questions_le_max_questions(self, task_setup):
        _, _, _, task = task_setup
        assert task.expected_questions() <= task.max_questions() + 1e-9

    def test_candidates_preserved(self, task_setup):
        _, _, candidates, task = task_setup
        task_paths = {c.path for c in task.candidate_routes}
        assert task_paths.issubset({c.path for c in candidates})
        assert task.num_candidates >= 2

    def test_route_index_and_unknown_route(self, task_setup):
        _, _, _, task = task_setup
        assert task.route_index(task.landmark_routes[0]) == 0
        from .helpers import landmark_route

        with pytest.raises(TaskGenerationError):
            task.route_index(landmark_route(99, [1, 2]))

    def test_question_for_unknown_landmark_raises(self, task_setup):
        _, _, _, task = task_setup
        with pytest.raises(TaskGenerationError):
            task.question_for(-42)

    def test_single_candidate_rejected(self, task_setup):
        generator, query, candidates, _ = task_setup
        with pytest.raises(TaskGenerationError):
            generator.generate(query, candidates[:1])

    def test_duplicate_landmark_signature_routes_are_merged(self, task_setup, scenario):
        generator, query, candidates, _ = task_setup
        duplicated = list(candidates) + [
            CandidateRoute(path=candidates[0].path, source="clone", support=99)
        ]
        task = generator.generate(query, duplicated)
        signatures = [lr.landmark_set for lr in task.landmark_routes]
        assert len(signatures) == len(set(signatures))


class TestRenderQuestion:
    def test_render_question_includes_time(self, scenario):
        landmark_id = scenario.catalog.ids()[0]
        question = render_question(landmark_id, scenario.catalog, departure_time_s=14.5 * 3600)
        assert "14:30" in question.text
        assert question.landmark_id == landmark_id
