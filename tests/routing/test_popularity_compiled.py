"""Compiled popularity cost vectors: equivalence with the closure oracle and
cache invalidation when the transfer network or the road graph changes."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.roadnet.graph import RoadClass, RoadEdge, RoadNode
from repro.roadnet.shortest_path import dijkstra_path
from repro.routing.base import RouteQuery
from repro.routing.mpr import MostPopularRouteMiner
from repro.routing.popularity import TransferNetwork
from repro.spatial import Point
from repro.trajectory.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from repro.trajectory.storage import TrajectoryStore


@pytest.fixture(scope="module")
def mining_setup(small_network):
    generator = TrajectoryGenerator(
        small_network,
        TrajectoryGeneratorConfig(
            num_drivers=10, num_hot_pairs=4, trips_per_driver=8, min_od_distance_m=700.0, seed=45
        ),
    )
    drivers = generator.generate_drivers()
    hot_pairs = generator.generate_hot_od_pairs()
    store = TrajectoryStore(small_network)
    store.add_many(generator.generate(drivers, hot_pairs))
    return store, hot_pairs


class TestCompiledCostVector:
    @pytest.mark.parametrize("smoothing", [0.1, 0.5, 1.0])
    def test_vector_bit_identical_to_oracle(self, small_network, mining_setup, smoothing):
        store, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network, smoothing)
        vector = compiled.metric_costs(metric)
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, smoothing)
            for edge in compiled.edge_records
        ]
        assert vector == oracle

    def test_metric_reused_until_state_changes(self, small_network, mining_setup):
        store, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        first = compiled.metric_costs(metric)
        assert transfer.compiled_cost_metric(small_network) == metric
        # Same state: the exact vector object is served again.
        assert compiled.metric_costs(metric) is first

    def test_ingest_invalidates_vector(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        transfer = TransferNetwork(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        stale = list(compiled.metric_costs(metric))
        version = transfer.version

        origin, destination = hot_pairs[0]
        transfer.ingest_path(dijkstra_path(small_network, origin, destination))
        assert transfer.version == version + 1
        assert transfer.compiled_cost_metric(small_network) == metric
        fresh = compiled.metric_costs(metric)
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, 0.1)
            for edge in compiled.edge_records
        ]
        assert fresh == oracle
        assert fresh != stale

    def test_refresh_resyncs_with_store(self, small_network, mining_setup):
        store, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        total = transfer.total_trajectories
        version = transfer.version
        transfer.refresh()
        assert transfer.version == version + 1
        assert transfer.total_trajectories == total == len(store)

    def test_network_mutation_recompiles(self, mining_setup):
        # A private copy of the grid so mutating it cannot leak into the
        # session-scoped fixture.
        from repro.roadnet.generators import GridCityConfig, generate_grid_city

        network = generate_grid_city(GridCityConfig(rows=8, cols=8, block_size_m=200.0, seed=3))
        store, _ = mining_setup
        transfer = TransferNetwork(network, store)
        metric = transfer.compiled_cost_metric(network)
        before = network.compiled()
        assert before.has_metric(metric)

        new_node = max(network.node_ids()) + 1
        network.add_node(RoadNode(new_node, Point(-500.0, -500.0)))
        network.add_edge(RoadEdge(new_node, network.node_ids()[0], 707.0, RoadClass.LOCAL))
        assert transfer.compiled_cost_metric(network) == metric
        after = network.compiled()
        assert after is not before
        assert len(after.metric_costs(metric)) == after.edge_count


class TestIncrementalIngest:
    """``ingest_path`` must patch only dirty edges, never recompile O(E)."""

    def _fresh(self, small_network, store):
        # A private transfer network so metric state cannot leak across tests.
        return TransferNetwork(small_network, store)

    def test_patch_in_place_bit_identical_to_full_recompile(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        transfer = self._fresh(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        vector_before = compiled.metric_costs(metric)

        for origin, destination in hot_pairs[:3]:
            transfer.ingest_path(dijkstra_path(small_network, origin, destination))
        assert transfer.compiled_cost_metric(small_network) == metric
        patched = compiled.metric_costs(metric)
        # Patched in place: same list object, not a re-registered vector.
        assert patched is vector_before
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, 0.1)
            for edge in compiled.edge_records
        ]
        assert patched == oracle

    def test_patch_repairs_cached_relaxation_lists(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        transfer = self._fresh(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        adjacency = compiled.relaxation_lists(compiled.metric_costs(metric))

        origin, destination = hot_pairs[0]
        transfer.ingest_path(dijkstra_path(small_network, origin, destination))
        transfer.compiled_cost_metric(small_network)
        repaired = compiled.relaxation_lists(compiled.metric_costs(metric))
        assert repaired is adjacency  # updated in place, not rebuilt
        vector = compiled.metric_costs(metric)
        for per_node in repaired:
            for cost, _, position in per_node:
                assert cost == vector[position]

    def test_routing_stays_equal_to_closure_after_live_ingest(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        compiled_miner = MostPopularRouteMiner(small_network, store, min_support=2)
        closure_miner = MostPopularRouteMiner(
            small_network,
            store,
            min_support=2,
            transfer_network=compiled_miner.transfer,
            use_compiled_costs=False,
        )
        compiled_miner.prepare_batch([])
        for origin, destination in hot_pairs[:2]:
            compiled_miner.transfer.ingest_path(dijkstra_path(small_network, origin, destination))
            for query_pair in hot_pairs:
                query = RouteQuery(*query_pair)
                fast = compiled_miner.recommend_or_none(query)
                oracle = closure_miner.recommend_or_none(query)
                assert (fast.path if fast else None) == (oracle.path if oracle else None)

    def test_refresh_falls_back_to_full_recompile(self, small_network, mining_setup):
        store, _ = mining_setup
        transfer = self._fresh(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        vector_before = compiled.metric_costs(metric)
        transfer.refresh()
        assert transfer.compiled_cost_metric(small_network) == metric
        assert compiled.metric_costs(metric) is not vector_before  # re-registered
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, 0.1)
            for edge in compiled.edge_records
        ]
        assert compiled.metric_costs(metric) == oracle

    def test_vector_older_than_journal_window_recompiles(self, small_network, mining_setup):
        from repro.routing import popularity

        store, hot_pairs = mining_setup
        transfer = self._fresh(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network)
        vector_before = compiled.metric_costs(metric)
        path = dijkstra_path(small_network, *hot_pairs[0])
        for _ in range(popularity._INGEST_JOURNAL_LIMIT + 5):
            transfer.ingest_path(path)
        assert transfer.compiled_cost_metric(small_network) == metric
        assert compiled.metric_costs(metric) is not vector_before  # full rebuild
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, 0.1)
            for edge in compiled.edge_records
        ]
        assert compiled.metric_costs(metric) == oracle

    def test_smoothing_change_recompiles(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        transfer = self._fresh(small_network, store)
        compiled = small_network.compiled()
        metric = transfer.compiled_cost_metric(small_network, smoothing=0.1)
        transfer.ingest_path(dijkstra_path(small_network, *hot_pairs[0]))
        assert transfer.compiled_cost_metric(small_network, smoothing=0.5) == metric
        oracle = [
            transfer.edge_popularity_cost(edge.source, edge.target, 0.5)
            for edge in compiled.edge_records
        ]
        assert compiled.metric_costs(metric) == oracle


class TestPatchMetricValidation:
    def test_rejects_builtin_unknown_and_bad_values(self, small_network):
        compiled = small_network.compiled()
        with pytest.raises(RoadNetworkError):
            compiled.patch_metric("length", [(0, 1.0)])
        with pytest.raises(RoadNetworkError):
            compiled.patch_metric("never-registered", [(0, 1.0)])
        compiled.register_metric("patchable", [1.0] * compiled.edge_count)
        with pytest.raises(RoadNetworkError):
            compiled.patch_metric("patchable", [(0, -1.0)])
        with pytest.raises(RoadNetworkError):
            compiled.patch_metric("patchable", [(compiled.edge_count, 1.0)])
        compiled.patch_metric("patchable", [(0, 2.5)], token="t")
        assert compiled.metric_costs("patchable")[0] == 2.5
        assert compiled.metric_token("patchable") == "t"
        compiled.unregister_metric("patchable")

    def test_failed_patch_leaves_vector_untouched(self, small_network):
        compiled = small_network.compiled()
        compiled.register_metric("atomic", [1.0] * compiled.edge_count, token="v0")
        with pytest.raises(RoadNetworkError):
            # The valid first entry must not be applied when a later one fails.
            compiled.patch_metric("atomic", [(0, 2.0), (1, float("nan"))], token="v1")
        assert compiled.metric_costs("atomic")[0] == 1.0
        assert compiled.metric_token("atomic") == "v0"
        compiled.unregister_metric("atomic")


class TestRegisterMetricValidation:
    def test_rejects_wrong_length(self, small_network):
        compiled = small_network.compiled()
        with pytest.raises(RoadNetworkError):
            compiled.register_metric("bad", [1.0])

    def test_rejects_negative_and_nan(self, small_network):
        compiled = small_network.compiled()
        costs = [1.0] * compiled.edge_count
        costs[0] = -1.0
        with pytest.raises(RoadNetworkError):
            compiled.register_metric("bad", costs)
        costs[0] = float("nan")
        with pytest.raises(RoadNetworkError):
            compiled.register_metric("bad", costs)

    def test_rejects_builtin_names(self, small_network):
        compiled = small_network.compiled()
        with pytest.raises(RoadNetworkError):
            compiled.register_metric("length", [1.0] * compiled.edge_count)

    def test_allows_infinite_costs(self, small_network):
        compiled = small_network.compiled()
        costs = [1.0] * compiled.edge_count
        costs[0] = float("inf")
        compiled.register_metric("with-inf", costs)
        assert compiled.metric_costs("with-inf")[0] == float("inf")


class TestMinerEquivalence:
    def test_routes_match_closure_oracle(self, small_network, mining_setup):
        store, hot_pairs = mining_setup
        compiled_miner = MostPopularRouteMiner(small_network, store, min_support=2)
        closure_miner = MostPopularRouteMiner(
            small_network,
            store,
            min_support=2,
            transfer_network=compiled_miner.transfer,
            use_compiled_costs=False,
        )
        queries = [RouteQuery(origin, destination) for origin, destination in hot_pairs]
        queries += [query.reversed() for query in queries]
        for query in queries:
            fast = compiled_miner.recommend_or_none(query)
            oracle = closure_miner.recommend_or_none(query)
            if oracle is None:
                assert fast is None
            else:
                assert fast.path == oracle.path
                assert fast.support == oracle.support
