"""Tests for repro.routing.base."""

import pytest

from repro.exceptions import RoutingError
from repro.routing.base import CandidateRoute, RouteQuery, RouteSource


class TestRouteQuery:
    def test_reversed(self):
        query = RouteQuery(origin=1, destination=2, departure_time_s=100.0)
        back = query.reversed()
        assert back.origin == 2 and back.destination == 1
        assert back.departure_time_s == 100.0


class TestCandidateRoute:
    def test_requires_two_nodes(self):
        with pytest.raises(RoutingError):
            CandidateRoute(path=[1], source="x")

    def test_origin_destination_and_edges(self):
        route = CandidateRoute(path=[1, 2, 3], source="shortest")
        assert route.origin == 1
        assert route.destination == 3
        assert route.edge_set() == {(1, 2), (2, 3)}

    def test_metadata_copied(self):
        metadata = {"length_m": 10.0}
        route = CandidateRoute(path=[1, 2], source="x", metadata=metadata)
        metadata["length_m"] = 99.0
        assert route.metadata["length_m"] == 10.0

    def test_similarity_identical(self):
        a = CandidateRoute(path=[1, 2, 3], source="a")
        b = CandidateRoute(path=[1, 2, 3], source="b")
        assert a.similarity_to(b) == 1.0

    def test_similarity_disjoint(self):
        a = CandidateRoute(path=[1, 2], source="a")
        b = CandidateRoute(path=[3, 4], source="b")
        assert a.similarity_to(b) == 0.0

    def test_similarity_partial_and_symmetric(self):
        a = CandidateRoute(path=[1, 2, 3], source="a")
        b = CandidateRoute(path=[1, 2, 4], source="b")
        assert 0.0 < a.similarity_to(b) < 1.0
        assert a.similarity_to(b) == pytest.approx(b.similarity_to(a))

    def test_length_and_points(self, tiny_network):
        route = CandidateRoute(path=[0, 1, 3], source="a")
        assert route.length_m(tiny_network) == pytest.approx(200.0)
        assert len(route.points(tiny_network)) == 3


class TestRouteSource:
    def test_recommend_or_none_swallows_routing_errors(self):
        class Failing(RouteSource):
            name = "failing"

            def recommend(self, query):
                raise RoutingError("nope")

        assert Failing().recommend_or_none(RouteQuery(1, 2)) is None

    def test_recommend_or_none_passes_through_success(self):
        class Fixed(RouteSource):
            name = "fixed"

            def recommend(self, query):
                return CandidateRoute(path=[query.origin, query.destination], source=self.name)

        result = Fixed().recommend_or_none(RouteQuery(1, 2))
        assert result.source == "fixed"
