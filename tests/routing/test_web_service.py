"""Tests for repro.routing.web_service."""

import pytest

from repro.exceptions import RoutingError
from repro.roadnet.shortest_path import dijkstra_path, free_flow_time_cost, length_cost, path_cost
from repro.routing.base import RouteQuery
from repro.routing.web_service import (
    AlternativeAwareService,
    FastestRouteService,
    ShortestRouteService,
)


@pytest.fixture(scope="module")
def od_pair(small_network):
    nodes = small_network.node_ids()
    return nodes[0], nodes[-1]


class TestShortestRouteService:
    def test_matches_dijkstra_length(self, small_network, od_pair):
        origin, destination = od_pair
        service = ShortestRouteService(small_network)
        route = service.recommend(RouteQuery(origin, destination))
        reference = dijkstra_path(small_network, origin, destination, cost=length_cost)
        assert path_cost(small_network, list(route.path)) == pytest.approx(
            path_cost(small_network, reference)
        )
        assert route.source == "shortest"
        assert route.metadata["length_m"] > 0

    def test_endpoints_match_query(self, small_network, od_pair):
        origin, destination = od_pair
        route = ShortestRouteService(small_network).recommend(RouteQuery(origin, destination))
        assert route.origin == origin and route.destination == destination


class TestFastestRouteService:
    def test_minimises_time_cost(self, small_network, od_pair):
        origin, destination = od_pair
        service = FastestRouteService(small_network)
        route = service.recommend(RouteQuery(origin, destination, departure_time_s=3 * 3600.0))
        assert route.source == "fastest"
        assert route.metadata["travel_time_s"] > 0
        small_network.validate_path(list(route.path))

    def test_fastest_no_longer_than_shortest_in_time(self, small_network, od_pair):
        origin, destination = od_pair
        query = RouteQuery(origin, destination, departure_time_s=8 * 3600.0)
        fastest = FastestRouteService(small_network).recommend(query)
        shortest = ShortestRouteService(small_network).recommend(query)
        model = FastestRouteService(small_network).travel_time_model
        fast_time = model.path_travel_time(small_network, list(fastest.path), query.departure_time_s)
        short_time = model.path_travel_time(small_network, list(shortest.path), query.departure_time_s)
        # Traffic-light penalties are not part of the fastest service's edge
        # cost, so allow a small slack.
        assert fast_time <= short_time * 1.2 + 60.0


class TestAlternativeAwareService:
    def test_invalid_parameters(self, small_network):
        with pytest.raises(RoutingError):
            AlternativeAwareService(small_network, alternatives=0)
        with pytest.raises(RoutingError):
            AlternativeAwareService(small_network, time_weight=2.0)

    def test_recommend_valid_route(self, small_network, od_pair):
        origin, destination = od_pair
        service = AlternativeAwareService(small_network, alternatives=3)
        route = service.recommend(RouteQuery(origin, destination))
        small_network.validate_path(list(route.path))
        assert route.source == "web_alternatives"

    def test_pure_length_weight_matches_shortest(self, small_network, od_pair):
        origin, destination = od_pair
        service = AlternativeAwareService(small_network, alternatives=3, time_weight=0.0)
        route = service.recommend(RouteQuery(origin, destination))
        shortest = ShortestRouteService(small_network).recommend(RouteQuery(origin, destination))
        assert path_cost(small_network, list(route.path)) == pytest.approx(
            path_cost(small_network, list(shortest.path))
        )
