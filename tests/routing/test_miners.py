"""Tests for the popular-route miners (MPR, LDR, MFP) and the transfer network."""

import pytest

from repro.exceptions import InsufficientSupportError, RoutingError
from repro.routing.base import RouteQuery
from repro.routing.ldr import LocalDriverRouteMiner
from repro.routing.mfp import MostFrequentPathMiner
from repro.routing.mpr import MostPopularRouteMiner
from repro.routing.popularity import TransferNetwork
from repro.trajectory.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from repro.trajectory.storage import TrajectoryStore


@pytest.fixture(scope="module")
def mining_setup(small_network):
    """A store with concentrated trips on a handful of od-pairs."""
    generator = TrajectoryGenerator(
        small_network,
        TrajectoryGeneratorConfig(
            num_drivers=10, num_hot_pairs=4, trips_per_driver=8, min_od_distance_m=700.0, seed=45
        ),
    )
    drivers = generator.generate_drivers()
    hot_pairs = generator.generate_hot_od_pairs()
    trajectories = generator.generate(drivers, hot_pairs)
    store = TrajectoryStore(small_network)
    store.add_many(trajectories)
    return store, hot_pairs, generator


class TestTransferNetwork:
    def test_counts_match_store(self, small_network, mining_setup):
        store, _, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        assert transfer.total_trajectories == len(store)
        (edge, count) = transfer.hottest_edges(1)[0]
        assert count == store.edge_support(*edge)

    def test_transition_probabilities_sum_to_at_most_one(self, small_network, mining_setup):
        store, _, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        # For a node with observed outgoing transitions, the probabilities
        # over its graph neighbours should sum to ~1 (smoothing included).
        edge, _ = transfer.hottest_edges(1)[0]
        node = edge[0]
        total = sum(
            transfer.transition_probability(node, neighbor)
            for neighbor in small_network.neighbors(node)
        )
        assert total == pytest.approx(1.0, abs=0.05)

    def test_coverage_between_zero_and_one(self, small_network, mining_setup):
        store, _, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        assert 0.0 < transfer.coverage() <= 1.0

    def test_popularity_cost_decreases_with_support(self, small_network, mining_setup):
        store, _, _ = mining_setup
        transfer = TransferNetwork(small_network, store)
        edge, _ = transfer.hottest_edges(1)[0]
        unused = next(
            e.key for e in small_network.edges() if transfer.edge_count(*e.key) == 0 and e.source == edge[0]
        ) if any(transfer.edge_count(*e.key) == 0 and e.source == edge[0] for e in small_network.edges()) else None
        if unused is None:
            pytest.skip("all outgoing edges of the hottest node are used")
        assert transfer.edge_popularity_cost(*edge) < transfer.edge_popularity_cost(*unused)


class TestMPR:
    def test_recommends_on_supported_pair(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostPopularRouteMiner(small_network, store, min_support=2)
        origin, destination = hot_pairs[0]
        route = miner.recommend(RouteQuery(origin, destination))
        small_network.validate_path(list(route.path))
        assert route.source == "MPR"
        assert route.support >= 2

    def test_insufficient_support_raises(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostPopularRouteMiner(small_network, store, min_support=10_000)
        origin, destination = hot_pairs[0]
        with pytest.raises(InsufficientSupportError):
            miner.recommend(RouteQuery(origin, destination))

    def test_invalid_min_support(self, small_network, mining_setup):
        store, _, _ = mining_setup
        with pytest.raises(RoutingError):
            MostPopularRouteMiner(small_network, store, min_support=-1)

    def test_prefers_supported_edges(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostPopularRouteMiner(small_network, store, min_support=1)
        origin, destination = hot_pairs[0]
        route = miner.recommend(RouteQuery(origin, destination))
        supported_edges = sum(1 for e in zip(route.path, route.path[1:]) if store.edge_support(*e) > 0)
        assert supported_edges / (len(route.path) - 1) > 0.5


class TestMFP:
    def test_returns_an_actually_travelled_path(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostFrequentPathMiner(small_network, store, min_support=2)
        origin, destination = hot_pairs[0]
        route = miner.recommend(RouteQuery(origin, destination))
        origin_location = small_network.node_location(route.path[0])
        destination_location = small_network.node_location(route.path[-1])
        historical = store.paths_between(origin_location, destination_location, 300.0)
        assert list(route.path) in historical

    def test_frequency_metadata(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostFrequentPathMiner(small_network, store, min_support=2)
        origin, destination = hot_pairs[0]
        route = miner.recommend(RouteQuery(origin, destination))
        assert route.metadata["frequency"] >= 1

    def test_insufficient_support(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = MostFrequentPathMiner(small_network, store, min_support=10_000)
        with pytest.raises(InsufficientSupportError):
            miner.recommend(RouteQuery(*hot_pairs[0]))

    def test_invalid_parameters(self, small_network, mining_setup):
        store, _, _ = mining_setup
        with pytest.raises(RoutingError):
            MostFrequentPathMiner(small_network, store, min_support=-1)
        with pytest.raises(RoutingError):
            MostFrequentPathMiner(small_network, store, time_slot_width_s=0)


class TestLDR:
    def test_returns_a_single_drivers_habitual_route(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = LocalDriverRouteMiner(small_network, store, min_support=2)
        origin, destination = hot_pairs[0]
        route = miner.recommend(RouteQuery(origin, destination))
        driver_id = int(route.metadata["driver_id"])
        # The habitual route must be one of that driver's own trips.
        origin_location = small_network.node_location(route.path[0])
        destination_location = small_network.node_location(route.path[-1])
        driver_paths = [
            store.matched_path(tid)
            for tid in store.find_by_od(origin_location, destination_location, 300.0)
            if store.get(tid).driver_id == driver_id
        ]
        assert list(route.path) in driver_paths

    def test_insufficient_support(self, small_network, mining_setup):
        store, hot_pairs, _ = mining_setup
        miner = LocalDriverRouteMiner(small_network, store, min_support=10_000)
        with pytest.raises(InsufficientSupportError):
            miner.recommend(RouteQuery(*hot_pairs[0]))

    def test_invalid_min_support(self, small_network, mining_setup):
        store, _, _ = mining_setup
        with pytest.raises(RoutingError):
            LocalDriverRouteMiner(small_network, store, min_support=-1)

    def test_unsupported_od_pair_raises(self, small_network, mining_setup):
        store, _, _ = mining_setup
        miner = LocalDriverRouteMiner(small_network, store, min_support=1)
        # Adjacent corner nodes are extremely unlikely to be a hot pair.
        with pytest.raises(InsufficientSupportError):
            miner.recommend(RouteQuery(0, 1))
