"""Tests for the scenario builder and query workloads."""

import pytest

from repro.datasets.synthetic_city import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import (
    LargeBatchWorkloadConfig,
    QueryWorkloadConfig,
    generate_large_batch_workload,
    generate_query_workload,
)
from repro.exceptions import ConfigurationError


class TestSyntheticCityConfig:
    def test_rejects_tiny_city(self):
        with pytest.raises(ConfigurationError):
            SyntheticCityConfig(rows=2, cols=2)


class TestScenario:
    def test_scenario_components_consistent(self, scenario):
        assert scenario.network.node_count == scenario.config.rows * scenario.config.cols
        assert len(scenario.catalog) == scenario.config.num_landmarks
        assert len(scenario.worker_pool) == scenario.config.num_workers
        assert len(scenario.store) > 0
        assert len(scenario.sources) == 6

    def test_landmarks_have_inferred_significance(self, scenario):
        scores = [lm.significance for lm in scenario.catalog]
        assert max(scores) == pytest.approx(1.0)
        assert len({round(s, 6) for s in scores}) > 5

    def test_ground_truth_path_valid(self, scenario):
        query = scenario.sample_queries(1, seed=601)[0]
        path = scenario.ground_truth_path(query)
        scenario.network.validate_path(path)
        assert path[0] == query.origin and path[-1] == query.destination

    def test_sample_queries_count_and_distance(self, scenario):
        queries = scenario.sample_queries(8, seed=602)
        assert len(queries) == 8
        for query in queries:
            distance = scenario.network.node_location(query.origin).distance_to(
                scenario.network.node_location(query.destination)
            )
            assert distance >= 4 * scenario.config.block_size_m

    def test_sample_queries_deterministic(self, scenario):
        a = scenario.sample_queries(5, seed=603)
        b = scenario.sample_queries(5, seed=603)
        assert [(q.origin, q.destination) for q in a] == [(q.origin, q.destination) for q in b]

    def test_build_planner_without_worker_preparation(self, scenario):
        planner = scenario.build_planner(prepare_workers=False)
        assert planner.worker_selector is None


class TestQueryWorkload:
    def test_requires_base_pairs(self, scenario):
        with pytest.raises(ConfigurationError):
            generate_query_workload(scenario.network, [], QueryWorkloadConfig(num_queries=5))

    def test_workload_size_and_validity(self, scenario):
        workload = generate_query_workload(
            scenario.network,
            scenario.hot_pairs,
            QueryWorkloadConfig(num_queries=50, num_distinct_pairs=10, seed=11),
        )
        assert 0 < len(workload) <= 50
        for query in workload:
            assert query.origin != query.destination
            assert 0 <= query.departure_time_s < 24 * 3600

    def test_workload_repeats_popular_pairs(self, scenario):
        workload = generate_query_workload(
            scenario.network,
            scenario.hot_pairs,
            QueryWorkloadConfig(num_queries=80, num_distinct_pairs=5, endpoint_jitter_m=0.0, seed=12),
        )
        pairs = [(q.origin, q.destination) for q in workload]
        assert len(set(pairs)) <= 5
        most_common_count = max(pairs.count(pair) for pair in set(pairs))
        assert most_common_count > len(workload) / 5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            QueryWorkloadConfig(num_distinct_pairs=0)
        with pytest.raises(ConfigurationError):
            QueryWorkloadConfig(zipf_exponent=0)


class TestLargeBatchWorkload:
    def test_size_and_validity(self, scenario):
        workload = generate_large_batch_workload(
            scenario.network, LargeBatchWorkloadConfig(num_queries=120, num_clusters=4, seed=5)
        )
        assert len(workload) == 120
        node_ids = set(scenario.network.node_ids())
        for query in workload:
            assert query.origin != query.destination
            assert query.origin in node_ids and query.destination in node_ids
            assert 0 <= query.departure_time_s < 24 * 3600

    def test_deterministic(self, scenario):
        config = LargeBatchWorkloadConfig(num_queries=50, num_clusters=3, seed=9)
        first = generate_large_batch_workload(scenario.network, config)
        second = generate_large_batch_workload(scenario.network, config)
        assert first == second

    def test_queries_concentrate_in_clusters(self, scenario):
        workload = generate_large_batch_workload(
            scenario.network,
            LargeBatchWorkloadConfig(
                num_queries=100, num_clusters=3, pairs_per_cluster=2, endpoint_jitter_m=0.0, seed=5
            ),
        )
        origins = {query.origin for query in workload}
        # 3 clusters x 2 base pairs with no jitter: few distinct origins.
        assert len(origins) <= 6

    def test_dominant_destination_cell(self, scenario):
        workload = generate_large_batch_workload(
            scenario.network,
            LargeBatchWorkloadConfig(
                num_queries=100, num_clusters=4, dominant_destination_fraction=0.5, seed=7
            ),
        )
        destinations = [query.destination for query in workload]
        dominant_share = max(destinations.count(d) for d in set(destinations)) / len(destinations)
        assert dominant_share >= 0.4

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LargeBatchWorkloadConfig(num_clusters=0)
        with pytest.raises(ConfigurationError):
            LargeBatchWorkloadConfig(dominant_destination_fraction=1.5)
        with pytest.raises(ConfigurationError):
            LargeBatchWorkloadConfig(cluster_radius_m=0)
