"""Shared fixtures for the test suite.

The expensive objects (city networks, the end-to-end scenario) are
session-scoped so the whole suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.config import PlannerConfig
from repro.datasets.synthetic_city import Scenario, SyntheticCityConfig, build_scenario
from repro.landmarks.generator import LandmarkGeneratorConfig, generate_landmarks
from repro.roadnet.generators import GridCityConfig, generate_grid_city
from repro.roadnet.graph import RoadClass, RoadEdge, RoadNetwork, RoadNode
from repro.spatial import Point
from repro.trajectory.calibration import AnchorCalibrator


@pytest.fixture(scope="session")
def small_network() -> RoadNetwork:
    """A 8x8 grid city shared by substrate tests."""
    return generate_grid_city(GridCityConfig(rows=8, cols=8, block_size_m=200.0, seed=3))


@pytest.fixture(scope="session")
def tiny_network() -> RoadNetwork:
    """A hand-built 4-node network with known shortest paths.

    Layout (all edges bidirectional, lengths in metres)::

        0 --100-- 1
        |         |
       100       100
        |         |
        2 --100-- 3
        0 --250-- 3   (diagonal, longer than the 200 m corner routes)
    """
    network = RoadNetwork(index_cell_size=100.0)
    network.add_node(RoadNode(0, Point(0.0, 0.0)))
    network.add_node(RoadNode(1, Point(100.0, 0.0), has_traffic_light=True))
    network.add_node(RoadNode(2, Point(0.0, 100.0)))
    network.add_node(RoadNode(3, Point(100.0, 100.0)))
    network.add_edge(RoadEdge(0, 1, 100.0, RoadClass.LOCAL), bidirectional=True)
    network.add_edge(RoadEdge(0, 2, 100.0, RoadClass.LOCAL), bidirectional=True)
    network.add_edge(RoadEdge(1, 3, 100.0, RoadClass.LOCAL), bidirectional=True)
    network.add_edge(RoadEdge(2, 3, 100.0, RoadClass.LOCAL), bidirectional=True)
    network.add_edge(RoadEdge(0, 3, 250.0, RoadClass.ARTERIAL), bidirectional=True)
    return network


@pytest.fixture(scope="session")
def small_catalog(small_network):
    """A landmark catalogue over the small network (no significance yet)."""
    return generate_landmarks(small_network, LandmarkGeneratorConfig(count=60, seed=5))


@pytest.fixture(scope="session")
def small_calibrator(small_network, small_catalog):
    return AnchorCalibrator(small_network, small_catalog.all())


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """A compact but complete end-to-end scenario shared across the suite."""
    return build_scenario(
        SyntheticCityConfig(
            rows=9,
            cols=9,
            block_size_m=220.0,
            num_landmarks=70,
            num_drivers=16,
            trips_per_driver=10,
            num_hot_pairs=12,
            num_workers=24,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def planner(scenario):
    """A prepared planner over the shared scenario (state accumulates across tests)."""
    return scenario.build_planner()


@pytest.fixture()
def config() -> PlannerConfig:
    return PlannerConfig()
