"""Tests for repro.landmarks.generator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.landmarks.generator import (
    LandmarkGeneratorConfig,
    generate_landmarks,
    intrinsic_attractiveness,
)
from repro.landmarks.model import LandmarkKind


class TestConfig:
    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            LandmarkGeneratorConfig(count=0)

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            LandmarkGeneratorConfig(region_fraction=0.8, line_fraction=0.5)
        with pytest.raises(ConfigurationError):
            LandmarkGeneratorConfig(region_fraction=-0.1)


class TestGeneration:
    def test_count_and_unique_ids(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=80, seed=2))
        assert len(catalog) == 80
        assert len(set(catalog.ids())) == 80

    def test_landmarks_near_network(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=40, seed=3))
        box = small_network.bounding_box().expanded(100)
        for landmark in catalog:
            assert box.contains(landmark.anchor)

    def test_significance_initially_zero(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=20, seed=4))
        assert all(lm.significance == 0.0 for lm in catalog)

    def test_deterministic_for_seed(self, small_network):
        a = generate_landmarks(small_network, LandmarkGeneratorConfig(count=30, seed=9))
        b = generate_landmarks(small_network, LandmarkGeneratorConfig(count=30, seed=9))
        assert [lm.anchor for lm in a.all()] == [lm.anchor for lm in b.all()]

    def test_kind_mix(self, small_network):
        catalog = generate_landmarks(
            small_network,
            LandmarkGeneratorConfig(count=200, region_fraction=0.2, line_fraction=0.2, seed=5),
        )
        kinds = {lm.kind for lm in catalog}
        assert kinds == {LandmarkKind.POINT, LandmarkKind.LINE, LandmarkKind.REGION}

    def test_point_landmarks_have_zero_extent(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=100, seed=6))
        for landmark in catalog:
            if landmark.kind is LandmarkKind.POINT:
                assert landmark.extent_m == 0.0
            else:
                assert landmark.extent_m > 0.0


class TestAttractiveness:
    def test_known_categories_have_positive_weights(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=50, seed=7))
        for landmark in catalog:
            assert intrinsic_attractiveness(landmark) > 0

    def test_famous_category_more_attractive_than_residential(self, small_network):
        catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=300, seed=8))
        by_category = {lm.category: lm for lm in catalog}
        if "landmark" in by_category and "residential" in by_category:
            assert intrinsic_attractiveness(by_category["landmark"]) > intrinsic_attractiveness(
                by_category["residential"]
            )
