"""Tests for repro.landmarks.model."""

import pytest

from repro.exceptions import LandmarkError
from repro.landmarks.model import Landmark, LandmarkCatalog, LandmarkKind
from repro.spatial import Point


def make_landmark(landmark_id, x=0.0, y=0.0, significance=0.0, extent=0.0):
    return Landmark(
        landmark_id=landmark_id,
        name=f"lm-{landmark_id}",
        kind=LandmarkKind.POINT,
        anchor=Point(x, y),
        extent_m=extent,
        significance=significance,
    )


class TestLandmark:
    def test_rejects_negative_extent(self):
        with pytest.raises(LandmarkError):
            make_landmark(1, extent=-1)

    def test_rejects_out_of_range_significance(self):
        with pytest.raises(LandmarkError):
            make_landmark(1, significance=1.5)

    def test_with_significance_returns_copy(self):
        original = make_landmark(1, significance=0.2)
        updated = original.with_significance(0.8)
        assert original.significance == 0.2
        assert updated.significance == 0.8
        assert updated.landmark_id == 1


class TestLandmarkCatalog:
    def test_add_get_len_iter_contains(self):
        catalog = LandmarkCatalog([make_landmark(1), make_landmark(2, 100, 100)])
        assert len(catalog) == 2
        assert 1 in catalog and 3 not in catalog
        assert catalog.get(2).anchor == Point(100, 100)
        assert {lm.landmark_id for lm in catalog} == {1, 2}

    def test_get_unknown_raises(self):
        with pytest.raises(LandmarkError):
            LandmarkCatalog().get(9)

    def test_add_replaces_existing(self):
        catalog = LandmarkCatalog([make_landmark(1, significance=0.1)])
        catalog.add(make_landmark(1, significance=0.9))
        assert catalog.get(1).significance == 0.9
        assert len(catalog) == 1

    def test_nearest_and_within_radius(self):
        catalog = LandmarkCatalog([make_landmark(1, 0, 0), make_landmark(2, 500, 0)])
        assert catalog.nearest(Point(10, 0)).landmark_id == 1
        assert [lm.landmark_id for lm in catalog.within_radius(Point(0, 0), 100)] == [1]
        assert catalog.nearest(Point(0, 0), max_radius=1.0).landmark_id == 1

    def test_nearest_empty_catalog(self):
        assert LandmarkCatalog().nearest(Point(0, 0)) is None

    def test_update_significances_partial(self):
        catalog = LandmarkCatalog([make_landmark(1, significance=0.1), make_landmark(2, significance=0.2)])
        updated = catalog.update_significances({1: 0.9})
        assert updated.get(1).significance == 0.9
        assert updated.get(2).significance == 0.2
        # The original catalogue is untouched.
        assert catalog.get(1).significance == 0.1

    def test_top_by_significance(self):
        catalog = LandmarkCatalog(
            [make_landmark(1, significance=0.3), make_landmark(2, significance=0.9), make_landmark(3, significance=0.5)]
        )
        top = catalog.top_by_significance(2)
        assert [lm.landmark_id for lm in top] == [2, 3]

    def test_significance_of(self):
        catalog = LandmarkCatalog([make_landmark(4, significance=0.7)])
        assert catalog.significance_of(4) == 0.7
