"""Tests for repro.landmarks.significance (HITS-like inference)."""

import pytest

from repro.exceptions import LandmarkError
from repro.landmarks.checkins import CheckIn
from repro.landmarks.model import Landmark, LandmarkCatalog, LandmarkKind
from repro.landmarks.significance import SignificanceInference, infer_significance
from repro.spatial import Point


def checkin(user_id, landmark_id):
    return CheckIn(user_id=user_id, landmark_id=landmark_id, time_of_day_s=12 * 3600.0)


def catalog_of(count):
    return LandmarkCatalog(
        [
            Landmark(i, f"lm-{i}", LandmarkKind.POINT, Point(i * 100.0, 0.0))
            for i in range(count)
        ]
    )


class TestScoresFromEdges:
    def test_empty_edges(self):
        assert SignificanceInference().scores_from_edges([]) == {}

    def test_more_visited_landmark_scores_higher(self):
        edges = [("u1", 1), ("u2", 1), ("u3", 1), ("u1", 2)]
        scores = SignificanceInference().scores_from_edges(edges)
        assert scores[1] > scores[2]

    def test_scores_normalised_to_unit_interval(self):
        edges = [(f"u{i}", i % 3) for i in range(30)]
        scores = SignificanceInference().scores_from_edges(edges)
        assert max(scores.values()) == pytest.approx(1.0)
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_repeat_visits_reinforce(self):
        once = SignificanceInference().scores_from_edges([("u1", 1), ("u1", 2)])
        repeated = SignificanceInference().scores_from_edges([("u1", 1), ("u1", 1), ("u1", 1), ("u1", 2)])
        assert repeated[2] < once[2] + 1e-9

    def test_mutual_reinforcement(self):
        # Landmark 3 is visited only once, but by a traveller who also visits
        # the popular hubs; landmark 4 is visited once by an otherwise idle
        # user.  HITS should rank 3 above 4.
        edges = [("expert", 1), ("expert", 2), ("expert", 3)]
        edges += [(f"u{i}", 1) for i in range(5)]
        edges += [(f"u{i}", 2) for i in range(5)]
        edges += [("loner", 4)]
        scores = SignificanceInference().scores_from_edges(edges)
        assert scores[3] > scores[4]

    def test_build_edges_combines_sources(self):
        inference = SignificanceInference()
        edges = inference.build_edges(
            checkins=[checkin(1, 10)],
            taxi_visits={7: [10, 11]},
        )
        assert ("lbsn:1", 10) in edges
        assert ("taxi:7", 11) in edges
        assert len(edges) == 3


class TestInferSignificance:
    def test_updates_catalog_scores(self):
        catalog = catalog_of(3)
        checkins = [checkin(u, 0) for u in range(5)] + [checkin(9, 1)]
        updated = infer_significance(catalog, checkins)
        assert updated.get(0).significance == pytest.approx(1.0)
        assert updated.get(0).significance > updated.get(1).significance

    def test_unvisited_landmark_gets_floor(self):
        catalog = catalog_of(2)
        updated = infer_significance(catalog, [checkin(1, 0)], floor=0.05)
        assert updated.get(1).significance == pytest.approx(0.05)

    def test_invalid_floor(self):
        with pytest.raises(LandmarkError):
            infer_significance(catalog_of(1), [], floor=2.0)

    def test_original_catalog_unchanged(self):
        catalog = catalog_of(2)
        infer_significance(catalog, [checkin(1, 0)])
        assert all(lm.significance == 0.0 for lm in catalog)

    def test_taxi_visits_alone_work(self):
        catalog = catalog_of(3)
        updated = infer_significance(catalog, [], taxi_visits={1: [0, 0, 1], 2: [0]})
        assert updated.get(0).significance > updated.get(2).significance
