"""Tests for repro.landmarks.checkins."""

import pytest

from repro.exceptions import ConfigurationError
from repro.landmarks.checkins import CheckInSimulator, CheckInSimulatorConfig
from repro.landmarks.generator import LandmarkGeneratorConfig, generate_landmarks, intrinsic_attractiveness
from repro.landmarks.model import LandmarkCatalog


@pytest.fixture(scope="module")
def simulator(small_network):
    catalog = generate_landmarks(small_network, LandmarkGeneratorConfig(count=60, seed=12))
    return CheckInSimulator(catalog, small_network.bounding_box(), CheckInSimulatorConfig(num_users=40, checkins_per_user=20, seed=13))


class TestConfig:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CheckInSimulatorConfig(num_users=0)
        with pytest.raises(ConfigurationError):
            CheckInSimulatorConfig(distance_decay_m=0)
        with pytest.raises(ConfigurationError):
            CheckInSimulatorConfig(travel_probability=1.5)

    def test_empty_catalog_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            CheckInSimulator(LandmarkCatalog(), small_network.bounding_box())


class TestSimulation:
    def test_checkin_counts(self, simulator):
        checkins = simulator.generate()
        assert len(checkins) == 40 * 20

    def test_homes_inside_bounding_box(self, simulator, small_network):
        homes = simulator.generate_user_homes()
        box = small_network.bounding_box()
        assert len(homes) == 40
        assert all(box.contains(home) for home in homes.values())

    def test_checkins_reference_known_landmarks(self, simulator):
        checkins = simulator.generate()
        catalog_ids = set(simulator.catalog.ids())
        assert all(checkin.landmark_id in catalog_ids for checkin in checkins)

    def test_deterministic_for_seed(self, simulator):
        first = simulator.generate()
        second = simulator.generate()
        assert [(c.user_id, c.landmark_id) for c in first] == [(c.user_id, c.landmark_id) for c in second]

    def test_attractive_landmarks_get_more_checkins(self, simulator):
        checkins = simulator.generate()
        counts = CheckInSimulator.visit_counts(checkins)
        landmarks = simulator.catalog.all()
        attractive = [lm for lm in landmarks if intrinsic_attractiveness(lm) >= 2.5]
        dull = [lm for lm in landmarks if intrinsic_attractiveness(lm) <= 0.5]
        if not attractive or not dull:
            pytest.skip("catalogue sample lacks both extremes")
        mean_attractive = sum(counts.get(lm.landmark_id, 0) for lm in attractive) / len(attractive)
        mean_dull = sum(counts.get(lm.landmark_id, 0) for lm in dull) / len(dull)
        assert mean_attractive > mean_dull

    def test_visit_counts_total(self, simulator):
        checkins = simulator.generate()
        counts = CheckInSimulator.visit_counts(checkins)
        assert sum(counts.values()) == len(checkins)
