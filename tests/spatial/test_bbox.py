"""Tests for repro.spatial.bbox."""

import pytest

from repro.exceptions import SpatialError
from repro.spatial import BoundingBox, Point


class TestConstruction:
    def test_invalid_corners_raise(self):
        with pytest.raises(SpatialError):
            BoundingBox(10, 0, 0, 10)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 2), Point(-1, 5), Point(3, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(SpatialError):
            BoundingBox.from_points([])

    def test_around(self):
        box = BoundingBox.around(Point(0, 0), 5)
        assert box.width == 10 and box.height == 10

    def test_around_negative_radius_raises(self):
        with pytest.raises(SpatialError):
            BoundingBox.around(Point(0, 0), -1)


class TestGeometry:
    def test_area_and_center(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.area == 8
        assert box.center == Point(2, 1)

    def test_contains_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.01, 0.5))

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        c = BoundingBox(5, 5, 6, 6)
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_intersects_touching_edges(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.intersects(b)

    def test_expanded(self):
        assert BoundingBox(0, 0, 1, 1).expanded(1) == BoundingBox(-1, -1, 2, 2)

    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert a.union(b) == BoundingBox(0, 0, 3, 3)
