"""Tests for repro.spatial.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.point import Point, centroid, euclidean_distance, haversine_distance

finite_coord = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    pytestmark = [pytest.mark.property]

    def test_distance_to_pythagorean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(5, -3)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_as_tuple_and_iter(self):
        point = Point(1.5, 2.5)
        assert point.as_tuple() == (1.5, 2.5)
        assert tuple(point) == (1.5, 2.5)

    def test_points_are_hashable_and_orderable(self):
        points = {Point(0, 0), Point(0, 0), Point(1, 1)}
        assert len(points) == 2
        assert sorted([Point(1, 0), Point(0, 5)])[0] == Point(0, 5)

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    def test_triangle_inequality_through_origin(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6


class TestDistances:
    def test_euclidean_matches_method(self):
        assert euclidean_distance(Point(0, 0), Point(1, 1)) == pytest.approx(math.sqrt(2))

    def test_haversine_zero_for_same_point(self):
        assert haversine_distance(40.0, 116.0, 40.0, 116.0) == pytest.approx(0.0)

    def test_haversine_one_degree_latitude(self):
        # One degree of latitude is roughly 111 km.
        distance = haversine_distance(0.0, 0.0, 1.0, 0.0)
        assert 110_000 < distance < 112_500

    def test_haversine_symmetric(self):
        assert haversine_distance(10, 20, 30, 40) == pytest.approx(haversine_distance(30, 40, 10, 20))


class TestCentroid:
    def test_centroid_of_square(self):
        points = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(points) == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])
