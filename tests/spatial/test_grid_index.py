"""Tests for repro.spatial.grid_index, including a property-based check
against a brute-force linear scan."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SpatialError
from repro.spatial import GridIndex, Point

coord = st.floats(min_value=-5_000, max_value=5_000, allow_nan=False)
point_list = st.lists(st.tuples(coord, coord), min_size=1, max_size=40, unique=True)


class TestBasicOperations:
    def test_invalid_cell_size(self):
        with pytest.raises(SpatialError):
            GridIndex(cell_size=0)

    def test_insert_and_contains(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(0, 0))
        assert "a" in index
        assert len(index) == 1
        assert index.location_of("a") == Point(0, 0)

    def test_reinsert_moves_item(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(0, 0))
        index.insert("a", Point(500, 500))
        assert len(index) == 1
        assert index.location_of("a") == Point(500, 500)

    def test_remove(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(0, 0))
        index.remove("a")
        assert "a" not in index
        with pytest.raises(KeyError):
            index.remove("a")

    def test_insert_many_and_items(self):
        index = GridIndex(cell_size=100)
        index.insert_many([("a", Point(0, 0)), ("b", Point(10, 10))])
        assert sorted(index.items()) == ["a", "b"]


class TestQueries:
    def test_within_radius_sorted_by_distance(self):
        index = GridIndex(cell_size=50)
        index.insert("near", Point(10, 0))
        index.insert("far", Point(90, 0))
        index.insert("outside", Point(500, 0))
        results = index.within_radius(Point(0, 0), 100)
        assert [item for item, _ in results] == ["near", "far"]

    def test_within_radius_negative_raises(self):
        with pytest.raises(SpatialError):
            GridIndex().within_radius(Point(0, 0), -1)

    def test_nearest_empty_index(self):
        assert GridIndex().nearest(Point(0, 0)) is None

    def test_nearest_respects_max_radius(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(1000, 0))
        assert index.nearest(Point(0, 0), max_radius=500) is None
        assert index.nearest(Point(0, 0), max_radius=2000)[0] == "a"

    def test_nearest_far_query_point(self):
        index = GridIndex(cell_size=10)
        index.insert("a", Point(0, 0))
        item, distance = index.nearest(Point(10_000, 10_000))
        assert item == "a"
        assert distance == pytest.approx(Point(10_000, 10_000).distance_to(Point(0, 0)))

    def test_k_nearest_returns_k_items(self):
        index = GridIndex(cell_size=100)
        for i in range(10):
            index.insert(i, Point(i * 50, 0))
        result = index.k_nearest(Point(0, 0), 3)
        assert [item for item, _ in result] == [0, 1, 2]

    def test_k_nearest_k_larger_than_population(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(0, 0))
        assert len(index.k_nearest(Point(0, 0), 5)) == 1

    def test_k_nearest_zero(self):
        assert GridIndex().k_nearest(Point(0, 0), 0) == []


class TestDeterministicTieBreaking:
    def test_equidistant_items_rank_by_insertion_order(self):
        index = GridIndex(cell_size=100)
        # Four items at the same distance from the query, inserted in an
        # order that differs from their lexicographic order.
        index.insert("zz", Point(10, 0))
        index.insert("aa", Point(-10, 0))
        index.insert("mm", Point(0, 10))
        index.insert("bb", Point(0, -10))
        results = index.within_radius(Point(0, 0), 50)
        assert [item for item, _ in results] == ["zz", "aa", "mm", "bb"]

    def test_reinsertion_moves_item_to_back_of_ties(self):
        index = GridIndex(cell_size=100)
        index.insert("a", Point(10, 0))
        index.insert("b", Point(0, 10))
        index.insert("a", Point(-10, 0))  # move: now younger than "b"
        results = index.within_radius(Point(0, 0), 50)
        assert [item for item, _ in results] == ["b", "a"]

    def test_unorderable_items_are_supported(self):
        # The former tie-break on str(item) was deterministic but allocated a
        # string per pair; insertion-order ranking must handle items whose
        # repr is unstable (default object repr embeds the address).
        index = GridIndex(cell_size=100)
        first, second = object(), object()
        index.insert(first, Point(10, 0))
        index.insert(second, Point(-10, 0))
        results = index.within_radius(Point(0, 0), 50)
        assert [item for item, _ in results] == [first, second]


class TestChurn:
    def test_heavy_insert_remove_churn_stays_correct_and_compact(self):
        index = GridIndex(cell_size=137.0)
        live = {}
        for i in range(3000):
            name = f"p{i % 200}"  # constant rotation of 200 identities
            location = Point((i * 37) % 1000, (i * 91) % 1000)
            index.insert(name, location)
            live[name] = location
            if i % 3 == 2:
                victim = f"p{(i - 2) % 200}"
                if victim in index:
                    index.remove(victim)
                    del live[victim]
        assert len(index) == len(live)
        # Tombstoned slots must be compacted away, not accumulate forever.
        assert len(index._slot_item) <= max(64, 2 * len(live)) * 2
        query = Point(500, 500)
        expected = {n for n, p in live.items() if query.distance_to(p) <= 300.0}
        assert {item for item, _ in index.within_radius(query, 300.0)} == expected
        nearest_item, _ = index.nearest(query)
        assert nearest_item == min(live, key=lambda n: (query.distance_to(live[n]), n)) or (
            query.distance_to(live[nearest_item])
            == min(query.distance_to(p) for p in live.values())
        )


class TestAgainstLinearScan:
    pytestmark = [pytest.mark.property]

    @given(point_list, coord, coord)
    @settings(max_examples=50, deadline=None)
    def test_nearest_matches_linear_scan(self, raw_points, qx, qy):
        index = GridIndex(cell_size=137.0)
        points = {f"p{i}": Point(x, y) for i, (x, y) in enumerate(raw_points)}
        index.insert_many(points.items())
        query = Point(qx, qy)
        expected_distance = min(query.distance_to(p) for p in points.values())
        item, distance = index.nearest(query)
        assert distance == pytest.approx(expected_distance)
        assert query.distance_to(points[item]) == pytest.approx(expected_distance)

    @given(point_list, coord, coord, st.floats(min_value=0, max_value=2_000))
    @settings(max_examples=50, deadline=None)
    def test_within_radius_matches_linear_scan(self, raw_points, qx, qy, radius):
        index = GridIndex(cell_size=211.0)
        points = {f"p{i}": Point(x, y) for i, (x, y) in enumerate(raw_points)}
        index.insert_many(points.items())
        query = Point(qx, qy)
        expected = {name for name, p in points.items() if query.distance_to(p) <= radius}
        got = {item for item, _ in index.within_radius(query, radius)}
        assert got == expected
