"""Tests for repro.spatial.distance."""

import pytest
from hypothesis import given, strategies as st

from repro.spatial import Point, point_to_segment_distance, project_point_on_segment, route_length
from repro.spatial.distance import discrete_frechet_distance

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestProjection:
    pytestmark = [pytest.mark.property]

    def test_projection_onto_interior(self):
        projection, t = project_point_on_segment(Point(5, 5), Point(0, 0), Point(10, 0))
        assert projection == Point(5, 0)
        assert t == pytest.approx(0.5)

    def test_projection_clamped_to_start(self):
        projection, t = project_point_on_segment(Point(-5, 3), Point(0, 0), Point(10, 0))
        assert projection == Point(0, 0)
        assert t == 0.0

    def test_projection_clamped_to_end(self):
        projection, t = project_point_on_segment(Point(15, 3), Point(0, 0), Point(10, 0))
        assert projection == Point(10, 0)
        assert t == 1.0

    def test_degenerate_segment(self):
        projection, t = project_point_on_segment(Point(3, 4), Point(1, 1), Point(1, 1))
        assert projection == Point(1, 1)
        assert t == 0.0

    def test_distance_perpendicular(self):
        assert point_to_segment_distance(Point(5, 7), Point(0, 0), Point(10, 0)) == pytest.approx(7.0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_distance_never_exceeds_endpoint_distances(self, px, py, ax, ay, bx, by):
        point, start, end = Point(px, py), Point(ax, ay), Point(bx, by)
        distance = point_to_segment_distance(point, start, end)
        assert distance <= point.distance_to(start) + 1e-6
        assert distance <= point.distance_to(end) + 1e-6


class TestRouteLength:
    def test_route_length_simple(self):
        assert route_length([Point(0, 0), Point(3, 4), Point(3, 10)]) == pytest.approx(11.0)

    def test_route_length_single_point_is_zero(self):
        assert route_length([Point(1, 1)]) == 0.0


class TestFrechet:
    def test_identical_polylines_zero(self):
        line = [Point(0, 0), Point(1, 0), Point(2, 0)]
        assert discrete_frechet_distance(line, line) == pytest.approx(0.0)

    def test_parallel_offset_lines(self):
        a = [Point(0, 0), Point(1, 0), Point(2, 0)]
        b = [Point(0, 3), Point(1, 3), Point(2, 3)]
        assert discrete_frechet_distance(a, b) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            discrete_frechet_distance([], [Point(0, 0)])

    def test_symmetric(self):
        a = [Point(0, 0), Point(5, 1)]
        b = [Point(1, 1), Point(4, 4), Point(9, 2)]
        assert discrete_frechet_distance(a, b) == pytest.approx(discrete_frechet_distance(b, a))
