"""Tests for repro.spatial.polyline."""

import pytest

from repro.exceptions import SpatialError
from repro.spatial import Point, Polyline


class TestPolyline:
    def test_requires_two_points(self):
        with pytest.raises(SpatialError):
            Polyline([Point(0, 0)])

    def test_length(self):
        line = Polyline([Point(0, 0), Point(3, 4), Point(3, 14)])
        assert line.length == pytest.approx(15.0)

    def test_start_end_len_iter(self):
        line = Polyline([Point(0, 0), Point(1, 0)])
        assert line.start == Point(0, 0)
        assert line.end == Point(1, 0)
        assert len(line) == 2
        assert list(line) == [Point(0, 0), Point(1, 0)]

    def test_reversed(self):
        line = Polyline([Point(0, 0), Point(1, 0), Point(2, 0)])
        assert line.reversed().start == Point(2, 0)

    def test_bounding_box(self):
        line = Polyline([Point(0, 0), Point(2, 5)])
        box = line.bounding_box()
        assert box.max_y == 5

    def test_point_at_fraction_midpoint(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.point_at_fraction(0.5) == Point(5, 0)

    def test_point_at_fraction_clamps(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.point_at_fraction(-1) == Point(0, 0)
        assert line.point_at_fraction(2) == Point(10, 0)

    def test_resample_spacing(self):
        line = Polyline([Point(0, 0), Point(100, 0)])
        samples = line.resample(10)
        assert samples[0] == Point(0, 0)
        assert samples[-1] == Point(100, 0)
        assert len(samples) == 11

    def test_resample_preserves_endpoints_on_bends(self):
        line = Polyline([Point(0, 0), Point(50, 0), Point(50, 50)])
        samples = line.resample(7)
        assert samples[0] == line.start
        assert samples[-1] == line.end

    def test_resample_invalid_spacing(self):
        with pytest.raises(SpatialError):
            Polyline([Point(0, 0), Point(1, 0)]).resample(0)
