"""Tests for the experiment metrics and result container."""

import pytest

from repro.experiments.metrics import ExperimentResult, exact_match, route_quality, route_similarity


class TestRouteSimilarity:
    def test_identical(self):
        assert route_similarity([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert route_similarity([1, 2], [3, 4]) == 0.0

    def test_partial_overlap_symmetric(self):
        a, b = [1, 2, 3, 4], [1, 2, 5, 4]
        assert 0 < route_similarity(a, b) < 1
        assert route_similarity(a, b) == route_similarity(b, a)

    def test_exact_match(self):
        assert exact_match([1, 2], [1, 2])
        assert not exact_match([1, 2], [2, 1])


class TestRouteQuality:
    def test_identical_routes_quality_one(self, tiny_network):
        assert route_quality(tiny_network, [0, 1, 3], [0, 1, 3]) == pytest.approx(1.0)

    def test_disjoint_routes_quality_zero(self, tiny_network):
        assert route_quality(tiny_network, [0, 2, 3], [0, 1, 3]) == pytest.approx(0.0)

    def test_partial_overlap_weighted_by_length(self, tiny_network):
        # Recommended 0-3 direct (250 m) vs truth 0-1-3: zero shared length.
        assert route_quality(tiny_network, [0, 3], [0, 1, 3]) == 0.0
        # Recommended 0-1-3, truth 0-1 only: the first 100 m of 200 m match.
        assert route_quality(tiny_network, [0, 1, 3], [0, 1]) == pytest.approx(0.5)


class TestExperimentResult:
    def test_add_row_and_columns(self):
        result = ExperimentResult("T1", "test")
        result.add_row(name="a", value=1.0)
        result.add_row(name="b", value=3.0)
        assert result.column("value") == [1.0, 3.0]
        assert result.mean_of("value") == 2.0

    def test_best_row(self):
        result = ExperimentResult("T1", "test")
        result.add_row(name="a", value=1.0)
        result.add_row(name="b", value=3.0)
        assert result.best_row("value")["name"] == "b"
        assert result.best_row("value", largest=False)["name"] == "a"

    def test_best_row_missing_column(self):
        result = ExperimentResult("T1", "test")
        result.add_row(name="a")
        with pytest.raises(ValueError):
            result.best_row("value")

    def test_to_table_renders_all_rows(self):
        result = ExperimentResult("T1", "demo table")
        result.add_row(source="MFP", quality=0.91)
        result.add_row(source="MPR", quality=0.78)
        result.summary["winner"] = "MFP"
        text = result.to_table()
        assert "demo table" in text
        assert "MFP" in text and "MPR" in text
        assert "winner" in text

    def test_to_table_empty(self):
        assert "(no rows)" in ExperimentResult("T1", "empty").to_table()
