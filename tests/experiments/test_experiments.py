"""Smoke and shape tests for the experiment modules.

These run each experiment on small workloads and check the *shape* of the
paper's findings (who wins, what decreases) rather than absolute numbers.
"""

import pytest

from repro.experiments import exp_pmf, exp_questions, exp_selection_efficiency, exp_significance
from repro.experiments.exp_pmf import PMFExperimentConfig
from repro.experiments.exp_questions import QuestionExperimentConfig
from repro.experiments.exp_selection_efficiency import SelectionEfficiencyConfig
from repro.experiments.harness import ExperimentRunner
from repro.experiments.synthetic_routes import make_synthetic_landmark_routes


class TestSyntheticRoutes:
    def test_routes_are_distinguishable(self):
        routes, significance = make_synthetic_landmark_routes(4, 15, 5, seed=1)
        signatures = {route.landmark_set for route in routes}
        assert len(signatures) == 4
        assert set(significance) == set(range(15))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_synthetic_landmark_routes(1, 10)
        with pytest.raises(ValueError):
            make_synthetic_landmark_routes(3, 2, 5)


class TestQuestionExperiment:
    def test_id3_never_worse_than_asking_all(self):
        result = exp_questions.run(QuestionExperimentConfig(route_counts=(2, 3, 4), trials=2))
        for row in result.rows:
            assert row["id3_expected_questions"] <= row["ask_all_questions"] + 1e-9
            assert row["selected_landmarks"] <= row["beneficial_landmarks"]

    def test_greedy_matches_ils_objective(self):
        result = exp_questions.run(QuestionExperimentConfig(route_counts=(3, 4), trials=2))
        for row in result.rows:
            assert row["greedy_objective"] == pytest.approx(row["ils_objective"], abs=1e-9)

    def test_questions_grow_with_candidates(self):
        result = exp_questions.run(QuestionExperimentConfig(route_counts=(2, 5), trials=2))
        first, last = result.rows[0], result.rows[-1]
        assert last["id3_expected_questions"] >= first["id3_expected_questions"]


class TestSelectionEfficiencyExperiment:
    def test_all_algorithms_agree_on_value(self):
        result = exp_selection_efficiency.run(
            SelectionEfficiencyConfig(route_counts=(3,), landmark_counts=(10, 12), brute_force_limit=12)
        )
        for row in result.rows:
            if "brute_value" in row:
                assert row["greedy_value"] == pytest.approx(row["brute_value"], abs=1e-9)
                assert row["ils_value"] == pytest.approx(row["brute_value"], abs=1e-9)

    def test_greedy_evaluates_fewer_sets_than_brute_force(self):
        result = exp_selection_efficiency.run(
            SelectionEfficiencyConfig(route_counts=(3,), landmark_counts=(12,), brute_force_limit=12)
        )
        row = result.rows[0]
        assert row["greedy_sets_evaluated"] < row["brute_sets_evaluated"]


class TestScenarioExperiments:
    def test_significance_distribution_is_skewed(self, scenario):
        result = exp_significance.run(scenario)
        assert result.summary["gini"] > 0.2
        assert result.summary["top_10_share"] > 10 / len(scenario.catalog)
        significances = [row["significance"] for row in result.rows]
        assert significances == sorted(significances)

    def test_pmf_beats_zero_baseline(self, scenario):
        result = exp_pmf.run(scenario, PMFExperimentConfig(holdout_fractions=(0.2,)))
        row = result.rows[0]
        assert row["pmf_rmse"] <= row["zero_baseline_rmse"]
        assert row["heldout_cells"] > 0


class TestHarness:
    def test_registry_covers_all_experiments(self, scenario):
        runner = ExperimentRunner(scenario_config=scenario.config, scenario=scenario)
        registry = runner.available_experiments()
        assert set(registry) == {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "F1", "F2"}

    def test_unknown_experiment_id(self, scenario):
        runner = ExperimentRunner(scenario_config=scenario.config, scenario=scenario)
        with pytest.raises(KeyError):
            runner.run(["E99"])

    def test_run_selected_and_render(self, scenario):
        runner = ExperimentRunner(scenario_config=scenario.config, scenario=scenario)
        results = runner.run(["F1"])
        report = ExperimentRunner.render_report(results)
        assert "[F1]" in report
