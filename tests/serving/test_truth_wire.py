"""Columnar truth wire: ``TruthDeltaBlock`` encode/decode ≡ pickled deltas.

The codec is a pure transport change: decoding a block must reconstruct the
exact ``VerifiedTruth`` objects a pickled delta would have delivered —
including ids (the lookup tie-break), endpoint coordinates, paths, metadata
and enum-like strings — for any delta a :class:`TruthDatabase` can hold,
empty deltas and merge-cadence sync deltas included.  Service-level tests
pin that a pooled service on the columnar wire is fingerprint-identical to
the pickle wire and the sequential oracle.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ServiceConfig
from repro.core.truth import TruthDatabase, VerifiedTruth
from repro.exceptions import ServingError
from repro.routing.base import CandidateRoute, RouteQuery
from repro.serving import (
    PooledBackend,
    RecommendationService,
    TruthDeltaBlock,
    encode_truth_delta,
    recommendation_fingerprint,
)
from repro.spatial import Point


def _roundtrip(block, network):
    """Decode the block exactly as a pool worker would: after the pipe."""
    wired = pickle.loads(pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL))
    assert isinstance(wired, TruthDeltaBlock)
    return wired.decode_truths(network)


class TestCodecRoundTrip:
    def test_empty_delta(self, serving_scenario):
        block = encode_truth_delta([], serving_scenario.network)
        assert len(block) == 0
        assert _roundtrip(block, serving_scenario.network) == []

    def test_recorded_truths_roundtrip_exactly(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        planner.recommend_batch(serving_workload[:60])
        delta = planner.truths.all()
        assert delta, "workload recorded no truths"
        block = encode_truth_delta(delta, planner.network)
        decoded = _roundtrip(block, planner.network)
        assert decoded == delta
        # Bit-exactness of the fields equality cannot see past.
        for original, copy in zip(delta, decoded):
            assert copy.truth_id == original.truth_id
            assert (copy.origin.x, copy.origin.y) == (original.origin.x, original.origin.y)
            assert copy.route.path == original.route.path
            assert copy.route.metadata == original.route.metadata
            assert type(copy.route.support) is int

    def test_adopt_all_accepts_blocks(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        planner.recommend_batch(serving_workload[:40])
        delta = planner.truths.all()
        from_block = TruthDatabase(planner.network, planner.config)
        from_block.adopt_all(encode_truth_delta(delta, planner.network))
        from_objects = TruthDatabase(planner.network, planner.config)
        from_objects.adopt_all(delta)
        assert from_block.all() == from_objects.all()
        query = RouteQuery(delta[0].route.path[0], delta[0].route.path[-1])
        assert from_block.lookup(query) == from_objects.lookup(query)

    def test_off_node_endpoints_and_irregular_metadata(self, serving_scenario):
        """Endpoints off the network and non-float metadata take the
        override tables and still round-trip exactly."""
        network = serving_scenario.network
        node_ids = network.node_ids()
        path = [node_ids[0], node_ids[1], node_ids[2]]
        truths = [
            VerifiedTruth(
                truth_id=901,
                origin=Point(-1234.5, 777.25),  # not a node location
                destination=network.node_location(node_ids[3]),
                time_slot=9,
                route=CandidateRoute(
                    path=path, source="weird", support=3,
                    metadata={"count": 4, "note_m": 1.5},  # int value: irregular
                ),
                verified_by="crowd",
                confidence=0.625,
            ),
            VerifiedTruth(
                truth_id=905,
                origin=network.node_location(node_ids[4]),
                destination=Point(99999.0, -3.5),
                time_slot=9,
                route=CandidateRoute(path=list(reversed(path)), source="weird", support=0),
                verified_by="agreement",
                confidence=0.625,
            ),
        ]
        block = encode_truth_delta(truths, network)
        assert block.origin_index.tolist()[0] == -1
        assert block.destination_index.tolist()[1] == -1
        assert 0 in block.irregular_meta
        decoded = _roundtrip(block, network)
        assert decoded == truths
        assert decoded[0].route.metadata == {"count": 4, "note_m": 1.5}
        assert type(decoded[0].route.metadata["count"]) is int

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_deltas_roundtrip(self, serving_scenario, data):
        """Property: any delta of valid truths — random paths over real
        nodes, random slots/confidences/supports/metadata, non-contiguous
        ids — decodes to objects equal to the originals."""
        network = serving_scenario.network
        node_ids = network.node_ids()
        count = data.draw(st.integers(min_value=0, max_value=12))
        truths = []
        next_id = 1
        for _ in range(count):
            next_id += data.draw(st.integers(min_value=1, max_value=50))
            path_nodes = data.draw(
                st.lists(st.sampled_from(node_ids), min_size=2, max_size=12)
            )
            metadata_keys = data.draw(
                st.lists(
                    st.sampled_from(["length_m", "travel_time_s", "support_frac"]),
                    unique=True, max_size=3,
                )
            )
            metadata = {
                key: data.draw(st.floats(allow_nan=False, allow_infinity=False))
                for key in metadata_keys
            }
            truths.append(
                VerifiedTruth(
                    truth_id=next_id,
                    origin=network.node_location(data.draw(st.sampled_from(node_ids))),
                    destination=network.node_location(data.draw(st.sampled_from(node_ids))),
                    time_slot=data.draw(st.integers(min_value=0, max_value=23)),
                    route=CandidateRoute(
                        path=path_nodes,
                        source=data.draw(st.sampled_from(["shortest", "fastest", "MPR"])),
                        support=data.draw(st.integers(min_value=0, max_value=500)),
                        metadata=metadata,
                    ),
                    verified_by=data.draw(
                        st.sampled_from(["crowd", "agreement", "confidence", "single_candidate"])
                    ),
                    confidence=data.draw(
                        st.sampled_from([0.5, 0.6, 0.9, 0.625, 1.0])
                    ),
                )
            )
        decoded = _roundtrip(encode_truth_delta(truths, network), network)
        assert decoded == truths


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="platform has no fork start method",
)
class TestServiceWireParity:
    def _run(self, build_serving_planner, workload, **backend_kwargs):
        planner = build_serving_planner()
        backend = PooledBackend(pool_size=2, **backend_kwargs)
        with RecommendationService(planner, backend=backend) as service:
            responses = []
            # Several batches so later dispatches carry non-empty deltas.
            for start in range(0, len(workload), 40):
                responses.extend(service.results(service.submit(workload[start:start + 40])))
        return (
            [recommendation_fingerprint(r.result) for r in responses],
            planner.statistics.as_dict(),
            [
                (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
                for t in planner.truths.all()
            ],
        )

    def test_columnar_wire_matches_pickle_wire_and_oracle(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        columnar = self._run(build_serving_planner, serving_workload, truth_wire="columnar")
        pickled = self._run(build_serving_planner, serving_workload, truth_wire="pickle")
        assert columnar == pickled
        assert columnar[0] == sequential_oracle["plain"]["fingerprints"]
        assert columnar[2] == sequential_oracle["plain"]["truths"]

    def test_dirty_merge_cadence_syncs_columnar(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """merge_every_batches > 1 leaves idle workers dirty between
        cadences; the catch-up sync ships columnar deltas too."""
        responses = self._run(
            build_serving_planner, serving_workload,
            truth_wire="columnar", merge_every_batches=3,
        )
        assert responses[0] == sequential_oracle["plain"]["fingerprints"]

    def test_config_knob_validation(self, build_serving_planner):
        with pytest.raises(ServingError):
            PooledBackend(pool_size=1, truth_wire="msgpack")
        config = ServiceConfig.from_planner_config(
            build_serving_planner().config, backend="pooled", truth_wire="pickle"
        )
        assert config.truth_wire == "pickle"
        assert "truth_wire" in config.to_dict()
