"""Graceful-degradation coverage: hedges, admission control, degrade ladder.

Three traffic-shaped failure modes, one contract: whatever the resilience
layer had to do — speculatively duplicate a straggler's shard, shed a
submission at admission, or suspend a journal on a dying disk — redeemed
fingerprints stay bit-identical to the sequential oracle, and every action
is observable in ``service.statistics()["resilience"]``.
"""

from __future__ import annotations

import dataclasses
import errno
import multiprocessing
import time
import warnings

import pytest

from repro.config import ServiceConfig
from repro.exceptions import JournalError, OverloadError, ServingError
from repro.serving import RecommendationService, recommendation_fingerprint
from repro.serving.tenancy import WorkspaceService

from .faults import FaultInjectingBackend, break_journal_disk

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")

RESILIENCE_KEYS = {
    "hedges_issued",
    "hedges_won",
    "hedges_wasted",
    "stragglers_killed",
    "sheds",
    "deadline_breaches",
    "journal_suspended",
}


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _inline_config(planner, **overrides) -> ServiceConfig:
    config = ServiceConfig.from_planner_config(planner.config)
    return dataclasses.replace(config, backend="inline", **overrides)


@pytest.fixture
def oracle(sequential_oracle):
    return sequential_oracle["plain"]["fingerprints"]


# ------------------------------------------------------------ hedged execution
@needs_fork
@pytest.mark.chaos
class TestHedgedExecution:
    def test_slow_worker_without_hedging_stalls_but_stays_correct(
        self, build_serving_planner, serving_workload, oracle
    ):
        """Baseline for the straggler gap: a slow-but-heartbeating worker is
        never declared hung, so the batch rides the stall out — correctly,
        just slowly."""
        backend = FaultInjectingBackend(
            schedule={0: "slow"}, pool_size=2, slow_total_s=1.0
        )
        service = RecommendationService(build_serving_planner(), backend=backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:32])))
            assert _fingerprints(responses) == oracle[:32]
            stats = service.statistics()
            assert stats["supervision"]["hung_workers_killed"] == 0
            assert stats["resilience"]["hedges_issued"] == 0

    def test_hedge_absorbs_straggler(
        self, build_serving_planner, serving_workload, oracle
    ):
        """With ``hedge_after_s`` set, the straggler's shard is re-dispatched
        to an idle worker and the duplicate's outcome is discarded — results
        identical, the stall not load-bearing."""
        backend = FaultInjectingBackend(
            schedule={0: "slow"},
            pool_size=2,
            hedge_after_s=0.15,
            # Stalled far longer than the healthy worker needs to drain the
            # queue and run the hedge: the hedge must be issued and must win.
            slow_total_s=6.0,
        )
        service = RecommendationService(build_serving_planner(), backend=backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:32])))
            assert _fingerprints(responses) == oracle[:32]
            resilience = service.statistics()["resilience"]
            assert resilience["hedges_issued"] >= 1
            # Stopped ~3s against a 0.15s budget: the hedge must win.
            assert resilience["hedges_won"] >= 1
            # The crawler is not hung (it heartbeats in its run slices), so
            # the hang supervisor stayed out of it.
            assert service.statistics()["supervision"]["hung_workers_killed"] == 0

    def test_every_hedge_race_resolves(
        self, build_serving_planner, serving_workload, oracle
    ):
        """A short stall makes the race genuinely uncertain; whoever wins
        (or whether a hedge was even needed), every issued hedge is
        accounted won or wasted and fingerprints hold."""
        backend = FaultInjectingBackend(
            schedule={1: "slow"},
            pool_size=2,
            hedge_after_s=0.1,
            slow_total_s=1.0,
        )
        service = RecommendationService(build_serving_planner(), backend=backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:32])))
            assert _fingerprints(responses) == oracle[:32]
            resilience = service.statistics()["resilience"]
            assert (
                resilience["hedges_won"] + resilience["hedges_wasted"]
                == resilience["hedges_issued"]
            )

    def test_hedged_window_matches_oracle(
        self, build_serving_planner, serving_workload, oracle
    ):
        """The DAG dispatcher hedges too: a straggler inside a pipelined
        window is absorbed without perturbing the strict merge order."""
        planner = build_serving_planner()
        config = dataclasses.replace(
            ServiceConfig.from_planner_config(planner.config),
            backend="pooled",
            pool_size=2,
            pipeline_window=3,
        )
        backend = FaultInjectingBackend(
            schedule={1: "slow"},
            pool_size=2,
            hedge_after_s=0.15,
            slow_total_s=6.0,
        )
        service = RecommendationService(planner, config=config, backend=backend)
        with service:
            tickets = [
                service.submit(list(serving_workload[start : start + 16]))
                for start in (0, 16, 32)
            ]
            produced = []
            for ticket in tickets:
                produced.extend(_fingerprints(service.results(ticket)))
            assert produced == oracle[:48]
            assert service.statistics()["resilience"]["hedges_issued"] >= 1

    def test_lame_loser_is_killed_after_deadline(
        self, build_serving_planner, serving_workload, oracle
    ):
        """A hedge loser that never drains its stale reply is killed once it
        breaches ``rpc_deadline_s`` on top of losing the race."""
        backend = FaultInjectingBackend(
            schedule={0: "slow"},
            pool_size=2,
            hedge_after_s=0.1,
            # A ~3% duty cycle: the loser accumulates almost no CPU, so it
            # cannot deliver its duplicate before the lame deadline expires.
            slow_total_s=8.0,
            slow_stop_s=0.3,
            slow_run_s=0.01,
        )
        service = RecommendationService(build_serving_planner(), backend=backend)
        with service:
            produced = _fingerprints(service.results(service.submit(list(serving_workload[:32]))))
            # Let the loser's (non-renewable) lame deadline lapse; the next
            # batch edge polls the lame set and fires the kill.
            time.sleep(0.9)
            produced += _fingerprints(service.results(service.submit(list(serving_workload[32:64]))))
            assert produced == oracle[:64]
            resilience = service.statistics()["resilience"]
            assert resilience["hedges_issued"] >= 1
            assert resilience["stragglers_killed"] >= 1


# ----------------------------------------------------------- admission control
class TestAdmissionControl:
    def test_queue_full_sheds_with_typed_error(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=_inline_config(planner, max_pending_batches=2))
        with service:
            service.submit(list(serving_workload[:4]))
            service.submit(list(serving_workload[4:8]))
            with pytest.raises(OverloadError):
                service.submit(list(serving_workload[8:12]))
            # OverloadError subclasses ServingError: pre-existing callers
            # catching the queue-full ServingError keep working.
            assert issubclass(OverloadError, ServingError)
            assert service.statistics()["resilience"]["sheds"] == 1

    def test_unmeetable_deadline_sheds_before_side_effects(
        self, build_serving_planner, serving_workload, oracle
    ):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=_inline_config(planner))
        with service:
            # Seed the EWMA with one real batch.
            produced = _fingerprints(service.results(service.submit(list(serving_workload[:16]))))
            backlog = service.submit(list(serving_workload[16:32]))
            with pytest.raises(OverloadError):
                service.submit(list(serving_workload[32:48]), deadline_s=1e-9)
            assert service.statistics()["resilience"]["sheds"] == 1
            # Side-effect-free shed: the same queries resubmit cleanly and
            # the stream is exactly the oracle's.
            retry = service.submit(list(serving_workload[32:48]))
            produced += _fingerprints(service.results(backlog))
            produced += _fingerprints(service.results(retry))
            assert produced == oracle[:48]

    def test_admitted_deadline_breach_is_counted_not_fatal(
        self, build_serving_planner, serving_workload, oracle
    ):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=_inline_config(planner))
        with service:
            # No EWMA yet, so admission cannot price the deadline: the batch
            # is admitted, runs to completion, and the breach is counted.
            ticket = service.submit(list(serving_workload[:16]), deadline_s=1e-6)
            assert _fingerprints(service.results(ticket)) == oracle[:16]
            resilience = service.statistics()["resilience"]
            assert resilience["deadline_breaches"] == 1
            assert resilience["sheds"] == 0

    def test_deadline_must_be_positive(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=_inline_config(planner))
        with service:
            with pytest.raises(ServingError):
                service.submit(list(serving_workload[:4]), deadline_s=0.0)

    def test_statistics_resilience_shape(self, build_serving_planner):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=_inline_config(planner))
        with service:
            resilience = service.statistics()["resilience"]
            assert set(resilience) == RESILIENCE_KEYS
            assert resilience["journal_suspended"] is False
            assert all(
                resilience[key] == 0 for key in RESILIENCE_KEYS - {"journal_suspended"}
            )


# ------------------------------------------------------------- degrade ladder
class TestJournalDegradeLadder:
    def _config(self, planner, tmp_path, **overrides) -> ServiceConfig:
        return _inline_config(
            planner,
            journal_path=str(tmp_path / "journal"),
            snapshot_every_truths=10_000,  # keep the ladder on the append path
            **overrides,
        )

    def test_raise_mode_surfaces_typed_journal_error(
        self, tmp_path, build_serving_planner, serving_workload
    ):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=self._config(planner, tmp_path))
        with service:
            service.results(service.submit(list(serving_workload[:8])))
            break_journal_disk(service.journal, fail_at_append=0, error=errno.ENOSPC)
            with pytest.raises(JournalError):
                service.results(service.submit(list(serving_workload[8:16])))
            assert service.statistics()["resilience"]["journal_suspended"] is False

    def test_suspend_mode_keeps_serving_and_recovers_to_durable_prefix(
        self, tmp_path, build_serving_planner, serving_workload, oracle
    ):
        planner = build_serving_planner()
        config = self._config(planner, tmp_path, journal_on_error="suspend")
        service = RecommendationService(planner, config=config)
        with service:
            produced = _fingerprints(service.results(service.submit(list(serving_workload[:16]))))
            break_journal_disk(service.journal, fail_at_append=0, error=errno.EIO)
            with pytest.warns(RuntimeWarning, match="journal suspended"):
                produced += _fingerprints(
                    service.results(service.submit(list(serving_workload[16:32])))
                )
            # Degraded, still serving — and no second warning: the ladder
            # latches instead of re-tripping per batch.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                produced += _fingerprints(
                    service.results(service.submit(list(serving_workload[32:48])))
                )
            assert produced == oracle[:48]
            assert service.statistics()["resilience"]["journal_suspended"] is True

        # recover() replays to the last *durable* batch: exactly the one
        # appended before the disk died.  Re-serving from there reproduces
        # the oracle stream — the undurable batches were answered but lost,
        # as documented.
        fresh = build_serving_planner()
        recovered = RecommendationService.recover(
            fresh, config.journal_path, config=self._config(fresh, tmp_path)
        )
        with recovered:
            assert recovered.journal.batch_count == 1
            replayed = []
            for start in (16, 32):
                replayed.extend(
                    _fingerprints(
                        recovered.results(recovered.submit(list(serving_workload[start : start + 16])))
                    )
                )
            assert replayed == oracle[16:48]

    def test_fsync_stage_failure_takes_the_same_ladder(
        self, tmp_path, build_serving_planner, serving_workload, oracle
    ):
        planner = build_serving_planner()
        config = self._config(planner, tmp_path, journal_on_error="suspend")
        service = RecommendationService(planner, config=config)
        with service:
            service.results(service.submit(list(serving_workload[:8])))
            break_journal_disk(
                service.journal, fail_at_append=0, error=errno.EIO, fail_on="fsync"
            )
            with pytest.warns(RuntimeWarning, match="journal suspended"):
                responses = service.results(service.submit(list(serving_workload[8:16])))
            assert _fingerprints(responses) == oracle[8:16]
            assert service.statistics()["resilience"]["journal_suspended"] is True


# ------------------------------------------------------------ tenant fairness
class TestWorkspaceFairness:
    def _service(self, build_serving_planner) -> WorkspaceService:
        template = build_serving_planner()
        config = dataclasses.replace(
            ServiceConfig.from_planner_config(template.config),
            backend="inline",
            max_pending_batches=4,
        )
        return WorkspaceService(template, config=config)

    def test_pump_round_robins_one_batch_per_workspace(
        self, build_serving_planner, serving_workload
    ):
        with self._service(build_serving_planner) as service:
            alpha = service.create_workspace("alpha")
            beta = service.create_workspace("beta")
            tickets = {
                "alpha": [alpha.submit(list(serving_workload[:4])) for _ in range(2)],
                "beta": [beta.submit(list(serving_workload[:4])) for _ in range(2)],
            }
            assert service.pump() is True
            assert alpha.batches_executed == 1
            assert beta.batches_executed == 1
            assert service.pump() is True
            assert alpha.batches_executed == 2
            assert beta.batches_executed == 2
            assert service.pump() is False
            for workspace, names in ((alpha, "alpha"), (beta, "beta")):
                for ticket in tickets[names]:
                    assert len(workspace.results(ticket)) == 4

    def test_deep_backlog_cannot_starve_another_tenant(
        self, build_serving_planner, serving_workload
    ):
        with self._service(build_serving_planner) as service:
            hog = service.create_workspace("hog")
            small = service.create_workspace("small")
            for _ in range(4):
                hog.submit(list(serving_workload[:4]))
            small.submit(list(serving_workload[4:8]))
            # One fairness sweep: the single-batch tenant finishes its whole
            # backlog while the hog has advanced by exactly one batch.
            assert service.pump() is True
            assert small.batches_executed == 1
            assert hog.batches_executed == 1
            # And the hog's freed slot means its next admission succeeds
            # without waiting for its own backlog to drain fully.
            hog.submit(list(serving_workload[8:12]))
            service.drain_fair()
            assert hog.batches_executed == 5
            assert small.batches_executed == 1

    def test_drain_fair_is_fingerprint_identical_to_sequential_drain(
        self, build_serving_planner, serving_workload, oracle
    ):
        with self._service(build_serving_planner) as service:
            workspaces = [service.create_workspace(name) for name in ("a", "b", "c")]
            tickets = []
            for start in (0, 16, 32):
                for workspace in workspaces:
                    tickets.append(
                        (workspace, workspace.submit(list(serving_workload[start : start + 16])))
                    )
            service.drain_fair()
            for workspace, ticket in tickets:
                assert workspace.batches_executed == 3
            # Isolation contract: every workspace saw the same query stream,
            # so each one's full stream equals the oracle prefix.
            streams = {workspace.name: [] for workspace in workspaces}
            for workspace, ticket in tickets:
                streams[workspace.name].extend(_fingerprints(workspace.results(ticket)))
            for stream in streams.values():
                assert stream == oracle[:48]

    def test_workspace_submit_passes_deadline_through(
        self, build_serving_planner, serving_workload
    ):
        with self._service(build_serving_planner) as service:
            workspace = service.create_workspace("alpha")
            workspace.results(workspace.submit(list(serving_workload[:4])))
            for _ in range(3):
                workspace.submit(list(serving_workload[:4]))
            with pytest.raises(OverloadError):
                workspace.submit(list(serving_workload[:4]), deadline_s=1e-9)
            assert workspace.statistics()["resilience"]["sheds"] == 1
