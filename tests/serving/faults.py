"""Deterministic fault injection for the serving layer (the chaos harness).

:class:`FaultInjectingBackend` subclasses the real :class:`PooledBackend`
and injects faults at its single dispatch choke point, keyed by the global
*dispatch ordinal* (0-based, counted across batches) so a fault schedule is
a plain ``{ordinal: kind}`` dict and a given schedule replays identically.

Fault kinds:

``kill_before``
    SIGKILL the chosen worker, then dispatch to it anyway — models a worker
    that died between scheduling decisions (detected via EOF/liveness).
``kill_after``
    Dispatch normally, then SIGKILL — models a crash mid-execution.
``hang``
    Dispatch normally, then SIGSTOP — the worker is alive but silent (no
    reply, no heartbeat), the case only the deadline supervisor can catch.
``drop``
    Pretend the dispatch succeeded without sending it — models a lost
    protocol message; the idle worker never beats, so the supervisor must
    declare it hung.
``delay``
    Sleep briefly before a normal dispatch — models scheduling jitter; must
    be absorbed without any supervision action.
``desync``
    Replace the truth delta with one that fails adoption, forcing the
    worker's "desync" reply (untrustworthy warm base → retire + re-fork).

The journal helpers at the bottom tear files the way a crash would:
truncating mid-record and corrupting payload bytes in place.
"""

from __future__ import annotations

import os
import signal
import struct
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.serving.service import DEFAULT_TENANT, PooledBackend, _PoolWorker

#: Supervision knobs tight enough for fast tests: a hung worker is declared
#: dead within ~0.6 s and respawn backoff adds at most ~0.1 s per fork.
FAST_SUPERVISION = dict(
    heartbeat_interval_s=0.05,
    rpc_deadline_s=0.6,
    respawn_backoff_s=0.01,
    respawn_backoff_max_s=0.05,
)

FAULT_KINDS = ("kill_before", "kill_after", "hang", "drop", "delay", "desync")


class _PoisonDelta:
    """A truth delta whose adoption always fails (crosses the pipe fine)."""

    def decode_truths(self, network):
        raise RuntimeError("injected fault: poisoned truth delta")


class FaultInjectingBackend(PooledBackend):
    """A :class:`PooledBackend` that injects faults per dispatch ordinal."""

    name = "pooled"  # provenance stays comparable with the real backend

    def __init__(
        self,
        schedule: Optional[Dict[int, str]] = None,
        delay_s: float = 0.05,
        **kwargs,
    ):
        kwargs = {**FAST_SUPERVISION, **kwargs}
        super().__init__(**kwargs)
        self.schedule = dict(schedule or {})
        self.delay_s = delay_s
        self.dispatch_ordinal = 0
        self.injected: List[str] = []

    def _dispatch(self, worker: _PoolWorker, jobs) -> bool:
        fault = self.schedule.get(self.dispatch_ordinal)
        self.dispatch_ordinal += 1
        if fault is None:
            return super()._dispatch(worker, jobs)
        self.injected.append(fault)
        if fault == "kill_before":
            os.kill(worker.pid, signal.SIGKILL)
            worker.process.join(timeout=2.0)
            return super()._dispatch(worker, jobs)
        if fault == "kill_after":
            sent = super()._dispatch(worker, jobs)
            if sent:
                os.kill(worker.pid, signal.SIGKILL)
                worker.process.join(timeout=2.0)
            return sent
        if fault == "hang":
            sent = super()._dispatch(worker, jobs)
            if sent:
                os.kill(worker.pid, signal.SIGSTOP)
            return sent
        if fault == "drop":
            # The parent believes the worker is busy; the worker never hears
            # a thing (and, being idle, never heartbeats).
            return True
        if fault == "delay":
            time.sleep(self.delay_s)
            return super()._dispatch(worker, jobs)
        if fault == "desync":
            # Mirror the real dispatch's tenant threading so the fault lands
            # in the right workspace's stream (and only there).
            tenant = jobs[0].tenant if jobs else DEFAULT_TENANT
            spec = self._dispatch_spec(worker, tenant)
            if not self._send(worker, ("run", tenant, spec, _PoisonDelta(), jobs)):
                return False
            worker.cursors[tenant] = self._planner_for(tenant).truth_cursor()
            return True
        raise AssertionError(f"unknown fault kind {fault!r}")


# --------------------------------------------------------- journal file chaos
_FRAME = struct.Struct("<III")
_JOURNAL_MAGIC_LEN = 6  # b"RPTJ1\n"


def journal_segment(journal_dir) -> Path:
    """The newest delta segment file in a journal directory."""
    segments = sorted(Path(journal_dir).glob("journal-*.log"))
    assert segments, f"no journal segment in {journal_dir}"
    return segments[-1]


def tear_tail(journal_dir, keep_bytes_of_last_record: int = 3) -> None:
    """Truncate the last record mid-payload, as a crash during append would."""
    segment = journal_segment(journal_dir)
    data = segment.read_bytes()
    offset = _JOURNAL_MAGIC_LEN
    last_start = None
    while offset + _FRAME.size <= len(data):
        length = _FRAME.unpack_from(data, offset)[0]
        last_start = offset
        offset += _FRAME.size + length
    assert last_start is not None, "journal has no records to tear"
    segment.write_bytes(data[: last_start + _FRAME.size + keep_bytes_of_last_record])


def corrupt_tail(journal_dir) -> None:
    """Flip a byte inside the last record's payload (CRC must catch it)."""
    segment = journal_segment(journal_dir)
    data = bytearray(segment.read_bytes())
    offset = _JOURNAL_MAGIC_LEN
    last_payload_at = None
    while offset + _FRAME.size <= len(data):
        length = _FRAME.unpack_from(data, offset)[0]
        last_payload_at = offset + _FRAME.size
        offset += _FRAME.size + length
    assert last_payload_at is not None and last_payload_at < len(data)
    data[last_payload_at] ^= 0xFF
    segment.write_bytes(bytes(data))


def append_garbage(journal_dir, blob: bytes = b"\x07garbage\x07" * 3) -> None:
    """Append trailing junk (a torn frame header) to the segment."""
    with open(journal_segment(journal_dir), "ab") as handle:
        handle.write(blob)
