"""Deterministic fault injection for the serving layer (the chaos harness).

:class:`FaultInjectingBackend` subclasses the real :class:`PooledBackend`
and injects faults at its single dispatch choke point, keyed by the global
*dispatch ordinal* (0-based, counted across batches) so a fault schedule is
a plain ``{ordinal: kind}`` dict and a given schedule replays identically.

Fault kinds:

``kill_before``
    SIGKILL the chosen worker, then dispatch to it anyway — models a worker
    that died between scheduling decisions (detected via EOF/liveness).
``kill_after``
    Dispatch normally, then SIGKILL — models a crash mid-execution.
``hang``
    Dispatch normally, then SIGSTOP — the worker is alive but silent (no
    reply, no heartbeat), the case only the deadline supervisor can catch.
``drop``
    Pretend the dispatch succeeded without sending it — models a lost
    protocol message; the idle worker never beats, so the supervisor must
    declare it hung.
``delay``
    Sleep briefly before a normal dispatch — models scheduling jitter; must
    be absorbed without any supervision action.
``desync``
    Replace the truth delta with one that fails adoption, forcing the
    worker's "desync" reply (untrustworthy warm base → retire + re-fork).
``slow``
    Dispatch normally, then run the worker on a SIGSTOP/SIGCONT duty cycle:
    mostly stopped, briefly running, ending in a permanent SIGCONT.  Unlike
    ``hang`` the worker keeps heartbeating during its run slices, so the
    silence supervisor never fires — this is the straggler only hedged
    execution (``hedge_after_s``) can absorb, and without hedging it is a
    pure stall the batch must ride out.

The journal helpers at the bottom tear files the way a crash would
(truncating mid-record, corrupting payload bytes in place), and
:func:`break_journal_disk` models a *dying disk*: the journal's open segment
handle starts raising ``ENOSPC``/``EIO`` at a chosen append ordinal.
"""

from __future__ import annotations

import errno
import os
import signal
import struct
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.serving.service import DEFAULT_TENANT, PooledBackend, _PoolWorker

#: Supervision knobs tight enough for fast tests: a hung worker is declared
#: dead within ~0.6 s and respawn backoff adds at most ~0.1 s per fork.
FAST_SUPERVISION = dict(
    heartbeat_interval_s=0.05,
    rpc_deadline_s=0.6,
    respawn_backoff_s=0.01,
    respawn_backoff_max_s=0.05,
)

FAULT_KINDS = ("kill_before", "kill_after", "hang", "drop", "delay", "desync", "slow")


class _PoisonDelta:
    """A truth delta whose adoption always fails (crosses the pipe fine)."""

    def decode_truths(self, network):
        raise RuntimeError("injected fault: poisoned truth delta")


class FaultInjectingBackend(PooledBackend):
    """A :class:`PooledBackend` that injects faults per dispatch ordinal."""

    name = "pooled"  # provenance stays comparable with the real backend

    def __init__(
        self,
        schedule: Optional[Dict[int, str]] = None,
        delay_s: float = 0.05,
        slow_stop_s: float = 0.18,
        slow_run_s: float = 0.04,
        slow_total_s: float = 1.2,
        **kwargs,
    ):
        kwargs = {**FAST_SUPERVISION, **kwargs}
        super().__init__(**kwargs)
        self.schedule = dict(schedule or {})
        self.delay_s = delay_s
        # ``slow`` duty cycle: stopped slices must stay well under
        # rpc_deadline_s so each run slice's heartbeat renews the silence
        # deadline — the worker crawls, it never looks hung.
        self.slow_stop_s = slow_stop_s
        self.slow_run_s = slow_run_s
        self.slow_total_s = slow_total_s
        self.dispatch_ordinal = 0
        self.injected: List[str] = []
        self._slow_threads: List[threading.Thread] = []

    def _dispatch(self, worker: _PoolWorker, jobs) -> bool:
        fault = self.schedule.get(self.dispatch_ordinal)
        self.dispatch_ordinal += 1
        if fault is None:
            return super()._dispatch(worker, jobs)
        self.injected.append(fault)
        if fault == "kill_before":
            os.kill(worker.pid, signal.SIGKILL)
            worker.process.join(timeout=2.0)
            return super()._dispatch(worker, jobs)
        if fault == "kill_after":
            sent = super()._dispatch(worker, jobs)
            if sent:
                os.kill(worker.pid, signal.SIGKILL)
                worker.process.join(timeout=2.0)
            return sent
        if fault == "hang":
            sent = super()._dispatch(worker, jobs)
            if sent:
                os.kill(worker.pid, signal.SIGSTOP)
            return sent
        if fault == "drop":
            # The parent believes the worker is busy; the worker never hears
            # a thing (and, being idle, never heartbeats).
            return True
        if fault == "delay":
            time.sleep(self.delay_s)
            return super()._dispatch(worker, jobs)
        if fault == "desync":
            # Mirror the real dispatch's tenant threading so the fault lands
            # in the right workspace's stream (and only there).
            tenant = jobs[0].tenant if jobs else DEFAULT_TENANT
            spec = self._dispatch_spec(worker, tenant)
            if not self._send(worker, ("run", tenant, spec, _PoisonDelta(), jobs)):
                return False
            worker.cursors[tenant] = self._planner_for(tenant).truth_cursor()
            return True
        if fault == "slow":
            sent = super()._dispatch(worker, jobs)
            if sent:
                self._start_duty_cycle(worker.pid)
            return sent
        raise AssertionError(f"unknown fault kind {fault!r}")

    def _start_duty_cycle(self, pid: int) -> None:
        """SIGSTOP now, then CONT/STOP slices until ``slow_total_s`` elapses.

        Ends in a permanent SIGCONT so the worker always finishes its shard
        eventually — the fault models *slowness*, never a permanent wedge.
        Every signal guards ``ProcessLookupError``: supervision (or a lost
        hedge race past its lame deadline) may legitimately SIGKILL the
        crawler mid-cycle.
        """
        try:
            os.kill(pid, signal.SIGSTOP)
        except ProcessLookupError:
            return

        def duty_cycle() -> None:
            deadline = time.monotonic() + self.slow_total_s
            try:
                while time.monotonic() < deadline:
                    time.sleep(self.slow_stop_s)
                    os.kill(pid, signal.SIGCONT)
                    time.sleep(self.slow_run_s)
                    if time.monotonic() >= deadline:
                        return
                    os.kill(pid, signal.SIGSTOP)
            except ProcessLookupError:
                return
            finally:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass

        thread = threading.Thread(target=duty_cycle, daemon=True)
        thread.start()
        self._slow_threads.append(thread)

    def close(self) -> None:
        super().close()
        for thread in self._slow_threads:
            thread.join(timeout=self.slow_total_s + 1.0)
        self._slow_threads.clear()


# --------------------------------------------------------- journal file chaos
_FRAME = struct.Struct("<III")
_JOURNAL_MAGIC_LEN = 6  # b"RPTJ1\n"


def journal_segment(journal_dir) -> Path:
    """The newest delta segment file in a journal directory."""
    segments = sorted(Path(journal_dir).glob("journal-*.log"))
    assert segments, f"no journal segment in {journal_dir}"
    return segments[-1]


def tear_tail(journal_dir, keep_bytes_of_last_record: int = 3) -> None:
    """Truncate the last record mid-payload, as a crash during append would."""
    segment = journal_segment(journal_dir)
    data = segment.read_bytes()
    offset = _JOURNAL_MAGIC_LEN
    last_start = None
    while offset + _FRAME.size <= len(data):
        length = _FRAME.unpack_from(data, offset)[0]
        last_start = offset
        offset += _FRAME.size + length
    assert last_start is not None, "journal has no records to tear"
    segment.write_bytes(data[: last_start + _FRAME.size + keep_bytes_of_last_record])


def corrupt_tail(journal_dir) -> None:
    """Flip a byte inside the last record's payload (CRC must catch it)."""
    segment = journal_segment(journal_dir)
    data = bytearray(segment.read_bytes())
    offset = _JOURNAL_MAGIC_LEN
    last_payload_at = None
    while offset + _FRAME.size <= len(data):
        length = _FRAME.unpack_from(data, offset)[0]
        last_payload_at = offset + _FRAME.size
        offset += _FRAME.size + length
    assert last_payload_at is not None and last_payload_at < len(data)
    data[last_payload_at] ^= 0xFF
    segment.write_bytes(bytes(data))


def append_garbage(journal_dir, blob: bytes = b"\x07garbage\x07" * 3) -> None:
    """Append trailing junk (a torn frame header) to the segment."""
    with open(journal_segment(journal_dir), "ab") as handle:
        handle.write(blob)


# ------------------------------------------------------------ dying-disk chaos
class FlakyDiskHandle:
    """Proxy a journal's open segment handle so the disk "dies" on cue.

    Append ordinals are counted by ``flush()`` calls (the journal flushes
    exactly once per append), so ``fail_at_append=N`` means appends
    ``0..N-1`` land durably and append ``N`` onward raises the chosen
    ``OSError`` — at the ``write`` (ENOSPC mid-record), ``flush`` (buffered
    bytes refused), or ``fsync`` (durability barrier refused) stage.
    """

    FAIL_STAGES = ("write", "flush", "fsync")

    def __init__(self, handle, fail_at_append: int = 0, error: int = errno.ENOSPC,
                 fail_on: str = "write"):
        assert fail_on in self.FAIL_STAGES, fail_on
        self._handle = handle
        self._fail_at = fail_at_append
        self._errno = error
        self._fail_on = fail_on
        self.appends_seen = 0
        self.failures = 0

    def _maybe_fail(self, stage: str) -> None:
        if stage == self._fail_on and self.appends_seen >= self._fail_at:
            self.failures += 1
            raise OSError(self._errno, os.strerror(self._errno))

    def write(self, data):
        self._maybe_fail("write")
        return self._handle.write(data)

    def flush(self):
        self._maybe_fail("flush")
        result = self._handle.flush()
        self.appends_seen += 1
        return result

    def fileno(self) -> int:
        # The journal only asks for the fd to fsync it, so raising here is
        # the same OSError surface an fsync failure presents to append().
        self._maybe_fail("fsync")
        return self._handle.fileno()

    def __getattr__(self, attr):
        return getattr(self._handle, attr)


def break_journal_disk(
    journal,
    fail_at_append: int = 0,
    error: int = errno.EIO,
    fail_on: str = "write",
) -> FlakyDiskHandle:
    """Swap ``journal``'s segment handle for a :class:`FlakyDiskHandle`.

    Returns the proxy so the test can assert how many appends landed before
    the injected fault fired.
    """
    flaky = FlakyDiskHandle(
        journal._handle, fail_at_append=fail_at_append, error=error, fail_on=fail_on
    )
    journal._handle = flaky
    return flaky
