"""Cross-batch pipelining: dependency DAG + windowed execution parity.

The acceptance gate of the rolling-window scheduler: for any
``pipeline_window``, pool size and interleaving, windowed execution is
fingerprint-identical to the sequential oracle — the DAG dispatcher may
only change *timing*, never observable state.  Degenerate windows are
pinned explicitly: window size 1 never leaves the barrier path, and a
fully-dependent stream (every batch touching the same od cells)
serialises batch by batch.  Fault handling rides along: a mid-window
failure returns the merged prefix and keeps later tickets redeemable,
and the chaos schedule (crash / hang / desync mid-window) must neither
stall the DAG nor change a single fingerprint.
"""

import multiprocessing
from types import SimpleNamespace

import pytest

from repro.config import ServiceConfig
from repro.exceptions import ServingError
from repro.serving import (
    PooledBackend,
    RecommendationService,
    recommendation_fingerprint,
)
from repro.serving.pipeline import batch_dependencies, window_parallelism

from .faults import FaultInjectingBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")


def _service(planner, pool_size=2, **overrides):
    config = ServiceConfig.from_planner_config(
        planner.config, backend="pooled", pool_size=pool_size, **overrides
    )
    return RecommendationService(planner, config)


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _chunks(workload, count):
    size = (len(workload) + count - 1) // count
    return [workload[start:start + size] for start in range(0, len(workload), size)]


def _plan(*cells_per_shard):
    """A synthetic shard plan: only the fields batch_dependencies reads."""
    return SimpleNamespace(
        shards=[
            SimpleNamespace(destination_cells=frozenset(cells)) for cells in cells_per_shard
        ]
    )


class TestBatchDependencies:
    """Unit coverage of the rolling cell -> last-writing-batch analysis."""

    def test_disjoint_batches_are_independent(self):
        plans = [_plan([(0, 0)]), _plan([(5, 5)]), _plan([(9, 9)])]
        deps = batch_dependencies(plans)
        assert deps == [[-1], [-1], [-1]]
        assert window_parallelism(deps) == {
            "independent_shards": 3,
            "cross_batch_edges": 0,
            "serialized_batches": 0,
        }

    def test_shared_cell_chains_to_previous_batch(self):
        plans = [_plan([(0, 0)]), _plan([(0, 0)]), _plan([(0, 0)])]
        deps = batch_dependencies(plans)
        assert deps == [[-1], [0], [1]]
        assert window_parallelism(deps)["serialized_batches"] == 2

    def test_dependency_is_latest_touching_batch(self):
        # Batch 2 shares a cell with batch 0 only: its dep skips batch 1.
        plans = [_plan([(0, 0)]), _plan([(5, 5)]), _plan([(0, 0), (7, 7)])]
        assert batch_dependencies(plans) == [[-1], [-1], [0]]

    def test_same_batch_shards_never_depend_on_each_other(self):
        # Two shards of one batch sharing a cell: writes are recorded only
        # after the batch's own deps are computed (siblings are already
        # interaction-closed by the shard plan).
        plans = [_plan([(0, 0)], [(0, 0)]), _plan([(0, 0)])]
        assert batch_dependencies(plans) == [[-1, -1], [0]]

    def test_per_shard_granularity_within_a_batch(self):
        # Only the shard that actually touches the hot cell waits.
        plans = [_plan([(0, 0)]), _plan([(0, 0)], [(8, 8)])]
        deps = batch_dependencies(plans)
        assert deps == [[-1], [0, -1]]
        assert window_parallelism(deps) == {
            "independent_shards": 2,
            "cross_batch_edges": 1,
            "serialized_batches": 0,
        }

    def test_empty_plans(self):
        assert batch_dependencies([]) == []
        assert batch_dependencies([_plan(), _plan([(1, 1)])]) == [[], [-1]]
        assert window_parallelism([[], [-1]])["independent_shards"] == 1


class TestDegenerateWindows:
    """Window size 1 is the barrier scheduler, byte for byte."""

    def test_window_one_never_calls_execute_window(
        self, build_serving_planner, serving_workload, sequential_oracle, monkeypatch
    ):
        planner = build_serving_planner()

        def forbidden(self, batches):  # pragma: no cover - the assertion
            raise AssertionError("pipeline_window=1 must stay on the barrier path")

        monkeypatch.setattr(PooledBackend, "execute_window", forbidden)
        with _service(planner, pool_size=2, use_processes=False) as service:
            tickets = [service.submit(chunk) for chunk in _chunks(serving_workload, 4)]
            responses = [r for t in tickets for r in service.results(t)]
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    def test_single_pending_batch_skips_the_window_path(
        self, build_serving_planner, serving_workload
    ):
        """Even with a window configured, a lone pending batch runs the
        plain execute_batch path (nothing to overlap with)."""
        planner = build_serving_planner()
        with _service(planner, pool_size=2, use_processes=False, pipeline_window=4) as service:
            responses = service.results(service.submit(serving_workload[:24]))
        assert len(responses) == 24
        assert service.statistics()["pipeline"]["windows"] == 0

    def test_fully_dependent_stream_serializes(
        self, build_serving_planner, serving_workload
    ):
        """Every batch touching the same od cells forces barrier order:
        no dispatch may overlap an unmerged batch, and repeats are served
        from the truths the earlier batches just recorded."""
        planner = build_serving_planner()
        repeated = serving_workload[:12]
        plans = [planner.shard_plan(repeated, 2) for _ in range(4)]
        deps = batch_dependencies(plans)
        # Identical batches: every shard waits on the immediately
        # preceding batch, the degenerate fully-serialised window.
        assert all(dep == batch_index - 1 for batch_index, batch_deps
                   in enumerate(deps) if batch_index for dep in batch_deps)
        assert window_parallelism(deps)["serialized_batches"] == len(plans) - 1

        oracle_planner = build_serving_planner()
        oracle = [
            recommendation_fingerprint(result)
            for _ in range(4)
            for result in oracle_planner.recommend_batch(list(repeated))
        ]
        with _service(planner, pool_size=2, use_processes=False, pipeline_window=4) as service:
            tickets = [service.submit(list(repeated)) for _ in range(4)]
            responses = [r for t in tickets for r in service.results(t)]
        assert _fingerprints(responses) == oracle
        # The first batch computes, the repeats reuse its truths.
        assert all(r.method == "truth_reuse" for r in responses[len(repeated):])


class TestWindowedContract:
    """Fingerprint parity for real windows across pools and interleavings."""

    @pytest.mark.parametrize("pipeline_window", [2, 4])
    @pytest.mark.parametrize("pool_size", [1, 2])
    def test_inprocess_windows_match_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle,
        pool_size, pipeline_window,
    ):
        planner = build_serving_planner()
        with _service(
            planner, pool_size=pool_size, use_processes=False,
            pipeline_window=pipeline_window,
        ) as service:
            tickets = [service.submit(chunk) for chunk in _chunks(serving_workload, 5)]
            collected = {t.ticket_id: service.results(t) for t in reversed(tickets)}
        responses = [r for t in tickets for r in collected[t.ticket_id]]
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    @needs_fork
    @pytest.mark.parametrize("pipeline_window", [2, 4])
    def test_pooled_windows_match_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle, pipeline_window
    ):
        planner = build_serving_planner()
        with _service(planner, pool_size=2, pipeline_window=pipeline_window) as service:
            tickets = [service.submit(chunk) for chunk in _chunks(serving_workload, 5)]
            collected = {t.ticket_id: service.results(t) for t in reversed(tickets)}
            stats = service.statistics()
        responses = [r for t in tickets for r in collected[t.ticket_id]]
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]
        assert stats["pipeline"]["windows"] >= 1

    @needs_fork
    def test_truth_store_parity_under_windows(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        with _service(planner, pool_size=2, pipeline_window=3) as service:
            for ticket in [service.submit(chunk) for chunk in _chunks(serving_workload, 6)]:
                service.results(ticket)
        merged = [
            (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
            for t in planner.truths.all()
        ]
        assert merged == sequential_oracle["plain"]["truths"]

    @needs_fork
    def test_stream_prefetch_engages_windows(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        with _service(planner, pool_size=2, pipeline_window=4) as service:
            responses = list(service.stream(serving_workload, batch_size=20))
            stats = service.statistics()
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        # The prefetch kept enough batches outstanding for real windows.
        assert stats["pipeline"]["windows"] >= 1

    @needs_fork
    def test_dominant_stream_matches_sequential(
        self, build_serving_planner, dominant_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        with _service(planner, pool_size=2, pipeline_window=3) as service:
            responses = list(service.stream(dominant_workload, batch_size=40))
        assert _fingerprints(responses) == sequential_oracle["dominant"]["fingerprints"]

    @needs_fork
    def test_independent_batches_overlap(self, build_serving_planner, serving_workload):
        """Two closure-disjoint batches genuinely overlap: the second
        batch's shard is dispatched while the first is still unmerged."""
        planner = build_serving_planner()
        survey = planner.shard_plan(serving_workload, 16)
        # Two single-component shards with disjoint expanded closures:
        # re-planned alone each stays a single shard, so with pool size 2
        # the DAG dispatcher must put batch 1 in flight while batch 0 is.
        picked = []
        taken_cells = frozenset()
        for shard in survey.shards:
            if shard.components != 1 or taken_cells & shard.destination_cells:
                continue
            picked.append(shard)
            taken_cells = taken_cells | shard.destination_cells
            if len(picked) == 2:
                break
        assert len(picked) == 2, "workload lacks two disjoint single-component shards"
        batches = [[serving_workload[i] for i in shard.indices] for shard in picked]
        assert batch_dependencies(
            [planner.shard_plan(batch, 2) for batch in batches]
        ) == [[-1], [-1]]

        oracle_planner = build_serving_planner()
        oracle = [
            recommendation_fingerprint(result)
            for batch in batches
            for result in oracle_planner.recommend_batch(list(batch))
        ]
        with _service(planner, pool_size=2, pipeline_window=2) as service:
            tickets = [service.submit(batch) for batch in batches]
            responses = [r for t in tickets for r in service.results(t)]
            stats = service.statistics()
        assert _fingerprints(responses) == oracle
        assert stats["pipeline"]["windows"] == 1
        assert stats["pipeline"]["overlapped_dispatches"] >= 1


class TestWindowFaults:
    """Failures inside a window: prefix semantics + chaos parity."""

    def test_mid_window_failure_keeps_later_tickets_redeemable(
        self, build_serving_planner, serving_workload
    ):
        class FlakyWindowBackend(PooledBackend):
            def __init__(self, fail_on_calls):
                super().__init__(pool_size=2, use_processes=False)
                self.fail_on_calls = set(fail_on_calls)
                self.calls = 0

            def execute_batch(self, queries, share_candidate_generation=True, plan=None):
                self.calls += 1
                if self.calls in self.fail_on_calls:
                    raise ServingError("transient shard failure")
                return super().execute_batch(queries, share_candidate_generation, plan)

        planner = build_serving_planner()
        oracle_planner = build_serving_planner()
        batches = _chunks(serving_workload[:72], 3)
        oracle = [
            recommendation_fingerprint(result)
            for batch in batches
            for result in oracle_planner.recommend_batch(list(batch))
        ]
        # Call 2 fails mid-window (prefix of one batch returned); call 3 is
        # the retried batch heading the next window, so it raises.
        backend = FlakyWindowBackend(fail_on_calls={2, 3})
        config = ServiceConfig.from_planner_config(
            planner.config, backend="pooled", pipeline_window=4
        )
        with RecommendationService(planner, config=config, backend=backend) as service:
            tickets = [service.submit(batch) for batch in batches]
            # The window executes batch 1, fails on batch 2: the prefix is
            # finalised and ticket 1 redeems fine.
            first = service.results(tickets[0])
            # Batch 2 now heads the window and its failure surfaces here —
            # deterministically, on the caller redeeming it.
            with pytest.raises(ServingError):
                service.results(tickets[1])
            # Both tickets stayed pending and redeem after the fault clears.
            second = service.results(tickets[1])
            third = service.results(tickets[2])
        assert _fingerprints(first + second + third) == oracle
        assert planner.statistics.as_dict() == oracle_planner.statistics.as_dict()

    @needs_fork
    @pytest.mark.chaos
    def test_chaos_schedule_under_pipelining(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """Crash, hang and desync faults mid-window must neither stall the
        DAG (the hung worker is killed, its shard resubmitted) nor change
        any fingerprint."""
        planner = build_serving_planner()
        backend = FaultInjectingBackend(
            schedule={1: "kill_after", 3: "hang", 5: "desync", 8: "drop"}
        )
        config = ServiceConfig.from_planner_config(
            planner.config, backend="pooled", pool_size=2, pipeline_window=3
        )
        with RecommendationService(planner, config=config, backend=backend) as service:
            tickets = [service.submit(chunk) for chunk in _chunks(serving_workload, 5)]
            responses = [r for t in tickets for r in service.results(t)]
            assert len(backend.injected) >= 3
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]


@needs_fork
class TestWindowJournal:
    """Per-batch journaling stays exact when batches merge inside windows."""

    def test_journal_records_per_batch_spans(
        self, build_serving_planner, serving_workload, tmp_path
    ):
        planner = build_serving_planner()
        chunks = _chunks(serving_workload, 6)
        with _service(
            planner, pool_size=2, pipeline_window=3,
            journal_path=str(tmp_path / "journal"), journal_fsync=False,
            snapshot_every_truths=16,
        ) as service:
            for ticket in [service.submit(chunk) for chunk in chunks]:
                service.results(ticket)
            journal_stats = service.statistics()["journal"]
        # One record per executed batch, even though several batches merged
        # inside each window call.
        assert journal_stats["batches"] == len(chunks)
        # The tight snapshot cadence forced mid-stream compactions; the
        # deferred-snapshot rule kept them consistent (checked by recovery).
        assert journal_stats["snapshots_written"] >= 1

        recovered = build_serving_planner()
        with RecommendationService.recover(recovered, tmp_path / "journal") as service:
            assert service.journal.batch_count == len(chunks)
        canonical = lambda store: [  # noqa: E731 - tiny local projection
            (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
            for t in store.all()
        ]
        assert canonical(recovered.truths) == canonical(planner.truths)
