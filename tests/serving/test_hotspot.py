"""Intra-component pipeline (hotspot splitting) tests.

Covers the :func:`~repro.serving.shards.split_oversized` stage and the
sub-shard hand-off chain end to end: structural plan invariants (coverage,
size bound, topological ids, hand-off edges), visibility soundness (two
sub-shards with no hand-off relation share no linked query pair), the
diagnostics surfaced through ``service.plan()`` / ``service.statistics()``,
and — on the forked pool — mid-chain fault recovery: killing or hanging a
worker that holds a sub-shard whose delta downstream slices await must
reproduce the sequential fingerprints exactly.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.config import ServiceConfig
from repro.serving import PooledBackend, RecommendationService, recommendation_fingerprint
from repro.serving.shards import ChainState, handoff_id_base, split_oversized

from .faults import FaultInjectingBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")

#: Tight enough that the 30%-dominant workload's biggest component must chain.
FRACTION = 0.1


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _truth_tuples(planner):
    return [
        (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
        for t in planner.truths.all()
    ]


@pytest.fixture()
def split_case(build_serving_planner, dominant_workload):
    """One planner + raw plan + split plan over the dominant workload."""
    planner = build_serving_planner()
    queries = list(dominant_workload)
    raw = planner.shard_plan(queries, 4)
    split = split_oversized(planner, raw, queries, FRACTION)
    return planner, queries, raw, split


class TestSplitPlan:
    def test_noop_when_fraction_permits(self, build_serving_planner, dominant_workload):
        planner = build_serving_planner()
        queries = list(dominant_workload)
        raw = planner.shard_plan(queries, 4)
        assert split_oversized(planner, raw, queries, 1.0) is raw
        # A bound every shard already satisfies returns the plan untouched.
        loose = max(len(shard) for shard in raw.shards) / raw.num_queries
        assert split_oversized(planner, raw, queries, loose) is raw

    def test_split_structural_invariants(self, split_case):
        _, _, raw, split = split_case
        max_size = max(1, int(FRACTION * raw.num_queries))
        assert len(split.shards) > len(raw.shards)
        # Every query exactly once, ids dense in emission order.
        covered = sorted(index for shard in split.shards for index in shard.indices)
        assert covered == list(range(raw.num_queries))
        assert sorted(shard.shard_id for shard in split.shards) == list(
            range(len(split.shards))
        )
        for shard in split.shards:
            assert len(shard) <= max_size
            assert list(shard.indices) == sorted(shard.indices)
            # Shard-id order is a topological order of the hand-off DAG.
            assert all(pred < shard.shard_id for pred in shard.predecessors)
            assert all(src < shard.shard_id for src in shard.handoff_from)
            # Completion gates are a subset of the adopted hand-off set.
            assert set(shard.predecessors) <= set(shard.handoff_from)
        assert split.largest_shard_fraction() <= FRACTION + 1e-9
        assert split.chain_depth() >= 2  # the dominant component truly chains

    def test_split_is_deterministic(self, split_case):
        planner, queries, raw, split = split_case
        again = split_oversized(planner, raw, queries, FRACTION)
        assert [
            (s.shard_id, s.indices, s.predecessors, s.handoff_from) for s in split.shards
        ] == [(s.shard_id, s.indices, s.predecessors, s.handoff_from) for s in again.shards]

    def test_unrelated_sub_shards_share_no_linked_pair(self, split_case):
        """Soundness of omitted hand-offs: if sub-shard B never adopts from
        sub-shard A (in either direction), then no query pair across them is
        within interaction reach — A's truths are invisible to B anyway."""
        planner, queries, raw, split = split_case
        reach = raw.cell_reach
        cell_of = {}
        for key, members in planner.od_cell_groups(queries).items():
            for index in members:
                cell_of[index] = key
        shards = sorted(split.shards, key=lambda s: s.shard_id)
        assert any(shard.handoff_from for shard in shards)  # real consumers exist
        for a in shards:
            for b in shards:
                if a.shard_id >= b.shard_id:
                    continue
                if a.shard_id in b.handoff_from:
                    continue
                for i in a.indices:
                    for j in b.indices:
                        linked = all(
                            abs(cell_of[i][axis] - cell_of[j][axis]) <= reach
                            for axis in range(4)
                        )
                        # Linked pairs in the same component must be related
                        # through the hand-off chain; unrelated sub-shards of
                        # different components are unlinked by plan
                        # construction.
                        assert not linked, (
                            f"sub-shards {a.shard_id}->{b.shard_id} are unrelated "
                            f"but queries {i},{j} interact"
                        )

    def test_chain_state_retags_and_memoises(self, split_case):
        planner, queries, _, split = split_case
        consumer = next(s for s in split.shards if s.handoff_from)
        from repro.serving.shards import ShardJob, execute_shard_job

        jobs = {
            shard.shard_id: ShardJob(
                shard_id=shard.shard_id,
                indices=shard.indices,
                destination_cells=shard.destination_cells,
                queries=[queries[i] for i in shard.indices],
                predecessors=shard.predecessors,
                handoff_from=shard.handoff_from,
            )
            for shard in split.shards
        }
        base = handoff_id_base()
        chain = ChainState(list(jobs.values()), base)
        job = jobs[consumer.shard_id]
        assert not chain.ready(job)
        for src in sorted(set(job.handoff_from)):
            chain.record(execute_shard_job(planner, jobs[src]))
        assert chain.ready(job)
        payload = chain.payload(job)
        assert payload is chain.payload(job)  # memoised for resubmission
        ids = [truth.truth_id for truth in payload]
        assert ids == sorted(ids)
        assert all(truth_id >= base for truth_id in ids)


class TestHotspotDiagnostics:
    def test_service_plan_reports_split(self, build_serving_planner, dominant_workload):
        planner = build_serving_planner()
        backend = PooledBackend(
            pool_size=4, use_processes=False, max_shard_fraction=FRACTION
        )
        with RecommendationService(planner, backend=backend) as service:
            plan = service.plan(list(dominant_workload))
            assert plan.largest_shard_fraction() <= FRACTION + 1e-9
            assert plan.chain_depth() >= 2
            assert any(shard.handoff_from for shard in plan.shards)

    def test_statistics_surface_skew_and_chain_depth(
        self, build_serving_planner, dominant_workload
    ):
        planner = build_serving_planner()
        backend = PooledBackend(
            pool_size=4, use_processes=False, max_shard_fraction=FRACTION
        )
        with RecommendationService(planner, backend=backend) as service:
            service.results(service.submit(list(dominant_workload)))
            sharding = service.statistics()["sharding"]
        assert sharding["largest_shard_fraction_before"] > FRACTION
        assert sharding["largest_shard_fraction_after"] <= FRACTION + 1e-9
        assert sharding["chain_depth"] >= 2
        assert sharding["max_chain_depth"] >= sharding["chain_depth"]
        assert sharding["sub_shards_total"] > 0

    def test_inline_backend_reports_neutral_sharding(
        self, build_serving_planner, serving_workload
    ):
        planner = build_serving_planner()
        config = ServiceConfig.from_planner_config(planner.config, backend="inline")
        with RecommendationService(planner, config=config) as service:
            service.results(service.submit(list(serving_workload[:8])))
            sharding = service.statistics()["sharding"]
        assert sharding["sub_shards_total"] == 0
        assert sharding["chain_depth"] == 0

    def test_config_validates_fraction(self, build_serving_planner):
        planner = build_serving_planner()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(Exception):
                ServiceConfig.from_planner_config(
                    planner.config, max_shard_fraction=bad
                ).validate()
        ServiceConfig.from_planner_config(planner.config, max_shard_fraction=0.5).validate()


@needs_fork
@pytest.mark.chaos
class TestMidChainFaults:
    """Kill/hang a worker holding a sub-shard that downstream slices await."""

    def _run(self, build_serving_planner, workload, schedule, **backend_kwargs):
        planner = build_serving_planner()
        backend = FaultInjectingBackend(
            schedule=schedule, pool_size=2, max_shard_fraction=FRACTION, **backend_kwargs
        )
        with RecommendationService(planner, backend=backend) as service:
            responses = service.results(service.submit(list(workload)))
            stats = service.statistics()
        return planner, backend, _fingerprints(responses), stats

    @pytest.mark.parametrize("kind", ["kill_before", "kill_after", "hang", "desync"])
    def test_mid_chain_fault_reproduces_oracle(
        self, build_serving_planner, dominant_workload, sequential_oracle, kind
    ):
        # Ordinals 2-4 land on sub-shard dispatches of the dominant chain
        # (its head slices dispatch first, so these hit producers whose
        # deltas downstream slices are already waiting for).
        planner, backend, fingerprints, stats = self._run(
            build_serving_planner, dominant_workload, {2: kind, 4: kind}
        )
        assert backend.injected, "fault schedule never fired"
        assert fingerprints == sequential_oracle["dominant"]["fingerprints"]
        assert _truth_tuples(planner) == sequential_oracle["dominant"]["truths"]
        assert planner.statistics.as_dict() == sequential_oracle["dominant"]["statistics"]
        # kill_before can surface as a failed dispatch + respawn rather than a
        # resubmission (the job never reached the dead worker); either way
        # supervision must have intervened.
        supervision = stats["supervision"]
        assert supervision["resubmitted_shards"] + supervision["respawns"] >= 1

    def test_whole_pool_loss_degrades_chain_inline(
        self, build_serving_planner, dominant_workload, sequential_oracle
    ):
        """Both workers die mid-chain with the breaker closed: the remaining
        sub-shards (hand-offs included) degrade to in-process execution."""
        planner, backend, fingerprints, stats = self._run(
            build_serving_planner,
            dominant_workload,
            {0: "kill_after", 1: "kill_after", 2: "kill_after", 3: "kill_after"},
            respawn_workers=False,
            max_respawns_per_batch=0,
        )
        assert fingerprints == sequential_oracle["dominant"]["fingerprints"]
        assert _truth_tuples(planner) == sequential_oracle["dominant"]["truths"]
        assert stats["supervision"]["degraded_batches"] >= 1

    def test_windowed_stream_with_mid_chain_hang(
        self, build_serving_planner, dominant_workload, sequential_oracle
    ):
        """The window dispatcher recovers a hung chain producer too."""
        planner = build_serving_planner()
        backend = FaultInjectingBackend(
            schedule={3: "hang"}, pool_size=2, max_shard_fraction=FRACTION
        )
        config = ServiceConfig.from_planner_config(
            planner.config, backend="pooled", pool_size=2, pipeline_window=3
        )
        with RecommendationService(planner, config=config, backend=backend) as service:
            produced = []
            for start in (0, 80):
                ticket = service.submit(list(dominant_workload[start : start + 80]))
                produced.extend(_fingerprints(service.results(ticket)))
        assert produced == sequential_oracle["dominant"]["fingerprints"]
        assert _truth_tuples(planner) == sequential_oracle["dominant"]["truths"]
