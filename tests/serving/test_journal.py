"""Truth-journal unit and service-integration coverage.

The unit half drives :class:`TruthJournal` directly against real truths
(recorded by a planner run) and the torn/corrupt-file helpers from
``faults.py``; the integration half attaches journals to services and proves
the recovery contract at the fingerprint level.
"""

from __future__ import annotations

import dataclasses
import errno
import os

import pytest

from repro.config import ServiceConfig
from repro.core.truth import TruthDatabase
from repro.exceptions import JournalError
from repro.serving import RecommendationService, TruthJournal, recommendation_fingerprint

from .faults import (
    append_garbage,
    break_journal_disk,
    corrupt_tail,
    journal_segment,
    tear_tail,
)


@pytest.fixture(scope="module")
def recorded_truths(build_serving_planner, serving_workload):
    """A planner whose truth store holds real recorded truths."""
    planner = build_serving_planner()
    planner.recommend_batch(list(serving_workload[:60]))
    truths = planner.truths.all()
    assert len(truths) >= 4, "workload prefix recorded too few truths for the tests"
    return planner, truths


def _empty_store(planner) -> TruthDatabase:
    return TruthDatabase(planner.truths.network, planner.truths.config)


def _truth_keys(store):
    return sorted(
        (t.origin, t.destination, t.time_slot, tuple(t.route.path)) for t in store.all()
    )


class TestJournalUnit:
    def test_append_replay_roundtrip(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            journal.append(truths[:2], planner.truths, meta={"batch_id": 1})
            journal.append([], planner.truths, meta={"batch_id": 2})
            journal.append(truths[2:], planner.truths, meta={"batch_id": 3})
            assert journal.batch_count == 3
            assert journal.truth_count == len(truths)

        reopened = TruthJournal(tmp_path / "j")
        assert reopened.batch_count == 3
        assert reopened.truth_count == len(truths)
        store = _empty_store(planner)
        assert reopened.replay_into(store) == len(truths)
        assert _truth_keys(store) == _truth_keys(planner.truths)
        metas = [meta for meta, _ in reopened.records(planner.network)]
        assert [meta["batch_id"] for meta in metas] == [1, 2, 3]
        reopened.close()

    def test_empty_journal(self, tmp_path, recorded_truths):
        planner, _ = recorded_truths
        TruthJournal(tmp_path / "j").close()
        journal = TruthJournal(tmp_path / "j")
        assert journal.batch_count == 0 and journal.truth_count == 0
        assert journal.replay_into(_empty_store(planner)) == 0
        journal.close()

    def test_snapshot_only_no_tail(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=1) as journal:
            # Every append immediately compacts, so the tail stays empty.
            journal.append(truths, planner.truths, meta={"batch_id": 1})
            assert journal.snapshots_written == 1
            assert journal.generation == 1

        reopened = TruthJournal(tmp_path / "j")
        assert reopened.batch_count == 1
        assert reopened.truth_count == len(planner.truths)
        store = _empty_store(planner)
        reopened.replay_into(store)
        assert _truth_keys(store) == _truth_keys(planner.truths)
        reopened.close()

    def test_duplicate_replay_is_idempotent(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            journal.append(truths, planner.truths, meta={})
            store = _empty_store(planner)
            assert journal.replay_into(store) == len(truths)
            assert journal.replay_into(store) == 0  # second replay: all skipped
            assert len(store) == len(truths)
            # adopt_all advanced the id sequence past every adopted id, so a
            # freshly recorded truth cannot collide with a replayed one.
            replayed_ids = {t.truth_id for t in store.all()}
            adopted_again = journal.replay(planner.network)
            assert {t.truth_id for t in adopted_again} == replayed_ids

    def test_pickle_written_columnar_read(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(
            tmp_path / "j", wire="pickle", snapshot_every_truths=10_000
        ) as journal:
            journal.append(truths, planner.truths, meta={})

        # Reading is codec-agnostic: the columnar-configured handle replays
        # records written by the pickle-configured one (and vice versa).
        reopened = TruthJournal(tmp_path / "j", wire="columnar")
        store = _empty_store(planner)
        assert reopened.replay_into(store) == len(truths)
        assert _truth_keys(store) == _truth_keys(planner.truths)
        reopened.append(truths[:1], planner.truths, meta={})  # columnar append
        reopened.close()

        mixed = TruthJournal(tmp_path / "j", wire="pickle")
        assert mixed.batch_count == 2
        assert mixed.replay_into(_empty_store(planner)) == len(truths)
        mixed.close()

    def test_torn_tail_is_truncated_with_warning(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            journal.append(truths[:2], planner.truths, meta={})
            journal.append(truths[2:], planner.truths, meta={})
        tear_tail(tmp_path / "j")

        with pytest.warns(RuntimeWarning, match="torn tail"):
            reopened = TruthJournal(tmp_path / "j")
        assert reopened.recovered_truncated
        assert reopened.batch_count == 1  # the torn record is gone
        assert reopened.truth_count == 2
        # The journal stays appendable after truncation.
        reopened.append(truths[2:], planner.truths, meta={})
        assert reopened.batch_count == 2
        store = _empty_store(planner)
        reopened.replay_into(store)
        assert _truth_keys(store) == _truth_keys(planner.truths)
        reopened.close()

    def test_corrupt_record_is_dropped_by_crc(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            journal.append(truths[:2], planner.truths, meta={})
            journal.append(truths[2:], planner.truths, meta={})
        corrupt_tail(tmp_path / "j")

        with pytest.warns(RuntimeWarning, match="torn tail"):
            reopened = TruthJournal(tmp_path / "j")
        assert reopened.batch_count == 1
        assert reopened.truth_count == 2
        reopened.close()

    def test_trailing_garbage_is_truncated(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            journal.append(truths, planner.truths, meta={})
        append_garbage(tmp_path / "j")

        with pytest.warns(RuntimeWarning, match="torn tail"):
            reopened = TruthJournal(tmp_path / "j")
        assert reopened.batch_count == 1 and reopened.truth_count == len(truths)
        reopened.close()

    def test_compaction_rotates_generations(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        journal = TruthJournal(tmp_path / "j", snapshot_every_truths=2)
        for index in range(len(truths)):
            journal.append(truths[index : index + 1], planner.truths, meta={})
        assert journal.generation >= 1
        assert journal.snapshots_written >= 1
        assert journal.batch_count == len(truths)
        # Only the current generation's files remain on disk.
        names = sorted(p.name for p in (tmp_path / "j").iterdir())
        assert len(names) == 2
        assert journal_segment(tmp_path / "j").name in names
        journal.close()

        reopened = TruthJournal(tmp_path / "j")
        assert reopened.batch_count == len(truths)
        store = _empty_store(planner)
        reopened.replay_into(store)
        assert _truth_keys(store) == _truth_keys(planner.truths)
        reopened.close()

    def test_disk_bytes_tracks_files_incrementally(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths

        def on_disk():
            return sum(
                entry.stat().st_size
                for entry in (tmp_path / "j").iterdir()
                if entry.suffix in (".log", ".snap")
            )

        with TruthJournal(tmp_path / "j", snapshot_every_truths=10_000) as journal:
            assert journal.disk_bytes == on_disk()
            journal.append(truths[:2], planner.truths, meta={"batch_id": 1})
            assert journal.disk_bytes == on_disk()
            journal.append([], planner.truths, meta={"batch_id": 2})
            assert journal.disk_bytes == on_disk()
            # Compaction rewrites the footprint: snapshot + empty segment.
            journal.snapshot(planner.truths)
            assert journal.disk_bytes == on_disk()
            stats = journal.stats()
            assert stats["disk_bytes"] == journal.disk_bytes
            assert stats["generation"] == journal.generation

        reopened = TruthJournal(tmp_path / "j")
        assert reopened.disk_bytes == on_disk()
        reopened.close()

    def test_closed_and_invalid_journals_raise(self, tmp_path, recorded_truths):
        planner, truths = recorded_truths
        journal = TruthJournal(tmp_path / "j")
        journal.close()
        with pytest.raises(JournalError):
            journal.append(truths, planner.truths)
        with pytest.raises(JournalError):
            TruthJournal(tmp_path / "j", wire="msgpack")
        with pytest.raises(JournalError):
            TruthJournal(tmp_path / "j", snapshot_every_truths=0)
        rogue = tmp_path / "file"
        rogue.write_text("not a directory")
        with pytest.raises(JournalError):
            TruthJournal(rogue)


class TestServiceJournalIntegration:
    def _config(self, planner, tmp_path, **overrides) -> ServiceConfig:
        config = ServiceConfig.from_planner_config(planner.config)
        return dataclasses.replace(
            config, backend="inline", journal_path=str(tmp_path / "j"), **overrides
        )

    def _chunks(self, workload, size=32):
        return [list(workload[i : i + size]) for i in range(0, len(workload), size)]

    def test_recover_resumes_fingerprint_identical(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        chunks = self._chunks(serving_workload)
        planner = build_serving_planner()
        config = self._config(planner, tmp_path, snapshot_every_truths=16)
        produced = []
        # An "unclean" shutdown: the backend dies but close() never runs.
        service = RecommendationService(planner, config=config)
        for chunk in chunks[:3]:
            for response in service.results(service.submit(chunk)):
                produced.append(recommendation_fingerprint(response.result))

        recovered = RecommendationService.recover(
            build_serving_planner(), tmp_path / "j", config=config
        )
        assert recovered.journal.batch_count == 3
        # Batch numbering resumes where the crashed run stopped.
        assert recovered._next_batch_id == 4
        for chunk in chunks[3:]:
            for response in recovered.results(recovered.submit(chunk)):
                produced.append(recommendation_fingerprint(response.result))
        recovered.close()
        assert produced == sequential_oracle["plain"]["fingerprints"]

    def test_recover_after_torn_tail_reexecutes_the_torn_batch(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        chunks = self._chunks(serving_workload)
        planner = build_serving_planner()
        config = self._config(planner, tmp_path, snapshot_every_truths=10_000)
        service = RecommendationService(planner, config=config)
        for chunk in chunks[:2]:
            service.results(service.submit(chunk))
        service.backend.close()
        tear_tail(tmp_path / "j")  # the crash tore batch 2's record

        with pytest.warns(RuntimeWarning, match="torn tail"):
            recovered = RecommendationService.recover(
                build_serving_planner(), tmp_path / "j", config=config
            )
        assert recovered.journal.batch_count == 1  # batch 2 must re-execute
        produced = []
        for chunk in chunks[1:]:
            for response in recovered.results(recovered.submit(chunk)):
                produced.append(recommendation_fingerprint(response.result))
        recovered.close()
        assert produced == sequential_oracle["plain"]["fingerprints"][32:]

    def test_journal_under_pickle_config_recovers_under_columnar(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        chunks = self._chunks(serving_workload)
        planner = build_serving_planner()
        pickle_config = self._config(planner, tmp_path, truth_wire="pickle")
        service = RecommendationService(planner, config=pickle_config)
        produced = []
        for chunk in chunks[:2]:
            for response in service.results(service.submit(chunk)):
                produced.append(recommendation_fingerprint(response.result))

        columnar_config = dataclasses.replace(pickle_config, truth_wire="columnar")
        recovered = RecommendationService.recover(
            build_serving_planner(), tmp_path / "j", config=columnar_config
        )
        for chunk in chunks[2:]:
            for response in recovered.results(recovered.submit(chunk)):
                produced.append(recommendation_fingerprint(response.result))
        recovered.close()
        assert produced == sequential_oracle["plain"]["fingerprints"]

    def test_preseeded_planner_is_baselined_without_a_record(
        self, tmp_path, build_serving_planner, serving_workload
    ):
        # A planner that already holds truths before journaling starts.
        planner = build_serving_planner()
        planner.recommend_batch(list(serving_workload[:32]))
        preexisting = len(planner.truths)
        assert preexisting > 0
        config = self._config(planner, tmp_path)
        service = RecommendationService(planner, config=config)
        # The baseline is a forced snapshot, not a record: batch_count stays
        # an exact executed-batch counter.
        assert service.journal.batch_count == 0
        assert service.journal.truth_count == preexisting
        service.results(service.submit(list(serving_workload[32:64])))
        assert service.journal.batch_count == 1
        stats = service.statistics()
        assert stats["journal"]["batches"] == 1
        service.close()

        recovered_store = build_serving_planner()
        recovered = RecommendationService.recover(
            recovered_store, tmp_path / "j", config=config
        )
        assert len(recovered_store.truths) == len(planner.truths)
        recovered.close()

    def test_statistics_shape(self, tmp_path, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        service = RecommendationService(planner, config=self._config(planner, tmp_path))
        service.results(service.submit(list(serving_workload[:16])))
        stats = service.statistics()
        assert set(stats) == {
            "planner", "supervision", "pipeline", "sharding", "resilience", "journal",
        }
        assert stats["planner"]["requests"] == 16
        assert stats["supervision"]["respawns"] == 0
        assert stats["supervision"]["resubmitted_results"] == 0
        assert stats["pipeline"]["windows"] == 0
        assert stats["sharding"]["sub_shards_total"] == 0
        assert stats["resilience"]["hedges_issued"] == 0
        assert stats["resilience"]["journal_suspended"] is False
        assert stats["journal"]["records_appended"] == 1
        service.close()


class TestJournalDiskFaults:
    """The journal's own OSError surfaces, driven by injected failing I/O."""

    def test_unwritable_journal_directory_is_a_typed_error(self, tmp_path, monkeypatch):
        import pathlib

        def failing_mkdir(self, *args, **kwargs):
            raise OSError(errno.EIO, os.strerror(errno.EIO))

        monkeypatch.setattr(pathlib.Path, "mkdir", failing_mkdir)
        with pytest.raises(JournalError, match="cannot create journal directory"):
            TruthJournal(tmp_path / "nope")

    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EIO])
    def test_append_propagates_disk_errors_raw(
        self, tmp_path, recorded_truths, code
    ):
        """Without a service-level ladder the journal stays policy-free: an
        append against a dying disk raises the original OSError."""
        planner, truths = recorded_truths
        journal = TruthJournal(tmp_path / "j", snapshot_every_truths=10_000)
        journal.append(truths[:2], planner.truths)
        flaky = break_journal_disk(journal, fail_at_append=0, error=code)
        with pytest.raises(OSError) as excinfo:
            journal.append(truths[2:4], planner.truths)
        assert excinfo.value.errno == code
        assert not isinstance(excinfo.value, JournalError)
        assert flaky.failures == 1
        # The failed append consumed no record: durable state is unchanged.
        assert journal.batch_count == 1

    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EIO])
    def test_unreadable_snapshot_falls_back_a_generation(
        self, tmp_path, recorded_truths, monkeypatch, code
    ):
        """An OSError while validating the newest snapshot (the journal.py
        selection fallback) downgrades to the previous generation with a
        warning instead of crashing the open."""
        import pathlib
        import shutil

        planner, truths = recorded_truths
        journal_dir = tmp_path / "j"
        journal = TruthJournal(journal_dir, snapshot_every_truths=1)
        journal.append(truths[:2], planner.truths)  # cadence forces snapshot gen 1
        journal.close()
        # Rotation keeps a single generation on disk, so fabricate a newer
        # one (as a crash between "new snapshot durable" and "old generation
        # deleted" would leave) whose snapshot the disk then refuses to read.
        shutil.copy(journal_dir / "snapshot-00000001.snap", journal_dir / "snapshot-00000002.snap")
        shutil.copy(journal_dir / "journal-00000001.log", journal_dir / "journal-00000002.log")
        bad_name = "snapshot-00000002.snap"

        original_read_bytes = pathlib.Path.read_bytes

        def flaky_read_bytes(self):
            if self.name == bad_name:
                raise OSError(code, os.strerror(code))
            return original_read_bytes(self)

        monkeypatch.setattr(pathlib.Path, "read_bytes", flaky_read_bytes)
        with pytest.warns(RuntimeWarning, match="falling back to the previous generation"):
            reopened = TruthJournal(journal_dir, snapshot_every_truths=1)
        assert reopened.generation == 1
        # The fallback generation's durable prefix is what replay serves.
        assert reopened.batch_count == 1
        assert not (journal_dir / bad_name).exists()
        reopened.close()
