"""Worker-supervision coverage: hangs, desyncs, breakers, shutdown.

Every test holds the serving correctness contract — whatever the supervisor
had to do, redeemed fingerprints equal the sequential oracle's — while
asserting the supervision *observability*: provenance flags, aggregate
counters, restored capacity.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.serving import RecommendationService, recommendation_fingerprint
from repro.serving.service import PooledBackend

from .faults import FAST_SUPERVISION, FaultInjectingBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")

pytestmark = [needs_fork, pytest.mark.chaos]


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _service(build_serving_planner, backend):
    planner = build_serving_planner()
    return RecommendationService(planner, backend=backend), planner


@pytest.fixture
def oracle(sequential_oracle):
    return sequential_oracle["plain"]["fingerprints"]


class TestHungWorkerDetection:
    def test_sigstopped_worker_is_declared_dead_within_deadline(
        self, build_serving_planner, serving_workload, oracle
    ):
        """The fast-tier smoke case of the acceptance criteria: a SIGSTOP'd
        worker (alive but silent) is killed within the RPC deadline and its
        shards complete elsewhere with results unchanged."""
        backend = PooledBackend(pool_size=2, **FAST_SUPERVISION)
        service, planner = _service(build_serving_planner, backend)
        with service:
            produced = _fingerprints(service.results(service.submit(list(serving_workload[:8]))))
            victim = service.worker_pids()[0]
            os.kill(victim, signal.SIGSTOP)
            started = time.monotonic()
            produced += _fingerprints(
                service.results(service.submit(list(serving_workload[8:])))
            )
            elapsed = time.monotonic() - started
            stats = service.statistics()["supervision"]
            assert produced == oracle
            assert stats["hung_workers_killed"] >= 1
            assert stats["resubmitted_shards"] >= 1
            # Detection cost is bounded by the deadline (plus real work),
            # not by "wait forever": generous margin, but it must not hang.
            assert elapsed < 30.0
            # Mid-batch respawn restored full capacity before the batch edge.
            assert len(service.worker_pids()) == 2
            assert victim not in service.worker_pids()

    def test_hung_worker_marks_resubmitted_provenance(
        self, build_serving_planner, serving_workload, oracle
    ):
        backend = FaultInjectingBackend(schedule={0: "hang"}, pool_size=2)
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            flagged = [r for r in responses if r.provenance.resubmitted]
            assert flagged, "no response carries the resubmitted flag"
            assert all(r.provenance.respawn_count >= 1 for r in responses)
            healthy = [r for r in responses if not r.provenance.resubmitted]
            assert all(r.provenance.respawn_count == responses[0].provenance.respawn_count
                       for r in healthy)
            assert service.statistics()["supervision"]["resubmitted_results"] == len(flagged)

    def test_dropped_dispatch_is_recovered_as_hang(
        self, build_serving_planner, serving_workload, oracle
    ):
        # A lost run message leaves the worker idle (and silent: idle workers
        # do not heartbeat) — only the deadline can catch this.
        backend = FaultInjectingBackend(schedule={1: "drop"}, pool_size=2)
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            assert service.statistics()["supervision"]["hung_workers_killed"] >= 1

    def test_delayed_dispatch_needs_no_supervision(
        self, build_serving_planner, serving_workload, oracle
    ):
        backend = FaultInjectingBackend(schedule={0: "delay", 2: "delay"}, pool_size=2)
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            stats = service.statistics()["supervision"]
            assert stats["hung_workers_killed"] == 0
            assert stats["resubmitted_shards"] == 0
            assert all(not r.provenance.resubmitted for r in responses)


class TestDesyncRespawn:
    def test_desynced_worker_is_reforked_immediately(
        self, build_serving_planner, serving_workload, oracle
    ):
        backend = FaultInjectingBackend(schedule={0: "desync"}, pool_size=2)
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            stats = service.statistics()["supervision"]
            assert stats["respawns"] >= 1
            assert stats["resubmitted_shards"] >= 1
            # One batch only — a full 2-worker pool right now proves the
            # replacement was forked mid-batch, not at the next batch edge.
            assert len(service.worker_pids()) == 2


class TestCircuitBreaker:
    def test_pool_loss_with_breaker_open_degrades_inline(
        self, build_serving_planner, serving_workload, oracle
    ):
        backend = FaultInjectingBackend(
            schedule={0: "kill_before", 1: "kill_before"},
            pool_size=2,
            max_respawns_per_batch=0,
        )
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            stats = service.statistics()["supervision"]
            assert stats["degraded_batches"] == 1
            assert stats["respawns"] == 0
            # The ticket was served even though every worker was lost.
            parent = os.getpid()
            assert {r.provenance.worker_pid for r in responses if r.provenance.resubmitted} \
                   <= {parent}

    def test_breaker_budget_bounds_respawns(
        self, build_serving_planner, serving_workload, oracle
    ):
        # Four crashes against a budget of 1: exactly one respawn happens,
        # and the batch still completes correctly (inline if need be).
        backend = FaultInjectingBackend(
            schedule={0: "kill_after", 1: "kill_after", 2: "kill_after", 3: "kill_after"},
            pool_size=2,
            max_respawns_per_batch=1,
        )
        service, _ = _service(build_serving_planner, backend)
        with service:
            responses = service.results(service.submit(list(serving_workload[:64])))
            assert _fingerprints(responses) == oracle[:64]
            assert service.statistics()["supervision"]["respawns"] <= 1

    def test_next_batch_restores_capacity_after_degradation(
        self, build_serving_planner, serving_workload, oracle
    ):
        backend = FaultInjectingBackend(
            schedule={0: "kill_before", 1: "kill_before"},
            pool_size=2,
            max_respawns_per_batch=0,
        )
        service, _ = _service(build_serving_planner, backend)
        with service:
            produced = _fingerprints(service.results(service.submit(list(serving_workload[:64]))))
            # The breaker resets at the batch edge: the next batch re-forks a
            # fresh pool and serves on it.
            produced += _fingerprints(service.results(service.submit(list(serving_workload[64:]))))
            assert produced == oracle
            assert len(service.worker_pids()) == 2


class TestShutdownEscalation:
    def test_close_escalates_past_a_sigstopped_worker(
        self, build_serving_planner, serving_workload
    ):
        """Satellite fix: a wedged worker must not hang interpreter shutdown.
        SIGTERM stays pending on a SIGSTOP'd process, so close() must
        escalate to SIGKILL."""
        backend = PooledBackend(pool_size=2, **FAST_SUPERVISION)
        service, _ = _service(build_serving_planner, backend)
        service.results(service.submit(list(serving_workload[:8])))
        pids = service.worker_pids()
        os.kill(pids[0], signal.SIGSTOP)
        started = time.monotonic()
        service.close()
        assert time.monotonic() - started < 10.0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(pids[0], 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - diagnostic path
            os.kill(pids[0], signal.SIGKILL)
            pytest.fail("SIGSTOP'd worker survived close()")
