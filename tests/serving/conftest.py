"""Fixtures for the sharded-serving tests.

The shared suite scenario (9x9 city) is too small to shard: its whole extent
fits inside one interaction radius, so every workload is a single component.
Serving tests use a larger city whose od clusters are genuinely independent,
plus precomputed workloads and a session sequential oracle.
"""

from __future__ import annotations

import pytest

from repro.core.planner import CrowdPlanner
from repro.datasets.synthetic_city import SyntheticCityConfig, build_scenario
from repro.datasets.workloads import LargeBatchWorkloadConfig, generate_large_batch_workload
from repro.serving import recommendation_fingerprint


@pytest.fixture(scope="session")
def serving_scenario():
    """An 18x18 city (5.4 km extent) with several independent neighbourhoods."""
    return build_scenario(
        SyntheticCityConfig(
            rows=18,
            cols=18,
            block_size_m=320.0,
            num_landmarks=110,
            num_drivers=18,
            trips_per_driver=10,
            num_hot_pairs=14,
            num_workers=28,
            seed=31,
        )
    )


@pytest.fixture(scope="session")
def serving_familiarity(serving_scenario):
    """One fitted familiarity model shared by every planner in these tests.

    The familiarity fit reads the (shared, mutable) worker pool answer
    histories, so planners fitted at different times would differ; a single
    pre-fitted model keeps every planner — oracle and sharded alike — on
    identical worker-selection behaviour regardless of test order.
    """
    planner = serving_scenario.build_planner()
    return planner.familiarity


@pytest.fixture(scope="session")
def build_serving_planner(serving_scenario, serving_familiarity):
    """Factory for planners that share the pre-fitted familiarity model."""

    def build():
        return CrowdPlanner(
            network=serving_scenario.network,
            catalog=serving_scenario.catalog,
            calibrator=serving_scenario.calibrator,
            sources=serving_scenario.sources,
            worker_pool=serving_scenario.worker_pool,
            crowd_backend=serving_scenario.crowd,
            config=serving_scenario.config.planner_config,
            familiarity=serving_familiarity,
        )

    return build


@pytest.fixture(scope="session")
def serving_workload(serving_scenario):
    return generate_large_batch_workload(
        serving_scenario.network,
        LargeBatchWorkloadConfig(num_queries=160, num_clusters=5, seed=77),
    )


@pytest.fixture(scope="session")
def dominant_workload(serving_scenario):
    """A workload where one destination cell receives 30% of all queries."""
    return generate_large_batch_workload(
        serving_scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=160, num_clusters=5, dominant_destination_fraction=0.3, seed=77
        ),
    )


@pytest.fixture(scope="session")
def sequential_oracle(build_serving_planner, serving_workload, dominant_workload):
    """Sequential-run fingerprints and statistics per workload.

    Computed once: with the shared familiarity model frozen, batch results do
    not depend on worker answer histories or reward balances, so one oracle
    run per workload is valid for every later comparison.
    """
    oracles = {}
    for name, workload in (("plain", serving_workload), ("dominant", dominant_workload)):
        planner = build_serving_planner()
        results = planner.recommend_batch(workload)
        oracles[name] = {
            "fingerprints": [recommendation_fingerprint(result) for result in results],
            "statistics": planner.statistics.as_dict(),
            "truths": [
                (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
                for t in planner.truths.all()
            ],
        }
    return oracles
