"""RecommendationService contract and lifecycle tests.

The acceptance gate of the API redesign: for backends {inline, pooled},
pool sizes {1, 2, 4} and multiple submission interleavings, the service's
concatenated responses (and the planner's post-batch state) are
fingerprint-identical to the sequential oracle.  Lifecycle coverage: the
persistent pool reuses workers across batches without re-forking, a worker
crash resubmits its shards to a healthy worker, close()/context-manager
shutdown, double collection, and the bounded submission queue.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.config import ServiceConfig
from repro.exceptions import ServingError
from repro.routing.base import RouteQuery
from repro.serving import (
    InlineBackend,
    PooledBackend,
    RecommendationService,
    recommendation_fingerprint,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")


def _service(planner, backend_name, pool_size=2, **overrides):
    config = ServiceConfig.from_planner_config(
        planner.config, backend=backend_name, pool_size=pool_size, **overrides
    )
    return RecommendationService(planner, config)


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _chunks(workload, count=3):
    size = (len(workload) + count - 1) // count
    return [workload[start:start + size] for start in range(0, len(workload), size)]


def _run_interleaving(service, workload, interleaving):
    """Drive the workload through the service under a named interleaving."""
    if interleaving == "single_ticket":
        return service.results(service.submit(workload))
    if interleaving == "chunked_out_of_order":
        tickets = [service.submit(chunk) for chunk in _chunks(workload)]
        # Redeem out of submission order: execution order must not change.
        collected = {t.ticket_id: service.results(t) for t in reversed(tickets)}
        return [response for t in tickets for response in collected[t.ticket_id]]
    if interleaving == "stream":
        return list(service.stream(workload, batch_size=48))
    raise AssertionError(f"unknown interleaving {interleaving!r}")


class TestServiceContract:
    """Fingerprint parity across backends, pool sizes and interleavings."""

    @pytest.mark.parametrize("interleaving", ["single_ticket", "chunked_out_of_order"])
    @pytest.mark.parametrize("pool_size", [1, 2, 4])
    def test_pooled_matches_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle, pool_size, interleaving
    ):
        planner = build_serving_planner()
        with _service(planner, "pooled", pool_size) as service:
            responses = _run_interleaving(service, serving_workload, interleaving)
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    @pytest.mark.parametrize("interleaving", ["single_ticket", "chunked_out_of_order", "stream"])
    def test_inline_matches_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle, interleaving
    ):
        planner = build_serving_planner()
        with _service(planner, "inline") as service:
            responses = _run_interleaving(service, serving_workload, interleaving)
        assert _fingerprints(responses) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    def test_pooled_stream_dominant_workload(
        self, build_serving_planner, dominant_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        with _service(planner, "pooled", 2) as service:
            responses = list(service.stream(dominant_workload, batch_size=40))
        assert _fingerprints(responses) == sequential_oracle["dominant"]["fingerprints"]

    def test_truth_store_parity(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        with _service(planner, "pooled", 4) as service:
            service.results(service.submit(serving_workload))
        merged = [
            (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
            for t in planner.truths.all()
        ]
        assert merged == sequential_oracle["plain"]["truths"]

    @pytest.mark.parametrize("max_shard_fraction", [1.0, 0.5, 0.25])
    @pytest.mark.parametrize("pool_size", [1, 2, 4])
    @pytest.mark.parametrize("use_processes", [False, True])
    def test_hotspot_split_matches_sequential(
        self,
        build_serving_planner,
        dominant_workload,
        sequential_oracle,
        max_shard_fraction,
        pool_size,
        use_processes,
    ):
        """The hotspot matrix: every splitting level is observationally
        invisible — fingerprints, statistics and the merged truth store all
        equal the sequential oracle, forked pool and in-process alike."""
        if use_processes and not HAS_FORK:
            pytest.skip("platform has no fork start method")
        planner = build_serving_planner()
        backend = PooledBackend(
            pool_size=pool_size,
            use_processes=use_processes,
            max_shard_fraction=max_shard_fraction,
        )
        with RecommendationService(planner, backend=backend) as service:
            responses = service.results(service.submit(dominant_workload))
        oracle = sequential_oracle["dominant"]
        assert _fingerprints(responses) == oracle["fingerprints"]
        assert planner.statistics.as_dict() == oracle["statistics"]
        merged = [
            (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
            for t in planner.truths.all()
        ]
        assert merged == oracle["truths"]

    def test_request_envelopes_carry_queries_and_provenance(
        self, build_serving_planner, serving_workload
    ):
        planner = build_serving_planner()
        with _service(planner, "pooled", 2) as service:
            responses = service.results(service.submit(serving_workload[:24]))
        assert [r.request.query for r in responses] == serving_workload[:24]
        assert [r.request.request_id for r in responses] == list(range(1, 25))
        for response in responses:
            assert response.provenance.backend == "pooled"
            assert response.provenance.batch_size == 24
            assert response.provenance.truth_reused == (response.method == "truth_reuse")
            assert response.provenance.timings.total_s >= 0.0
            if HAS_FORK:
                assert response.provenance.shard_id is not None
                assert response.provenance.worker_pid is not None


@needs_fork
class TestPersistentPool:
    """Acceptance: workers are reused across >= 3 batches without re-forking."""

    def test_worker_pids_stable_across_batches(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        batches = _chunks(serving_workload, 4)
        with _service(planner, "pooled", 2) as service:
            pids_per_batch = []
            warm_per_batch = []
            for batch in batches:
                responses = service.results(service.submit(batch))
                pids_per_batch.append({r.provenance.worker_pid for r in responses})
                warm_per_batch.append(all(r.provenance.warm_pool for r in responses))
            pool_pids = set(service.worker_pids())
        assert len(batches) >= 3
        assert len(pool_pids) == 2
        for pids in pids_per_batch:
            assert pids <= pool_pids  # every batch served by the original workers
        assert set().union(*pids_per_batch) == pool_pids
        assert warm_per_batch[0] is False  # the pool forks on the first batch
        assert all(warm_per_batch[1:])     # and is never re-forked afterwards
        assert os.getpid() not in pool_pids

    def test_repeat_batch_served_from_warm_truths(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        with _service(planner, "pooled", 2) as service:
            service.results(service.submit(serving_workload))
            repeat = service.results(service.submit(serving_workload))
        assert all(response.method == "truth_reuse" for response in repeat)
        assert all(response.provenance.truth_reused for response in repeat)


@needs_fork
class TestCrashRecovery:
    @staticmethod
    def _wait_dead(pid):
        # SIGKILL delivery is near-immediate; the killed child stays a
        # zombie (still visible to ``os.kill(pid, 0)``) until the backend's
        # next ``is_alive`` check reaps it, so a short fixed grace period is
        # the right wait here.
        time.sleep(0.2)

    def test_worker_crash_resubmits_to_healthy_worker(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """With respawn disabled, the pool shrinks but keeps serving."""
        planner = build_serving_planner()
        first, second = serving_workload[:80], serving_workload[80:]
        backend = PooledBackend(pool_size=2, respawn_workers=False)
        with RecommendationService(planner, backend=backend) as service:
            before = _fingerprints(service.results(service.submit(first)))
            victim, survivor = service.worker_pids()
            os.kill(victim, signal.SIGKILL)
            self._wait_dead(victim)
            after = _fingerprints(service.results(service.submit(second)))
            assert service.worker_pids() == [survivor]
        oracle = sequential_oracle["plain"]["fingerprints"]
        assert before + after == oracle
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    def test_dead_worker_respawned_in_place(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """The default policy re-forks one replacement per dead worker."""
        planner = build_serving_planner()
        batches = _chunks(serving_workload, 4)
        collected = []
        with _service(planner, "pooled", 2) as service:
            collected.extend(service.results(service.submit(batches[0])))
            victim, survivor = service.worker_pids()
            os.kill(victim, signal.SIGKILL)
            self._wait_dead(victim)
            for batch in batches[1:]:
                collected.extend(service.results(service.submit(batch)))
            pids = service.worker_pids()
            # Capacity restored by one freshly forked worker; the survivor
            # (and its warm truth state) kept serving throughout.
            assert len(pids) == 2
            assert survivor in pids
            assert victim not in pids
            served_pids = {r.provenance.worker_pid for r in collected}
            assert set(pids) <= served_pids  # the replacement did real work
            assert all(r.provenance.warm_pool for r in collected[len(batches[0]):])
        assert _fingerprints(collected) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    def test_respawned_worker_holds_current_truth_state(
        self, build_serving_planner, serving_workload
    ):
        """A replacement forked mid-session serves repeats from warm truths."""
        planner = build_serving_planner()
        with _service(planner, "pooled", 2) as service:
            service.results(service.submit(serving_workload))
            victim = service.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            self._wait_dead(victim)
            repeat = service.results(service.submit(serving_workload))
            assert len(service.worker_pids()) == 2
        # Every repeat answer comes straight from the truth store the
        # replacement inherited at its fork.
        assert all(response.method == "truth_reuse" for response in repeat)

    def test_whole_pool_crash_reforks(self, build_serving_planner, serving_workload, sequential_oracle):
        planner = build_serving_planner()
        first, second = serving_workload[:80], serving_workload[80:]
        with _service(planner, "pooled", 2) as service:
            before = _fingerprints(service.results(service.submit(first)))
            old_pids = service.worker_pids()
            for pid in old_pids:
                os.kill(pid, signal.SIGKILL)
            for pid in old_pids:
                self._wait_dead(pid)
            after = _fingerprints(service.results(service.submit(second)))
            new_pids = service.worker_pids()
        assert before + after == sequential_oracle["plain"]["fingerprints"]
        assert new_pids and not set(new_pids) & set(old_pids)


class TestLifecycle:
    def test_close_refuses_further_calls(self, build_serving_planner, serving_workload):
        service = _service(build_serving_planner(), "inline")
        ticket = service.submit(serving_workload[:4])
        service.close()
        assert service.closed
        with pytest.raises(ServingError):
            service.submit(serving_workload[:4])
        with pytest.raises(ServingError):
            service.results(ticket)
        service.close()  # idempotent

    def test_context_manager_closes_pool(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        with _service(planner, "pooled", 2) as service:
            service.results(service.submit(serving_workload[:20]))
            pids = service.worker_pids()
        assert service.closed
        assert service.worker_pids() == []
        if HAS_FORK:
            for pid in pids:
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail(f"pool worker {pid} survived close()")

    def test_double_collect_raises(self, build_serving_planner, serving_workload):
        with _service(build_serving_planner(), "inline") as service:
            ticket = service.submit(serving_workload[:6])
            assert len(service.results(ticket)) == 6
            with pytest.raises(ServingError):
                service.results(ticket)

    def test_unknown_ticket_raises(self, build_serving_planner):
        with _service(build_serving_planner(), "inline") as service:
            with pytest.raises(ServingError):
                service.results(999)

    def test_submission_queue_bound(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        with _service(planner, "inline", max_pending_batches=2) as service:
            first = service.submit(serving_workload[:4])
            service.submit(serving_workload[4:8])
            with pytest.raises(ServingError):
                service.submit(serving_workload[8:12])
            # Collecting drains the queue and frees capacity.
            service.results(first)
            service.submit(serving_workload[8:12])

    def test_rejected_submit_does_not_consume_queries(
        self, build_serving_planner, serving_workload
    ):
        """A queue-full rejection must be side-effect-free: a generator
        passed to the refused submit stays intact for the retry."""
        with _service(build_serving_planner(), "inline", max_pending_batches=1) as service:
            service.submit(serving_workload[:4])
            source = iter(serving_workload[4:8])
            with pytest.raises(ServingError):
                service.submit(source)
            service.drain()
            assert service.submit(source).size == 4

    def test_empty_batch(self, build_serving_planner):
        with _service(build_serving_planner(), "inline") as service:
            assert service.results(service.submit([])) == []

    def test_recommend_single_query(self, build_serving_planner, serving_workload):
        with _service(build_serving_planner(), "inline") as service:
            response = service.recommend(serving_workload[0])
        assert isinstance(response.query, RouteQuery)
        assert response.query == serving_workload[0]
        assert response.route is response.result.route

    def test_explicit_backend_instance(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        backend = PooledBackend(pool_size=2, use_processes=False)
        with RecommendationService(planner, backend=backend) as service:
            responses = service.results(service.submit(serving_workload[:20]))
        assert len(responses) == 20
        assert responses[0].provenance.backend == "pooled"

    def test_backend_failure_keeps_ticket_redeemable(
        self, build_serving_planner, serving_workload
    ):
        class FlakyBackend(InlineBackend):
            def __init__(self):
                super().__init__()
                self.fail_next = True

            def execute_batch(self, queries, share_candidate_generation=True, plan=None):
                if self.fail_next:
                    self.fail_next = False
                    raise ServingError("transient backend failure")
                return super().execute_batch(queries, share_candidate_generation, plan)

        planner = build_serving_planner()
        with RecommendationService(planner, backend=FlakyBackend()) as service:
            ticket = service.submit(serving_workload[:6])
            with pytest.raises(ServingError):
                service.results(ticket)
            # The batch stayed pending: the ticket is still redeemable.
            assert len(service.results(ticket)) == 6

    def test_backend_rebinding_rejected(self, build_serving_planner):
        backend = InlineBackend()
        RecommendationService(build_serving_planner(), backend=backend)
        # InlineBackend allows rebinding; PooledBackend does not.
        pooled = PooledBackend(pool_size=1)
        RecommendationService(build_serving_planner(), backend=pooled)
        with pytest.raises(ServingError):
            RecommendationService(build_serving_planner(), backend=pooled)


@pytest.mark.property
@pytest.mark.slow
class TestInterleavingProperty:
    """Hypothesis: *any* chunking of the stream into tickets, redeemed in any
    order, over any pool size and pipeline window, reproduces the sequential
    oracle exactly."""

    def test_random_interleavings(
        self, build_serving_planner, serving_workload, dominant_workload, sequential_oracle
    ):
        from hypothesis import given, settings, strategies as st

        workloads = {"plain": serving_workload, "dominant": dominant_workload}

        @settings(max_examples=10, deadline=None)
        @given(
            workload_name=st.sampled_from(["plain", "dominant"]),
            pool_size=st.integers(min_value=1, max_value=4),
            pipeline_window=st.integers(min_value=1, max_value=4),
            chunk_seed=st.integers(min_value=0, max_value=2**16),
        )
        def check(workload_name, pool_size, pipeline_window, chunk_seed):
            import random

            workload = workloads[workload_name]
            rng = random.Random(chunk_seed)
            chunks = []
            position = 0
            while position < len(workload):
                size = rng.randint(1, 64)
                chunks.append(workload[position:position + size])
                position += size
            planner = build_serving_planner()
            # use_processes=False keeps the property sweep affordable; the
            # forked path is covered by the parametrised contract tests.
            backend = PooledBackend(pool_size=pool_size, use_processes=False)
            config = ServiceConfig.from_planner_config(
                planner.config, pipeline_window=pipeline_window
            )
            with RecommendationService(planner, config=config, backend=backend) as service:
                tickets = [service.submit(chunk) for chunk in chunks]
                order = list(range(len(tickets)))
                rng.shuffle(order)
                collected = {}
                for position in order:
                    collected[position] = service.results(tickets[position])
            responses = [r for position in range(len(tickets)) for r in collected[position]]
            assert _fingerprints(responses) == sequential_oracle[workload_name]["fingerprints"]
            assert planner.statistics.as_dict() == sequential_oracle[workload_name]["statistics"]

        check()
