"""Shard determinism: the engine's answers must be bit-identical to the
sequential ``recommend_batch`` oracle for every worker count, execution mode
(forked processes or inline) and component partitioning — including skewed
workloads where one destination cell dominates."""

import pytest

from repro.core.planner import QueryShard, ShardPlan
from repro.serving import ShardedRecommendationEngine, recommendation_fingerprint


def _fingerprints(results):
    return [recommendation_fingerprint(result) for result in results]


class TestWorkerSweep:
    """Acceptance criterion: workers {1, 2, 4} match the sequential oracle."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_forked_matches_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle, workers
    ):
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=workers)
        results = engine.recommend_batch(serving_workload)
        assert _fingerprints(results) == sequential_oracle["plain"]["fingerprints"]
        assert planner.statistics.as_dict() == sequential_oracle["plain"]["statistics"]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_inline_matches_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle, workers
    ):
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=workers, use_processes=False)
        results = engine.recommend_batch(serving_workload)
        assert _fingerprints(results) == sequential_oracle["plain"]["fingerprints"]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_dominant_destination_cell(
        self, build_serving_planner, dominant_workload, sequential_oracle, workers
    ):
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=workers, use_processes=False)
        results = engine.recommend_batch(dominant_workload)
        assert _fingerprints(results) == sequential_oracle["dominant"]["fingerprints"]


class TestParentStateParity:
    def test_truth_store_matches_sequential(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        planner = build_serving_planner()
        ShardedRecommendationEngine(planner, workers=4).recommend_batch(serving_workload)
        merged = [
            (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
            for t in planner.truths.all()
        ]
        assert merged == sequential_oracle["plain"]["truths"]

    def test_truth_ids_ascend_in_submission_order(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        ShardedRecommendationEngine(planner, workers=4).recommend_batch(serving_workload)
        ids = [t.truth_id for t in planner.truths.all()]
        assert ids == sorted(ids)

    def test_second_batch_reuses_merged_truths(self, build_serving_planner, serving_workload):
        """After the merge, a repeat of the same batch is served from truths."""
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=4)
        engine.recommend_batch(serving_workload)
        repeat = engine.recommend_batch(serving_workload)
        assert all(result.method == "truth_reuse" for result in repeat)

    def test_crowd_side_effects_replayed(self, build_serving_planner, serving_workload):
        """Crowd tasks run in shards must credit the parent's reward ledger."""
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=4)
        results = engine.recommend_batch(serving_workload)
        crowd_results = [r for r in results if r.task_result is not None]
        assert planner.statistics.crowd_tasks == len(crowd_results)
        if crowd_results:
            assert len(planner.rewards.history()) > 0
            task_ids = [r.task_result.task.task_id for r in crowd_results]
            # Task ids were re-issued at merge time, in submission order.
            assert task_ids == sorted(task_ids)


class TestEngineBasics:
    def test_empty_batch(self, build_serving_planner):
        engine = ShardedRecommendationEngine(build_serving_planner(), workers=4)
        assert engine.recommend_batch([]) == []

    def test_invalid_worker_count(self, build_serving_planner):
        from repro.exceptions import CrowdPlannerError

        with pytest.raises(CrowdPlannerError):
            ShardedRecommendationEngine(build_serving_planner(), workers=0)

    def test_workers_one_serves_in_process(self, build_serving_planner, serving_workload):
        """workers=1 is the sequential path itself: no clones, parent truths
        are recorded directly with contiguous ids."""
        planner = build_serving_planner()
        engine = ShardedRecommendationEngine(planner, workers=1)
        results = engine.recommend_batch(serving_workload[:20])
        assert len(results) == 20
        recorded = [r for r in results if r.method != "truth_reuse"]
        assert len(planner.truths) == len(recorded)

    def test_plan_diagnostics(self, build_serving_planner, serving_workload):
        engine = ShardedRecommendationEngine(build_serving_planner(), workers=4)
        plan = engine.plan(serving_workload)
        assert plan.num_queries == len(serving_workload)
        assert 1 <= len(plan.shards) <= 4


class TestTruthViewShardEquivalence:
    """The copy-on-write truth views that seed shard clones must answer
    exactly like materialised partitions (the pre-view shipping scheme)."""

    def test_view_clone_matches_partition_clone(self, build_serving_planner, serving_workload):
        import copy

        from repro.core.planner import CrowdPlanner
        from repro.serving.shards import ShardJob, execute_shard_job

        planner = build_serving_planner()
        # Seed warm truths so the shard slices are non-trivial.
        planner.recommend_batch(serving_workload[:40])
        tail = serving_workload[40:120]
        plan = planner.shard_plan(tail, 4)
        assert len(plan.shards) > 1
        for shard in plan.shards:
            job = ShardJob(
                shard_id=shard.shard_id,
                indices=shard.indices,
                destination_cells=shard.destination_cells,
                queries=[tail[index] for index in shard.indices],
            )
            view_outcome = execute_shard_job(planner, job)

            # The former scheme: a clone over a materialised partition.
            partition = planner.truths.partition_by_cells(shard.destination_cells)
            clone = CrowdPlanner(
                network=planner.network,
                catalog=planner.catalog,
                calibrator=planner.calibrator,
                sources=planner.sources,
                worker_pool=copy.deepcopy(planner.worker_pool),
                crowd_backend=planner.crowd_backend,
                config=planner.config,
                familiarity=planner.familiarity,
                task_generator=planner.task_generator,
            )
            clone.truths = partition
            evaluator = copy.copy(planner.evaluator)
            evaluator.truths = partition
            clone.evaluator = evaluator
            before = len(partition)
            partition_results = clone.recommend_batch(job.queries)

            assert _fingerprints(view_outcome.results) == _fingerprints(partition_results)
            assert [
                (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
                for t in view_outcome.new_truths
            ] == [
                (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
                for t in partition.all()[before:]
            ]


@pytest.mark.property
@pytest.mark.slow
class TestAnyPartitioningProperty:
    """Hypothesis: *any* regrouping of interaction-closed components into any
    number of shards reproduces the sequential oracle exactly."""

    def test_random_component_partitions(
        self, build_serving_planner, serving_workload, dominant_workload, sequential_oracle
    ):
        from hypothesis import given, settings, strategies as st

        workloads = {"plain": serving_workload, "dominant": dominant_workload}

        @settings(max_examples=12, deadline=None)
        @given(
            workload_name=st.sampled_from(["plain", "dominant"]),
            shard_count=st.integers(min_value=2, max_value=6),
            assignment_seed=st.integers(min_value=0, max_value=2**16),
        )
        def check(workload_name, shard_count, assignment_seed):
            import random

            workload = workloads[workload_name]
            planner = build_serving_planner()
            # One shard per component, then regroup them randomly: this
            # explores partitionings the engine's own bin packing never
            # produces.
            atomic = planner.shard_plan(workload, shards=len(workload))
            rng = random.Random(assignment_seed)
            groups = [[] for _ in range(shard_count)]
            for shard in atomic.shards:
                groups[rng.randrange(shard_count)].append(shard)
            shards = tuple(
                QueryShard(
                    shard_id=shard_id,
                    indices=tuple(sorted(i for s in members for i in s.indices)),
                    destination_cells=frozenset().union(*(s.destination_cells for s in members)),
                    components=sum(s.components for s in members),
                )
                for shard_id, members in enumerate(groups)
                if members
            )
            plan = ShardPlan(
                shards=shards,
                num_queries=atomic.num_queries,
                interaction_radius_m=atomic.interaction_radius_m,
                cell_size_m=atomic.cell_size_m,
                cell_reach=atomic.cell_reach,
            )
            engine = ShardedRecommendationEngine(planner, use_processes=False)
            results = engine.recommend_batch(workload, plan=plan)
            assert _fingerprints(results) == sequential_oracle[workload_name]["fingerprints"]
            assert planner.statistics.as_dict() == sequential_oracle[workload_name]["statistics"]

        check()
