"""Multi-tenant workspace isolation contract.

The acceptance gate of the tenancy subsystem: for any interleaving of three
workspaces over one shared pool — across backends, pool sizes,
``pipeline_window`` and ``max_shard_fraction`` — every workspace's answers,
post-batch planner state, and recovered-journal state are bit-identical to a
dedicated single-tenant service (whose own contract pins it to the
sequential oracle, so the per-tenant oracle here *is* the sequential
planner).  The fault half asserts blast-radius isolation: an injected fault
inside one tenant's batch never perturbs another tenant's fingerprints, and
the supervision fallout is attributed to the faulted tenant only.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import PlannerConfig, ServiceConfig
from repro.exceptions import ServingError, WorkspaceManifestError
from repro.serving import WorkspaceService, recommendation_fingerprint

from .faults import FaultInjectingBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")

TENANTS = ("alpha", "beta", "gamma")
BATCH = 10  # queries per tenant batch; 3 batches per tenant


@pytest.fixture(scope="module")
def tenant_batches(serving_workload):
    """Three disjoint per-tenant workloads, each split into 3 batches."""
    workload = list(serving_workload[:90])
    return {
        name: [
            workload[index::3][start:start + BATCH]
            for start in range(0, len(workload[index::3]), BATCH)
        ]
        for index, name in enumerate(TENANTS)
    }


def _truth_tuples(planner):
    # Truth ids are process-local serials (a process-global sequence that
    # interleaves across tenants) and are excluded from the contract, like
    # everywhere else; per-tenant *relative* id order is what the lookup
    # tie-break relies on, and that is covered by the fingerprint equality.
    return [
        (t.origin, t.destination, t.time_slot, t.route.path, t.verified_by, t.confidence)
        for t in planner.truths.all()
    ]


@pytest.fixture(scope="module")
def tenant_oracles(build_serving_planner, tenant_batches):
    """Per-tenant sequential oracles: each tenant's batches through a
    dedicated planner, in the tenant's own submission order."""
    oracles = {}
    for name, batches in tenant_batches.items():
        planner = build_serving_planner()
        fingerprints = []
        for batch in batches:
            fingerprints.extend(
                recommendation_fingerprint(result) for result in planner.recommend_batch(batch)
            )
        oracles[name] = {
            "fingerprints": fingerprints,
            "statistics": planner.statistics.as_dict(),
            "truths": _truth_tuples(planner),
        }
    return oracles


def _tenant_config(template, **overrides):
    use_processes = overrides.pop("use_processes", HAS_FORK)
    return ServiceConfig.from_planner_config(
        template.config, use_processes=use_processes, **overrides
    )


def _round_robin(tenant_batches):
    """The default global order: every tenant's next batch, round-robin."""
    rounds = max(len(batches) for batches in tenant_batches.values())
    return [name for _ in range(rounds) for name in TENANTS][: rounds * len(TENANTS)]


def _run_interleaved(service, tenant_batches, order=None, ticketed=False):
    """Execute the tenants' batches in a global interleaving.

    ``order`` names which tenant executes its next pending batch at each
    step (extra mentions of an exhausted tenant are skipped).  With
    ``ticketed=True`` every batch is submitted as a ticket first (still in
    ``order``) and redeemed afterwards, so per-workspace pipeline windows
    actually engage.
    """
    order = list(order if order is not None else _round_robin(tenant_batches))
    cursors = {name: 0 for name in tenant_batches}
    # Whatever the drawn order dropped, append round-robin so every batch runs.
    for name in _round_robin(tenant_batches):
        if order.count(name) < len(tenant_batches[name]):
            order.append(name)
    fingerprints = {name: [] for name in tenant_batches}
    tickets = []
    for name in order:
        index = cursors[name]
        if index >= len(tenant_batches[name]):
            continue
        cursors[name] = index + 1
        workspace = service.workspace(name)
        if ticketed:
            tickets.append((name, workspace.submit(tenant_batches[name][index])))
        else:
            for response in workspace.recommend_batch(tenant_batches[name][index]):
                fingerprints[name].append(recommendation_fingerprint(response.result))
    for name, ticket in tickets:
        for response in service.workspace(name).results(ticket):
            fingerprints[name].append(recommendation_fingerprint(response.result))
    return fingerprints


def _assert_matches_oracles(service, fingerprints, tenant_oracles):
    for name, oracle in tenant_oracles.items():
        assert fingerprints[name] == oracle["fingerprints"], f"tenant {name} diverged"
        planner = service.workspace(name).planner
        assert planner.statistics.as_dict() == oracle["statistics"]
        assert _truth_tuples(planner) == oracle["truths"]


class TestWorkspaceLifecycle:
    def test_create_list_lookup_close(self, build_serving_planner):
        template = build_serving_planner()
        with WorkspaceService(template, config=_tenant_config(template, backend="inline")) as svc:
            alpha = svc.create_workspace("alpha")
            svc.create_workspace("beta")
            assert svc.list_workspaces() == ["alpha", "beta"]
            assert svc.workspace("alpha") is alpha
            with pytest.raises(ServingError):
                svc.create_workspace("alpha")
            with pytest.raises(ServingError):
                svc.workspace("missing")
            svc.close_workspace("alpha")
            assert svc.list_workspaces() == ["beta"]
            assert alpha.closed
            with pytest.raises(ServingError):
                svc.close_workspace("alpha")
            # The freed name is reusable.
            svc.create_workspace("alpha")
        assert svc.closed
        with pytest.raises(ServingError):
            svc.create_workspace("gamma")

    @pytest.mark.parametrize("name", ["", ".", "..", "a/b", "a\\b", "a\x00b"])
    def test_invalid_workspace_names_rejected(self, build_serving_planner, name):
        template = build_serving_planner()
        with WorkspaceService(template, config=_tenant_config(template, backend="inline")) as svc:
            with pytest.raises(ServingError):
                svc.create_workspace(name)

    def test_workspaces_share_substrate_but_not_truths(self, build_serving_planner):
        template = build_serving_planner()
        with WorkspaceService(template, config=_tenant_config(template, backend="inline")) as svc:
            alpha = svc.create_workspace("alpha")
            beta = svc.create_workspace("beta")
            assert alpha.planner.network is beta.planner.network is template.network
            assert alpha.planner.familiarity is template.familiarity
            assert alpha.planner.truths is not beta.planner.truths
            assert alpha.planner.truths is not template.truths


class TestTenantIsolationContract:
    """Interleaved multi-tenant runs vs the per-tenant sequential oracles."""

    @pytest.mark.parametrize(
        "backend, pool_size, window, fraction, ticketed",
        [
            ("inline", 1, 1, None, False),
            ("pooled", 1, 1, None, False),
            ("pooled", 2, 1, None, False),
            ("pooled", 2, 1, 0.35, False),
            ("pooled", 2, 3, None, True),
            ("pooled", 4, 3, 0.35, True),
        ],
    )
    def test_interleaved_matches_dedicated(
        self,
        build_serving_planner,
        tenant_batches,
        tenant_oracles,
        backend,
        pool_size,
        window,
        fraction,
        ticketed,
    ):
        template = build_serving_planner()
        config = _tenant_config(
            template,
            backend=backend,
            pool_size=pool_size,
            pipeline_window=window,
            max_shard_fraction=fraction,
        )
        with WorkspaceService(template, config=config) as svc:
            for name in TENANTS:
                svc.create_workspace(name)
            fingerprints = _run_interleaved(svc, tenant_batches, ticketed=ticketed)
            _assert_matches_oracles(svc, fingerprints, tenant_oracles)

    @needs_fork
    def test_statistics_per_workspace_breakdown(
        self, build_serving_planner, tenant_batches, tmp_path
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="pooled", pool_size=2)
        with WorkspaceService(template, config=config, journal_root=tmp_path) as svc:
            for name in TENANTS:
                svc.create_workspace(name)
            _run_interleaved(svc, tenant_batches)
            stats = svc.statistics()
            assert set(stats["workspaces"]) == set(TENANTS)
            for name in TENANTS:
                entry = stats["workspaces"][name]
                assert entry["batches"] == len(tenant_batches[name])
                assert entry["truths"] > 0
                assert entry["respawns"] == 0
                assert entry["journal_bytes"] > 0
            assert len(stats["pool"]["workers"]) == 2
            assert stats["pool"]["tenants"]["alpha"]["batches"] == len(tenant_batches["alpha"])

    @pytest.mark.property
    @pytest.mark.slow
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(order=st.permutations([name for name in TENANTS for _ in range(3)]))
    def test_random_interleavings_match_dedicated(
        self, build_serving_planner, tenant_batches, tenant_oracles, order
    ):
        template = build_serving_planner()
        config = _tenant_config(
            template, backend="pooled", pool_size=2, use_processes=False
        )
        with WorkspaceService(template, config=config) as svc:
            for name in TENANTS:
                svc.create_workspace(name)
            fingerprints = _run_interleaved(svc, tenant_batches, order=order)
            _assert_matches_oracles(svc, fingerprints, tenant_oracles)


class TestWorkspaceRecovery:
    def test_recover_all_restores_every_workspace(
        self, build_serving_planner, tenant_batches, tenant_oracles, tmp_path
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="inline")
        svc = WorkspaceService(template, config=config, journal_root=tmp_path)
        for name in TENANTS:
            svc.create_workspace(name)
        _run_interleaved(svc, tenant_batches)
        # Simulate a crash: the journals are never cleanly closed.
        pre_crash = {name: _truth_tuples(svc.workspace(name).planner) for name in TENANTS}
        del svc

        recovered = WorkspaceService.recover_all(
            build_serving_planner(), tmp_path, config=config
        )
        assert sorted(recovered.list_workspaces()) == sorted(TENANTS)
        for name in TENANTS:
            workspace = recovered.workspace(name)
            assert _truth_tuples(workspace.planner) == pre_crash[name]
            assert _truth_tuples(workspace.planner) == tenant_oracles[name]["truths"]
            assert workspace.batches_executed == len(tenant_batches[name])
        recovered.close()

    def test_manifest_preserves_planner_config(self, build_serving_planner, tmp_path):
        template = build_serving_planner()
        config = _tenant_config(template, backend="inline")
        custom = PlannerConfig(confidence_threshold=0.9, random_seed=123)
        with WorkspaceService(template, config=config, journal_root=tmp_path) as svc:
            svc.create_workspace("tuned", planner_config=custom)
            assert svc.workspace("tuned").planner.config == custom

        recovered = WorkspaceService.recover_all(
            build_serving_planner(), tmp_path, config=config
        )
        assert recovered.workspace("tuned").planner.config == custom
        recovered.close()

    def test_corrupt_manifest_is_a_typed_error_naming_the_directory(
        self, build_serving_planner, tmp_path
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="inline")
        with WorkspaceService(template, config=config, journal_root=tmp_path) as svc:
            svc.create_workspace("healthy")
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "workspace.json").write_text("{this is not json")

        with pytest.raises(WorkspaceManifestError, match="not valid JSON") as excinfo:
            WorkspaceService.recover_all(build_serving_planner(), tmp_path, config=config)
        # The operator is pointed at the exact workspace directory to inspect.
        assert excinfo.value.directory == broken
        assert str(broken) in str(excinfo.value)

    def test_manifest_missing_planner_config_is_a_typed_error(
        self, build_serving_planner, tmp_path
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="inline")
        broken = tmp_path / "legacy"
        broken.mkdir()
        (broken / "workspace.json").write_text('{"name": "legacy"}')

        with pytest.raises(WorkspaceManifestError, match="planner_config") as excinfo:
            WorkspaceService.recover_all(build_serving_planner(), tmp_path, config=config)
        assert excinfo.value.directory == broken


@needs_fork
class TestTenantFaultIsolation:
    """A fault inside tenant alpha's batch must never perturb tenant beta."""

    @pytest.mark.parametrize("kind", ["kill_after", "hang", "desync"])
    def test_fault_in_one_tenant_leaves_others_untouched(
        self, build_serving_planner, tenant_batches, tenant_oracles, kind
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="pooled", pool_size=2)
        pool = FaultInjectingBackend(pool_size=2)
        with WorkspaceService(template, config=config, pool=pool) as svc:
            for name in TENANTS:
                svc.create_workspace(name)
            fingerprints = {name: [] for name in TENANTS}
            for round_index in range(3):
                for name in TENANTS:
                    if name == "alpha" and round_index == 1:
                        # Target the next dispatch: the first shard of
                        # alpha's second batch.
                        pool.schedule[pool.dispatch_ordinal] = kind
                    batch = tenant_batches[name][round_index]
                    for response in svc.workspace(name).recommend_batch(batch):
                        fingerprints[name].append(
                            recommendation_fingerprint(response.result)
                        )
            assert pool.injected == [kind]
            # Answers: every tenant (faulted one included) matches its oracle.
            _assert_matches_oracles(svc, fingerprints, tenant_oracles)
            # Attribution: the fallout landed on alpha, and only alpha.
            stats = pool.tenant_stats()
            alpha_faults = sum(
                stats["alpha"][key]
                for key in ("respawns", "resubmitted_shards", "hung_workers_killed")
            )
            assert alpha_faults > 0
            for name in ("beta", "gamma"):
                assert all(
                    stats[name][key] == 0
                    for key in (
                        "respawns",
                        "resubmitted_shards",
                        "hung_workers_killed",
                        "degraded_batches",
                    )
                ), f"fault fallout leaked into tenant {name}: {stats[name]}"


@needs_fork
@pytest.mark.chaos
@pytest.mark.property
@pytest.mark.slow
class TestTenantChaosMatrix:
    """Random fault schedules over random tenant interleavings (nightly)."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        schedule=st.dictionaries(
            st.integers(min_value=0, max_value=13),
            st.sampled_from(["kill_before", "kill_after", "hang", "drop", "delay", "desync"]),
            max_size=3,
        ),
        order=st.permutations([name for name in TENANTS for _ in range(3)]),
    )
    def test_chaos_preserves_per_tenant_fingerprints(
        self, build_serving_planner, tenant_batches, tenant_oracles, schedule, order
    ):
        template = build_serving_planner()
        config = _tenant_config(template, backend="pooled", pool_size=2)
        pool = FaultInjectingBackend(schedule=schedule, pool_size=2)
        with WorkspaceService(template, config=config, pool=pool) as svc:
            for name in TENANTS:
                svc.create_workspace(name)
            fingerprints = _run_interleaved(svc, tenant_batches, order=order)
            _assert_matches_oracles(svc, fingerprints, tenant_oracles)
