"""Shard-plan construction: coverage, closure, balance and determinism."""

import pytest

from repro.core.planner import CrowdPlannerError


@pytest.fixture(scope="module")
def plan_setup(build_serving_planner, serving_workload):
    planner = build_serving_planner()
    return planner, serving_workload


class TestShardPlan:
    def test_indices_cover_batch_exactly_once(self, plan_setup):
        planner, workload = plan_setup
        plan = planner.shard_plan(workload, 4)
        indices = sorted(i for shard in plan.shards for i in shard.indices)
        assert indices == list(range(len(workload)))
        assert plan.num_queries == len(workload)

    def test_indices_ascending_within_shard(self, plan_setup):
        planner, workload = plan_setup
        plan = planner.shard_plan(workload, 4)
        for shard in plan.shards:
            assert list(shard.indices) == sorted(shard.indices)

    def test_at_most_requested_shards(self, plan_setup):
        planner, workload = plan_setup
        for requested in (1, 2, 3, 5, 64):
            plan = planner.shard_plan(workload, requested)
            assert 1 <= len(plan.shards) <= requested

    def test_deterministic(self, plan_setup):
        planner, workload = plan_setup
        assert planner.shard_plan(workload, 4) == planner.shard_plan(workload, 4)

    def test_destination_cells_cover_member_queries(self, plan_setup):
        planner, workload = plan_setup
        plan = planner.shard_plan(workload, 4)
        truths = planner.truths
        for shard in plan.shards:
            for index in shard.indices:
                destination = planner.network.node_location(workload[index].destination)
                assert truths.destination_cell_of(destination) in shard.destination_cells

    def test_cross_shard_queries_cannot_interact(self, plan_setup):
        """Queries in different shards are farther apart than the interaction
        reach in origin cells or destination cells — the closure invariant
        that makes sharded execution order-independent."""
        planner, workload = plan_setup
        plan = planner.shard_plan(workload, 8)
        assert len(plan.shards) > 1, "workload must actually shard for this test"
        cell = plan.cell_size_m

        def od_cells(query):
            origin = planner.network.node_location(query.origin)
            destination = planner.network.node_location(query.destination)
            return (
                int(origin.x // cell),
                int(origin.y // cell),
                int(destination.x // cell),
                int(destination.y // cell),
            )

        shard_cells = [[od_cells(workload[i]) for i in shard.indices] for shard in plan.shards]
        for a in range(len(shard_cells)):
            for b in range(a + 1, len(shard_cells)):
                for ka in shard_cells[a]:
                    for kb in shard_cells[b]:
                        origin_close = (
                            abs(ka[0] - kb[0]) <= plan.cell_reach
                            and abs(ka[1] - kb[1]) <= plan.cell_reach
                        )
                        destination_close = (
                            abs(ka[2] - kb[2]) <= plan.cell_reach
                            and abs(ka[3] - kb[3]) <= plan.cell_reach
                        )
                        assert not (origin_close and destination_close)

    def test_reach_covers_both_radii(self, plan_setup):
        planner, workload = plan_setup
        plan = planner.shard_plan(workload, 2)
        assert plan.interaction_radius_m == max(
            planner.config.truth_reuse_radius_m, planner.evaluator.neighbourhood_radius_m
        )
        assert plan.cell_reach * plan.cell_size_m >= plan.interaction_radius_m

    def test_rejects_zero_shards(self, plan_setup):
        planner, workload = plan_setup
        with pytest.raises(CrowdPlannerError):
            planner.shard_plan(workload, 0)

    def test_empty_batch(self, plan_setup):
        planner, _ = plan_setup
        plan = planner.shard_plan([], 4)
        assert plan.shards == ()
        assert plan.num_queries == 0
        assert plan.largest_shard_fraction() == 0.0

    def test_dominant_destination_still_shards(self, build_serving_planner, dominant_workload):
        planner = build_serving_planner()
        plan = planner.shard_plan(dominant_workload, 4)
        assert len(plan.shards) > 1
        indices = sorted(i for shard in plan.shards for i in shard.indices)
        assert indices == list(range(len(dominant_workload)))


class TestTruthPartitioning:
    def test_partition_selects_by_destination_cell(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        planner.recommend_batch(serving_workload[:40])
        truths = planner.truths
        assert len(truths) > 0
        all_cells = {truths.destination_cell_of(t.destination) for t in truths.all()}
        some_cells = set(list(all_cells)[: max(1, len(all_cells) // 2)])
        partition = truths.partition_by_cells(some_cells)
        expected = [
            t.truth_id
            for t in truths.all()
            if truths.destination_cell_of(t.destination) in some_cells
        ]
        assert [t.truth_id for t in partition.all()] == expected  # ids + order preserved

    def test_absorb_renumbers_in_order(self, build_serving_planner, serving_workload):
        planner = build_serving_planner()
        planner.recommend_batch(serving_workload[:30])
        donor = build_serving_planner()
        donor.recommend_batch(serving_workload[30:60])
        new_truths = donor.truths.all()
        before = len(planner.truths)
        merged = planner.truths.absorb(new_truths)
        assert len(planner.truths) == before + len(new_truths)
        merged_ids = [t.truth_id for t in merged]
        assert merged_ids == sorted(merged_ids)
        for original, adopted in zip(new_truths, merged):
            assert adopted.route.path == original.route.path
            assert adopted.origin == original.origin
            assert adopted.destination == original.destination
            assert adopted.time_slot == original.time_slot
            assert adopted.confidence == original.confidence
