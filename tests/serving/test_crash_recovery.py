"""Crash-recovery acceptance: kill -9 the *parent* mid-stream and recover.

The recovery contract under test: after SIGKILLing the service process at an
arbitrary point of a journaled stream, ``RecommendationService.recover``
replays snapshot + intact tail into a fresh planner, the journal's record
count names exactly which batches still need executing, and every batch
redeemed from there is fingerprint-identical to an uninterrupted sequential
run.  The hypothesis matrix generalises the per-fault tests: *any* schedule
of injected worker faults leaves redeemed results oracle-identical.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
import warnings

import pytest

from repro.config import ServiceConfig
from repro.serving import RecommendationService, recommendation_fingerprint

from .faults import FAULT_KINDS, FAST_SUPERVISION, FaultInjectingBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")

pytestmark = [needs_fork, pytest.mark.chaos]

CHUNK = 16


def _chunks(workload, size=CHUNK):
    return [list(workload[i : i + size]) for i in range(0, len(workload), size)]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by another user
        return True
    return True


def _fingerprints(responses):
    return [recommendation_fingerprint(response.result) for response in responses]


def _journaled_config(planner, journal_dir, **overrides) -> ServiceConfig:
    config = ServiceConfig.from_planner_config(planner.config)
    overrides.setdefault("snapshot_every_truths", 24)
    return dataclasses.replace(
        config,
        backend="pooled",
        pool_size=2,
        journal_path=str(journal_dir),
        **overrides,
    )


def _stream_until_killed(planner, workload, journal_dir, progress_path):
    """Child-process body: serve the whole stream, journaling each batch.

    Runs under a ``fork`` context, so the prepared planner is inherited
    directly — no pickling.  The parent SIGKILLs this process mid-stream;
    anything printed or raised after that point never happens.
    """
    service = RecommendationService(planner, config=_journaled_config(planner, journal_dir))
    for index, chunk in enumerate(_chunks(workload)):
        service.results(service.submit(chunk))
        # Progress is advisory (tells the parent when to shoot); the journal
        # itself is the only durable truth the recovery relies on.  Worker
        # pids ride along so the parent can check none of them outlive the
        # kill as an orphan.
        with open(progress_path, "w") as handle:
            handle.write("%d|%s" % (index + 1, ",".join(map(str, service.worker_pids()))))
            handle.flush()
            os.fsync(handle.fileno())


class TestParentKillRecovery:
    def test_kill9_parent_midstream_then_recover(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        journal_dir = tmp_path / "journal"
        progress_path = tmp_path / "progress"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_stream_until_killed,
            args=(build_serving_planner(), serving_workload, journal_dir, progress_path),
        )
        child.start()
        try:
            deadline = time.monotonic() + 120.0
            progress = ""
            while time.monotonic() < deadline:
                progress = progress_path.read_text() if progress_path.exists() else ""
                if progress and int(progress.split("|")[0]) >= 2:
                    break
                assert child.is_alive(), "stream child died before it could be killed"
                time.sleep(0.02)
            else:
                pytest.fail("stream child made no progress to kill into")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join(timeout=30.0)
            assert not child.is_alive()

        # The child's pool workers must notice the EOF and exit — none may
        # linger as an orphan re-parented to init (each worker closes its
        # fork-inherited copies of the parent-side pipe ends at startup
        # precisely so this EOF is deliverable).
        worker_pids = [int(pid) for pid in progress.split("|")[1].split(",") if pid]
        assert worker_pids, "stream child reported no pool workers"
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            alive = [pid for pid in worker_pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        else:
            for pid in alive:  # pragma: no cover - diagnostic cleanup
                os.kill(pid, signal.SIGKILL)
            pytest.fail(f"orphaned pool workers survived the parent kill: {alive}")

        planner = build_serving_planner()
        with warnings.catch_warnings():
            # A kill mid-append legitimately leaves a torn tail; recovery
            # truncates it with a RuntimeWarning rather than crashing.
            warnings.simplefilter("ignore", RuntimeWarning)
            recovered = RecommendationService.recover(
                planner, journal_dir, config=_journaled_config(planner, journal_dir)
            )
        executed = recovered.journal.batch_count
        assert executed >= 2, "journal lost durably acknowledged batches"
        chunks = _chunks(serving_workload)
        assert executed <= len(chunks)
        produced = []
        for chunk in chunks[executed:]:
            produced.extend(_fingerprints(recovered.results(recovered.submit(chunk))))
        recovered.close()
        oracle = sequential_oracle["plain"]["fingerprints"]
        assert produced == oracle[executed * CHUNK :]

    def test_double_recovery_is_idempotent(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        """Recovering, crashing again without executing anything, and
        recovering again lands on the same state (replay is idempotent)."""
        journal_dir = tmp_path / "journal"
        planner = build_serving_planner()
        config = _journaled_config(planner, journal_dir)
        service = RecommendationService(planner, config=config)
        chunks = _chunks(serving_workload)
        for chunk in chunks[:3]:
            service.results(service.submit(chunk))
        service.backend.close()  # crash: journal never closed cleanly

        first = build_serving_planner()
        RecommendationService.recover(first, journal_dir, config=config).backend.close()
        second = build_serving_planner()
        recovered = RecommendationService.recover(second, journal_dir, config=config)
        assert recovered.journal.batch_count == 3
        produced = []
        for chunk in chunks[3:]:
            produced.extend(_fingerprints(recovered.results(recovered.submit(chunk))))
        recovered.close()
        assert produced == sequential_oracle["plain"]["fingerprints"][3 * CHUNK :]


@pytest.mark.slow
@pytest.mark.property
class TestChaosMatrix:
    def test_any_fault_schedule_is_oracle_identical(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """Nightly full matrix: for any injected fault schedule — including
        chain-aware ordinals that land on sub-shard dispatches when hotspot
        splitting is on, ``slow`` duty-cycle stragglers, and runs with hedged
        execution armed — redeemed results are fingerprint-identical to the
        sequential oracle."""
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        oracle = sequential_oracle["plain"]["fingerprints"][:64]
        queries = list(serving_workload[:64])

        @settings(
            max_examples=12,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
        )
        @given(
            # Splitting multiplies the dispatch count, so ordinals range past
            # the unsplit job count: high ordinals only fire when sub-shard
            # chains are live, hitting producers mid-chain.
            schedule=st.dictionaries(
                st.integers(min_value=0, max_value=13),
                st.sampled_from(FAULT_KINDS),
                max_size=4,
            ),
            max_shard_fraction=st.sampled_from([None, 0.25, 0.1]),
            # Hedging armed or not: duplicate speculative dispatches must be
            # invisible in the output stream under every fault schedule.
            hedge=st.sampled_from([None, 0.2]),
        )
        def run(schedule, max_shard_fraction, hedge):
            backend = FaultInjectingBackend(
                schedule=schedule,
                pool_size=2,
                max_shard_fraction=max_shard_fraction,
                hedge_after_s=hedge,
                slow_total_s=0.8,
            )
            service = RecommendationService(build_serving_planner(), backend=backend)
            try:
                produced = []
                for start in (0, 32):
                    responses = service.results(service.submit(queries[start : start + 32]))
                    produced.extend(_fingerprints(responses))
                assert produced == oracle
            finally:
                service.close()

        run()

    def test_any_disk_fault_degrades_then_recovers(
        self, tmp_path_factory, build_serving_planner, serving_workload, sequential_oracle
    ):
        """Nightly disk-fault matrix: a dying disk at any append ordinal,
        errno, and stage (write / flush / fsync) under ``journal_on_error=
        "suspend"`` degrades the service without perturbing one answer, and
        recovery replays exactly the durable prefix."""
        import errno

        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        from .faults import FlakyDiskHandle, break_journal_disk

        oracle = sequential_oracle["plain"]["fingerprints"]
        chunks = _chunks(serving_workload)

        @settings(
            max_examples=8,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
        )
        @given(
            fail_at=st.integers(min_value=0, max_value=3),
            code=st.sampled_from([errno.ENOSPC, errno.EIO]),
            stage=st.sampled_from(FlakyDiskHandle.FAIL_STAGES),
        )
        def run(fail_at, code, stage):
            journal_dir = tmp_path_factory.mktemp("disk-chaos") / "journal"
            planner = build_serving_planner()
            # No compaction: rotating generations would swap in a fresh
            # (healthy) segment handle and the injected fault could miss.
            config = _journaled_config(
                planner, journal_dir, journal_on_error="suspend",
                snapshot_every_truths=10_000,
            )
            service = RecommendationService(planner, config=config)
            break_journal_disk(
                service.journal, fail_at_append=fail_at, error=code, fail_on=stage
            )
            produced = []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                for chunk in chunks:
                    produced.extend(_fingerprints(service.results(service.submit(chunk))))
                assert produced == oracle
                assert service.statistics()["resilience"]["journal_suspended"] is True
                service.close()

            fresh = build_serving_planner()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                recovered = RecommendationService.recover(fresh, journal_dir, config=config)
            # ``write``-stage faults tear before the record lands; ``flush``/
            # ``fsync`` faults may still leave it durable via the buffered
            # handle, so the durable prefix is fail_at or fail_at + 1.
            durable = recovered.journal.batch_count
            assert fail_at <= durable <= fail_at + 1
            tail = []
            for chunk in chunks[durable:]:
                tail.extend(_fingerprints(recovered.results(recovered.submit(chunk))))
            recovered.close()
            assert tail == oracle[durable * CHUNK:]

        run()

    def test_repeated_hangs_across_batches(
        self, build_serving_planner, serving_workload, sequential_oracle
    ):
        """A worker hang in every single batch still streams correctly."""
        schedule = {ordinal: "hang" for ordinal in range(0, 20, 4)}
        backend = FaultInjectingBackend(schedule=schedule, pool_size=2)
        service = RecommendationService(build_serving_planner(), backend=backend)
        with service:
            produced = []
            for chunk in _chunks(serving_workload, size=32):
                produced.extend(_fingerprints(service.results(service.submit(chunk))))
            assert produced == sequential_oracle["plain"]["fingerprints"]
            assert service.statistics()["supervision"]["hung_workers_killed"] >= 2

    def test_chaos_with_journal_and_recovery(
        self, tmp_path, build_serving_planner, serving_workload, sequential_oracle
    ):
        """Faults while journaling, then a crash, then recovery — combined."""
        journal_dir = tmp_path / "journal"
        planner = build_serving_planner()
        config = _journaled_config(planner, journal_dir)
        backend = FaultInjectingBackend(
            schedule={1: "kill_after", 4: "hang"},
            pool_size=2,
            truth_wire=config.truth_wire,
        )
        service = RecommendationService(planner, config=config, backend=backend)
        chunks = _chunks(serving_workload)
        produced = []
        for chunk in chunks[:4]:
            produced.extend(_fingerprints(service.results(service.submit(chunk))))
        service.backend.close()  # crash

        fresh = build_serving_planner()
        recovered = RecommendationService.recover(fresh, journal_dir, config=config)
        assert recovered.journal.batch_count == 4
        for chunk in chunks[4:]:
            produced.extend(_fingerprints(recovered.results(recovered.submit(chunk))))
        recovered.close()
        assert produced == sequential_oracle["plain"]["fingerprints"]
