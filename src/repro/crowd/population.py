"""Synthetic worker population.

The paper's experiments involve hundreds of volunteers; this module creates
their synthetic counterparts.  Each worker gets a home, a workplace, a few
declared familiar places, a response-rate parameter and — crucially — a
*latent knowledge field*: the worker genuinely knows the area around their
anchors, which drives both how accurately they answer (behaviour model) and
how the system should rank them (familiarity model).  Keeping true knowledge
and modelled familiarity separate lets the experiments measure how well
worker selection recovers the former from the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError
from ..roadnet.graph import RoadNetwork
from ..spatial import Point
from ..utils.rng import derive_rng
from ..core.worker import Worker, WorkerPool


@dataclass(frozen=True)
class WorkerPopulationConfig:
    """Parameters of the synthetic worker population."""

    num_workers: int = 80
    familiar_places_per_worker: int = 2
    knowledge_radius_m: float = 2_500.0
    min_response_time_s: float = 60.0
    max_response_time_s: float = 1_800.0
    expert_fraction: float = 0.2
    seed: int = 29

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if self.familiar_places_per_worker < 0:
            raise ConfigurationError("familiar_places_per_worker must be non-negative")
        if self.knowledge_radius_m <= 0:
            raise ConfigurationError("knowledge_radius_m must be positive")
        if self.min_response_time_s <= 0 or self.max_response_time_s < self.min_response_time_s:
            raise ConfigurationError("response time bounds are inconsistent")
        if not 0 <= self.expert_fraction <= 1:
            raise ConfigurationError("expert_fraction must be in [0, 1]")


def generate_worker_pool(
    network: RoadNetwork,
    config: Optional[WorkerPopulationConfig] = None,
) -> WorkerPool:
    """Create the synthetic worker pool.

    A fraction of workers ("experts", e.g. taxi drivers) get wide knowledge:
    their anchors are spread across the city and they answer quickly.  The
    rest are ordinary commuters whose knowledge clusters around home and
    work.
    """
    config = config or WorkerPopulationConfig()
    rng = derive_rng(config.seed, "worker-population")
    box = network.bounding_box()

    def random_point() -> Point:
        return Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))

    pool = WorkerPool()
    for worker_id in range(config.num_workers):
        is_expert = rng.random() < config.expert_fraction
        home = random_point()
        if is_expert:
            workplace = random_point()
            familiar = [random_point() for _ in range(config.familiar_places_per_worker + 2)]
            mean_response = rng.uniform(config.min_response_time_s, config.max_response_time_s / 3)
        else:
            # Commuters work within a few kilometres of home.
            workplace = Point(
                home.x + rng.uniform(-3_000.0, 3_000.0),
                home.y + rng.uniform(-3_000.0, 3_000.0),
            )
            familiar = [
                Point(home.x + rng.uniform(-2_000.0, 2_000.0), home.y + rng.uniform(-2_000.0, 2_000.0))
                for _ in range(config.familiar_places_per_worker)
            ]
            mean_response = rng.uniform(config.min_response_time_s, config.max_response_time_s)
        pool.add(
            Worker(
                worker_id=worker_id,
                home=home,
                workplace=workplace,
                familiar_places=familiar,
                response_rate=1.0 / mean_response,
            )
        )
    return pool
