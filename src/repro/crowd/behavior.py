"""Worker answering behaviour.

When a (simulated) worker is asked "would you prefer the route passing
landmark X?", their answer depends on whether they actually know the area.
The behaviour model turns a worker's *true* spatial knowledge into a
probability of answering the question consistently with the ground-truth best
route:

* a worker whose anchors are close to the landmark answers correctly with
  high probability (up to ``max_accuracy``);
* a worker with no knowledge of the area answers essentially at random
  (``0.5``).

This is the behavioural assumption that makes worker selection matter: tasks
answered by knowledgeable workers yield the right route, tasks answered by
random workers yield noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..spatial import Point
from ..core.worker import Worker


@dataclass(frozen=True)
class AnswerBehaviorModel:
    """Maps true worker knowledge to answer accuracy.

    Attributes
    ----------
    knowledge_radius_m:
        Distance from a worker anchor within which the worker "knows" a
        landmark well.
    max_accuracy:
        Probability of a correct answer for a perfectly knowledgeable worker.
    base_accuracy:
        Probability of a correct answer for a worker with no knowledge
        (random guessing = 0.5).
    """

    knowledge_radius_m: float = 2_500.0
    max_accuracy: float = 0.95
    base_accuracy: float = 0.5

    def __post_init__(self) -> None:
        if self.knowledge_radius_m <= 0:
            raise ConfigurationError("knowledge_radius_m must be positive")
        if not 0.0 <= self.base_accuracy <= self.max_accuracy <= 1.0:
            raise ConfigurationError("need 0 <= base_accuracy <= max_accuracy <= 1")

    def knowledge_of(self, worker: Worker, landmark_anchor: Point) -> float:
        """The worker's true knowledge of the landmark's area, in [0, 1].

        Knowledge decays linearly with the distance from the nearest anchor
        and reaches zero at twice the knowledge radius.
        """
        nearest = min(anchor.distance_to(landmark_anchor) for anchor in worker.anchors())
        if nearest <= self.knowledge_radius_m:
            return 1.0 - 0.5 * (nearest / self.knowledge_radius_m)
        if nearest >= 2 * self.knowledge_radius_m:
            return 0.0
        return 0.5 * (2.0 - nearest / self.knowledge_radius_m)

    def answer_accuracy(self, worker: Worker, landmark_anchor: Point) -> float:
        """Probability the worker answers a question about this landmark correctly."""
        knowledge = self.knowledge_of(worker, landmark_anchor)
        return self.base_accuracy + (self.max_accuracy - self.base_accuracy) * knowledge

    def answer_accuracies(self, worker: Worker, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Per-landmark answer accuracies for one worker, vectorized.

        ``xs``/``ys`` are the anchor coordinates of the landmarks to evaluate.
        This is the batched crowd simulator's one-evaluation-per-worker path:
        the nearest-anchor distance, the piecewise-linear knowledge decay and
        the accuracy blend are computed for the whole landmark set in numpy
        with the same arithmetic as the scalar methods.  (``np.hypot`` may
        disagree with ``math.hypot`` in the final ulp, so individual
        accuracies can differ from :meth:`answer_accuracy` by ~1e-16; a
        sampled answer only changes if a uniform draw lands inside that
        window, and the batched-vs-sequential equivalence tests pin exact
        response equality on seeded scenarios.)
        """
        anchors = worker.anchors()
        ax = np.array([anchor.x for anchor in anchors], dtype=np.float64)
        ay = np.array([anchor.y for anchor in anchors], dtype=np.float64)
        nearest = np.hypot(xs[None, :] - ax[:, None], ys[None, :] - ay[:, None]).min(axis=0)
        return self._accuracies_from_nearest(nearest)

    def answer_accuracies_matrix(self, workers, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """``(worker, landmark)`` answer-accuracy matrix for a whole crew.

        One numpy evaluation covers every (worker, anchor, landmark) triple:
        anchor coordinates are padded to the crew's maximum anchor count with
        ``inf`` (an infinitely far anchor never wins the nearest-anchor
        minimum), so the batched crowd simulator pays numpy dispatch once per
        task rather than once per worker.  Row ``i`` is bit-identical to
        ``answer_accuracies(workers[i], xs, ys)``.
        """
        anchor_lists = [worker.anchors() for worker in workers]
        width = max((len(anchors) for anchors in anchor_lists), default=1)
        ax = np.full((len(anchor_lists), width), np.inf, dtype=np.float64)
        ay = np.full((len(anchor_lists), width), np.inf, dtype=np.float64)
        for i, anchors in enumerate(anchor_lists):
            for j, anchor in enumerate(anchors):
                ax[i, j] = anchor.x
                ay[i, j] = anchor.y
        distances = np.hypot(
            xs[None, None, :] - ax[:, :, None], ys[None, None, :] - ay[:, :, None]
        )
        return self._accuracies_from_nearest(distances.min(axis=1))

    def _accuracies_from_nearest(self, nearest: np.ndarray) -> np.ndarray:
        """Piecewise-linear knowledge decay + accuracy blend, elementwise.

        Mirrors :meth:`knowledge_of` / :meth:`answer_accuracy` operation for
        operation.
        """
        radius = self.knowledge_radius_m
        ratio = nearest / radius
        knowledge = np.where(
            nearest <= radius,
            1.0 - 0.5 * ratio,
            np.where(nearest >= 2.0 * radius, 0.0, 0.5 * (2.0 - ratio)),
        )
        return self.base_accuracy + (self.max_accuracy - self.base_accuracy) * knowledge

    def answer(
        self,
        worker: Worker,
        landmark_anchor: Point,
        truthful_answer: bool,
        rng: random.Random,
    ) -> bool:
        """Sample the worker's yes/no answer given the ground-truth answer."""
        if rng.random() < self.answer_accuracy(worker, landmark_anchor):
            return truthful_answer
        return not truthful_answer
