"""Worker answering behaviour.

When a (simulated) worker is asked "would you prefer the route passing
landmark X?", their answer depends on whether they actually know the area.
The behaviour model turns a worker's *true* spatial knowledge into a
probability of answering the question consistently with the ground-truth best
route:

* a worker whose anchors are close to the landmark answers correctly with
  high probability (up to ``max_accuracy``);
* a worker with no knowledge of the area answers essentially at random
  (``0.5``).

This is the behavioural assumption that makes worker selection matter: tasks
answered by knowledgeable workers yield the right route, tasks answered by
random workers yield noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..exceptions import ConfigurationError
from ..landmarks.model import LandmarkCatalog
from ..spatial import Point
from ..core.worker import Worker


@dataclass(frozen=True)
class AnswerBehaviorModel:
    """Maps true worker knowledge to answer accuracy.

    Attributes
    ----------
    knowledge_radius_m:
        Distance from a worker anchor within which the worker "knows" a
        landmark well.
    max_accuracy:
        Probability of a correct answer for a perfectly knowledgeable worker.
    base_accuracy:
        Probability of a correct answer for a worker with no knowledge
        (random guessing = 0.5).
    """

    knowledge_radius_m: float = 2_500.0
    max_accuracy: float = 0.95
    base_accuracy: float = 0.5

    def __post_init__(self) -> None:
        if self.knowledge_radius_m <= 0:
            raise ConfigurationError("knowledge_radius_m must be positive")
        if not 0.0 <= self.base_accuracy <= self.max_accuracy <= 1.0:
            raise ConfigurationError("need 0 <= base_accuracy <= max_accuracy <= 1")

    def knowledge_of(self, worker: Worker, landmark_anchor: Point) -> float:
        """The worker's true knowledge of the landmark's area, in [0, 1].

        Knowledge decays linearly with the distance from the nearest anchor
        and reaches zero at twice the knowledge radius.
        """
        nearest = min(anchor.distance_to(landmark_anchor) for anchor in worker.anchors())
        if nearest <= self.knowledge_radius_m:
            return 1.0 - 0.5 * (nearest / self.knowledge_radius_m)
        if nearest >= 2 * self.knowledge_radius_m:
            return 0.0
        return 0.5 * (2.0 - nearest / self.knowledge_radius_m)

    def answer_accuracy(self, worker: Worker, landmark_anchor: Point) -> float:
        """Probability the worker answers a question about this landmark correctly."""
        knowledge = self.knowledge_of(worker, landmark_anchor)
        return self.base_accuracy + (self.max_accuracy - self.base_accuracy) * knowledge

    def answer(
        self,
        worker: Worker,
        landmark_anchor: Point,
        truthful_answer: bool,
        rng: random.Random,
    ) -> bool:
        """Sample the worker's yes/no answer given the ground-truth answer."""
        if rng.random() < self.answer_accuracy(worker, landmark_anchor):
            return truthful_answer
        return not truthful_answer
