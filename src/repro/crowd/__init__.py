"""Simulated crowd: worker population generation and answering behaviour."""

from .population import WorkerPopulationConfig, generate_worker_pool
from .behavior import AnswerBehaviorModel
from .simulator import SimulatedCrowd

__all__ = [
    "WorkerPopulationConfig",
    "generate_worker_pool",
    "AnswerBehaviorModel",
    "SimulatedCrowd",
]
