"""The simulated crowd backend.

:class:`SimulatedCrowd` stands in for the mobile clients of real workers: for
every assigned worker it walks the task's question tree, samples each binary
answer from the worker's :class:`~repro.crowd.behavior.AnswerBehaviorModel`
(against the ground-truth driver-preferred route), samples a response time
from the worker's exponential rate, and returns the responses in arrival
order — which is what makes early stopping meaningful.

The default path is *batched*: the behaviour model is evaluated once per
worker over the task's full landmark set (a single vectorized accuracy
computation) instead of once per question, and the question landmarks' anchors
and truth flags are resolved once per task instead of once per (worker,
question).  The original question-by-question path is preserved as
:meth:`SimulatedCrowd.collect_responses_sequential` — the oracle the batched
path is benchmarked and equivalence-tested against.  Both paths consume the
task's derived RNG in the identical order (one uniform draw plus one
exponential draw per question, workers in assignment order), so they return
identical responses.

Randomness is *content-keyed*: each task's RNG is derived from the simulator
seed plus a signature of the task itself (query endpoints, departure time,
selected landmarks and candidate paths), never from invocation counters.
Responses are therefore a pure function of ``(seed, task content, worker
crew)`` — the property the sharded serving engine
(:mod:`repro.serving`) relies on to make multi-process execution
bit-identical to sequential execution, where the same tasks are collected in
a different global order (and in different OS processes).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.planner import CrowdBackend
from ..core.task import Answer, Task, WorkerResponse
from ..core.worker import WorkerPool
from ..exceptions import CrowdPlannerError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import RouteQuery
from ..trajectory.calibration import AnchorCalibrator
from ..utils.rng import derive_rng
from .behavior import AnswerBehaviorModel

GroundTruthProvider = Callable[[RouteQuery], Sequence[int]]
"""Maps a query to the ground-truth driver-preferred node path.

Providers must be pure (the same query always yields the same path): the
batched simulation caches each query's calibrated truth-landmark set, so a
provider whose answer drifts mid-run would desynchronise the batched path
from the sequential oracle.
"""


class SimulatedCrowd(CrowdBackend):
    """Simulates workers answering CrowdPlanner tasks.

    Parameters
    ----------
    pool:
        The worker registry (profiles provide anchors and response rates).
    catalog:
        Landmark catalogue (anchors of the questioned landmarks).
    calibrator:
        Used to express the ground-truth route as a landmark set.
    ground_truth:
        Callable mapping a query to the driver-preferred node path the
        simulated workers' knowledge is based on.
    behavior:
        Accuracy model; defaults to :class:`AnswerBehaviorModel`.
    seed:
        Seed for answer sampling and response times.
    batched:
        When true (the default) each worker's answer accuracies are computed
        in one vectorized behaviour-model evaluation over the task's landmark
        set; ``False`` routes every call through the sequential oracle.
    """

    def __init__(
        self,
        pool: WorkerPool,
        catalog: LandmarkCatalog,
        calibrator: AnchorCalibrator,
        ground_truth: GroundTruthProvider,
        behavior: Optional[AnswerBehaviorModel] = None,
        seed: int = 37,
        batched: bool = True,
    ):
        self.pool = pool
        self.catalog = catalog
        self.calibrator = calibrator
        self.ground_truth = ground_truth
        self.behavior = behavior or AnswerBehaviorModel()
        self.seed = seed
        self.batched = batched
        # Per-query ground-truth landmark sets (batched path only).  The
        # ground-truth provider is deterministic per query, so calibrating its
        # route once per od-pair instead of once per task removes the
        # dominant shared cost when the experiment harness re-queries hot
        # od-pairs.
        self._truth_cache: Dict[Tuple[int, int, float], frozenset] = {}

    # ------------------------------------------------------------- interface
    def collect_responses(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        """Simulate every assigned worker and return responses in arrival order."""
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        if not self.batched:
            return self._collect_sequential(task, worker_ids)
        rng = self._task_rng(task)
        truth_landmarks = self._cached_truth_landmarks(task.query)

        # One pass over the question tree resolves every questioned landmark's
        # anchor and truth flag for the whole task.
        question_landmarks = self._question_landmarks(task)
        anchors = [self.catalog.get(lid).anchor for lid in question_landmarks]
        xs = np.array([anchor.x for anchor in anchors], dtype=np.float64)
        ys = np.array([anchor.y for anchor in anchors], dtype=np.float64)
        position = {lid: i for i, lid in enumerate(question_landmarks)}
        truthful = [lid in truth_landmarks for lid in question_landmarks]
        max_questions = max(1, task.max_questions())

        workers = [self.pool.get(worker_id) for worker_id in worker_ids]
        accuracy_matrix = self.behavior.answer_accuracies_matrix(workers, xs, ys)
        responses = []
        for worker, row in zip(workers, accuracy_matrix):
            responses.append(
                self._walk_tree(task, worker, rng, position, truthful, row.tolist(), max_questions)
            )
        responses.sort(key=lambda response: (response.total_response_time_s, response.worker_id))
        return responses

    def collect_responses_sequential(
        self, task: Task, worker_ids: Sequence[int]
    ) -> List[WorkerResponse]:
        """The original question-by-question simulation (the batched oracle)."""
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        return self._collect_sequential(task, worker_ids)

    # -------------------------------------------------------------- internal
    def _collect_sequential(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        rng = self._task_rng(task)
        truth_landmarks = self._ground_truth_landmarks(task.query)

        responses = []
        for worker_id in worker_ids:
            responses.append(self._simulate_worker(task, worker_id, truth_landmarks, rng))
        responses.sort(key=lambda response: (response.total_response_time_s, response.worker_id))
        return responses

    def _task_rng(self, task: Task) -> random.Random:
        """Derive the task's RNG from its *content* rather than a counter.

        The signature covers everything that distinguishes one crowd task from
        another — the query endpoints and departure time, the selected
        landmark set and every candidate path — so identical tasks sample
        identical randomness no matter when, in what order, or in which
        process they are collected.  (Within one planner batch the same task
        content cannot reach the crowd twice: the first resolution records a
        verified truth that answers any od-identical repeat.)
        """
        query = task.query
        signature = "task-{}-{}-{!r}-{}-{}".format(
            query.origin,
            query.destination,
            query.departure_time_s,
            ",".join(str(lid) for lid in task.selected_landmarks),
            ";".join(
                ",".join(map(str, landmark_route.route.path))
                for landmark_route in task.landmark_routes
            ),
        )
        return derive_rng(self.seed, signature)

    @staticmethod
    def _question_landmarks(task: Task) -> List[int]:
        """Landmark ids questioned anywhere in the task's tree, in first-seen
        preorder (deduplicated)."""
        seen: Dict[int, None] = {}
        stack = [task.question_tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            seen.setdefault(node.landmark_id, None)
            stack.append(node.no_child)
            stack.append(node.yes_child)
        return list(seen)

    def _ground_truth_landmarks(self, query: RouteQuery) -> frozenset:
        path = list(self.ground_truth(query))
        if len(path) < 2:
            raise CrowdPlannerError("ground-truth provider returned an invalid path")
        return frozenset(self.calibrator.calibrate_path(path))

    def _cached_truth_landmarks(self, query: RouteQuery) -> frozenset:
        key = (query.origin, query.destination, query.departure_time_s)
        cached = self._truth_cache.get(key)
        if cached is None:
            if len(self._truth_cache) >= 4096:
                self._truth_cache.clear()
            cached = self._ground_truth_landmarks(query)
            self._truth_cache[key] = cached
        return cached

    def _walk_tree(
        self,
        task: Task,
        worker,
        rng: random.Random,
        position: Dict[int, int],
        truthful: List[bool],
        accuracies: List[float],
        max_questions: int,
    ) -> WorkerResponse:
        """Tree walk over precomputed per-landmark accuracy and truth tables.

        Consumes the RNG exactly like :meth:`_simulate_worker`: one uniform
        draw (the answer) then one exponential draw (the per-question time)
        per question, in traversal order.
        """
        node = task.question_tree.root
        answers: List[Answer] = []
        per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max_questions
        total_time = 0.0
        while not node.is_leaf:
            landmark_id = node.landmark_id
            index = position[landmark_id]
            truthful_answer = truthful[index]
            if rng.random() < accuracies[index]:
                says_yes = truthful_answer
            else:
                says_yes = not truthful_answer
            elapsed = rng.expovariate(1.0 / per_question_time) if per_question_time > 0 else 0.0
            total_time += elapsed
            answers.append(
                Answer(
                    worker_id=worker.worker_id,
                    landmark_id=landmark_id,
                    says_yes=says_yes,
                    response_time_s=elapsed,
                )
            )
            node = node.yes_child if says_yes else node.no_child
        decided = node.decided_route
        chosen_index = task.route_index(decided)
        return WorkerResponse(
            worker_id=worker.worker_id,
            answers=answers,
            chosen_route_index=chosen_index,
            total_response_time_s=total_time,
        )

    def _simulate_worker(
        self,
        task: Task,
        worker_id: int,
        truth_landmarks: frozenset,
        rng: random.Random,
    ) -> WorkerResponse:
        worker = self.pool.get(worker_id)
        node = task.question_tree.root
        answers: List[Answer] = []
        per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max(1, task.max_questions())
        total_time = 0.0
        while not node.is_leaf:
            landmark_id = node.landmark_id
            anchor = self.catalog.get(landmark_id).anchor
            truthful = landmark_id in truth_landmarks
            says_yes = self.behavior.answer(worker, anchor, truthful, rng)
            elapsed = rng.expovariate(1.0 / per_question_time) if per_question_time > 0 else 0.0
            total_time += elapsed
            answers.append(
                Answer(
                    worker_id=worker_id,
                    landmark_id=landmark_id,
                    says_yes=says_yes,
                    response_time_s=elapsed,
                )
            )
            node = node.yes_child if says_yes else node.no_child
        decided = node.decided_route
        chosen_index = task.route_index(decided)
        return WorkerResponse(
            worker_id=worker_id,
            answers=answers,
            chosen_route_index=chosen_index,
            total_response_time_s=total_time,
        )
