"""The simulated crowd backend.

:class:`SimulatedCrowd` stands in for the mobile clients of real workers: for
every assigned worker it walks the task's question tree, samples each binary
answer from the worker's :class:`~repro.crowd.behavior.AnswerBehaviorModel`
(against the ground-truth driver-preferred route), samples a response time
from the worker's exponential rate, and returns the responses in arrival
order — which is what makes early stopping meaningful.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.planner import CrowdBackend
from ..core.task import Answer, Task, WorkerResponse
from ..core.worker import WorkerPool
from ..exceptions import CrowdPlannerError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import RouteQuery
from ..trajectory.calibration import AnchorCalibrator
from ..utils.rng import derive_rng
from .behavior import AnswerBehaviorModel

GroundTruthProvider = Callable[[RouteQuery], Sequence[int]]
"""Maps a query to the ground-truth driver-preferred node path."""


class SimulatedCrowd(CrowdBackend):
    """Simulates workers answering CrowdPlanner tasks.

    Parameters
    ----------
    pool:
        The worker registry (profiles provide anchors and response rates).
    catalog:
        Landmark catalogue (anchors of the questioned landmarks).
    calibrator:
        Used to express the ground-truth route as a landmark set.
    ground_truth:
        Callable mapping a query to the driver-preferred node path the
        simulated workers' knowledge is based on.
    behavior:
        Accuracy model; defaults to :class:`AnswerBehaviorModel`.
    seed:
        Seed for answer sampling and response times.
    """

    def __init__(
        self,
        pool: WorkerPool,
        catalog: LandmarkCatalog,
        calibrator: AnchorCalibrator,
        ground_truth: GroundTruthProvider,
        behavior: Optional[AnswerBehaviorModel] = None,
        seed: int = 37,
    ):
        self.pool = pool
        self.catalog = catalog
        self.calibrator = calibrator
        self.ground_truth = ground_truth
        self.behavior = behavior or AnswerBehaviorModel()
        self.seed = seed
        self._task_counter = 0

    # ------------------------------------------------------------- interface
    def collect_responses(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        """Simulate every assigned worker and return responses in arrival order."""
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        self._task_counter += 1
        rng = derive_rng(self.seed, f"task-{task.task_id}-{self._task_counter}")
        truth_landmarks = self._ground_truth_landmarks(task.query)

        responses = []
        for worker_id in worker_ids:
            responses.append(self._simulate_worker(task, worker_id, truth_landmarks, rng))
        responses.sort(key=lambda response: (response.total_response_time_s, response.worker_id))
        return responses

    # -------------------------------------------------------------- internal
    def _ground_truth_landmarks(self, query: RouteQuery) -> frozenset:
        path = list(self.ground_truth(query))
        if len(path) < 2:
            raise CrowdPlannerError("ground-truth provider returned an invalid path")
        return frozenset(self.calibrator.calibrate_path(path))

    def _simulate_worker(
        self,
        task: Task,
        worker_id: int,
        truth_landmarks: frozenset,
        rng: random.Random,
    ) -> WorkerResponse:
        worker = self.pool.get(worker_id)
        node = task.question_tree.root
        answers: List[Answer] = []
        per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max(1, task.max_questions())
        total_time = 0.0
        while not node.is_leaf:
            landmark_id = node.landmark_id
            anchor = self.catalog.get(landmark_id).anchor
            truthful = landmark_id in truth_landmarks
            says_yes = self.behavior.answer(worker, anchor, truthful, rng)
            elapsed = rng.expovariate(1.0 / per_question_time) if per_question_time > 0 else 0.0
            total_time += elapsed
            answers.append(
                Answer(
                    worker_id=worker_id,
                    landmark_id=landmark_id,
                    says_yes=says_yes,
                    response_time_s=elapsed,
                )
            )
            node = node.yes_child if says_yes else node.no_child
        decided = node.decided_route
        chosen_index = task.route_index(decided)
        return WorkerResponse(
            worker_id=worker_id,
            answers=answers,
            chosen_route_index=chosen_index,
            total_response_time_s=total_time,
        )
