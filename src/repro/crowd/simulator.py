"""The simulated crowd backend.

:class:`SimulatedCrowd` stands in for the mobile clients of real workers: for
every assigned worker it walks the task's question tree, samples each binary
answer from the worker's :class:`~repro.crowd.behavior.AnswerBehaviorModel`
(against the ground-truth driver-preferred route), samples a response time
from the worker's exponential rate, and returns the responses in arrival
order — which is what makes early stopping meaningful.

The default path is *columnar*: the behaviour model is evaluated once per
crew over the task's full landmark set (a single vectorized accuracy
computation), the question tree is flattened once per task into parallel
index arrays, and every worker's walk appends scalars to flat columns — a
:class:`~repro.core.task.ResponseBlock` — instead of building
:class:`~repro.core.task.Answer`/:class:`~repro.core.task.WorkerResponse`
object trees.  Objects are materialized lazily at the planner boundary
(:meth:`ResponseBlock.materialize`).  Two oracles are preserved:

* :meth:`SimulatedCrowd.collect_responses_objects` — the batched tree walk
  that builds answer objects eagerly (what the columnar path is benchmarked
  and equivalence-tested against in the ``crowd_columnar`` suite);
* :meth:`SimulatedCrowd.collect_responses_sequential` — the original
  question-by-question simulation (the oracle of the ``crowd_batch`` suite).

All three paths consume the task's derived RNG in the identical order (one
uniform draw plus one exponential draw per question, workers in assignment
order), so they return identical responses.

Randomness is *content-keyed*: each task's RNG is derived from the simulator
seed plus a signature of the task itself (query endpoints, departure time,
selected landmarks and candidate paths), never from invocation counters.
Responses are therefore a pure function of ``(seed, task content, worker
crew)`` — the property the sharded serving engine
(:mod:`repro.serving`) relies on to make multi-process execution
bit-identical to sequential execution, where the same tasks are collected in
a different global order (and in different OS processes).
"""

from __future__ import annotations

import math
import random
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.planner import CrowdBackend
from ..core.task import Answer, ResponseBlock, Task, WorkerResponse
from ..core.worker import WorkerPool
from ..exceptions import CrowdPlannerError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import RouteQuery
from ..trajectory.calibration import AnchorCalibrator
from ..utils.rng import SeedSequence, derive_rng
from .behavior import AnswerBehaviorModel

GroundTruthProvider = Callable[[RouteQuery], Sequence[int]]
"""Maps a query to the ground-truth driver-preferred node path.

Providers must be pure (the same query always yields the same path): the
batched simulation caches each query's calibrated truth-landmark set, so a
provider whose answer drifts mid-run would desynchronise the batched path
from the sequential oracle.
"""


class _CompiledTree:
    """A task's question tree flattened into parallel index arrays.

    The walk of the object path chases ``QuestionNode`` attributes and a
    landmark-position dict per question; the compiled form replaces every
    step with list indexing: node ``i`` asks about landmark *position*
    ``landmark_pos[i]`` (an index into :attr:`landmark_ids`, ``-1`` for a
    leaf), branches to ``yes_child[i]``/``no_child[i]``, and a leaf resolves
    to candidate-route index ``route_index[i]``.  Anchor coordinate columns
    are resolved once per tree, so repeated collections of the same task
    (benchmark rounds, re-queried tasks) skip the catalogue walk entirely.

    Compiled trees are cached per ``QuestionTree`` *identity* (trees are
    immutable once built) in a :class:`weakref.WeakKeyDictionary`, so the
    cache can never outlive the tasks it serves.  Because a tree belongs to
    exactly one task, per-task derived state that is expensive to recompute
    on repeated collections lives here too: the content-derived RNG seed,
    the per-landmark ground-truth flags, and the behaviour-model accuracy
    rows per worker crew (worker anchors are registration-time profile data
    — the same assumption the familiarity model's raw matrix rests on — so
    the rows are a pure function of ``(tree, crew)``).
    """

    __slots__ = (
        "landmark_ids",
        "xs",
        "ys",
        "landmark_pos",
        "yes_child",
        "no_child",
        "route_index",
        "max_questions",
        "rng_seed",
        "truthful",
        "accuracy_rows",
    )

    def __init__(self, task: Task, catalog: LandmarkCatalog):
        landmark_ids: List[int] = []
        position: Dict[int, int] = {}
        landmark_pos: List[int] = []
        yes_child: List[int] = []
        no_child: List[int] = []
        route_index: List[int] = []

        # Preorder flatten; children are appended after their parent, so the
        # node at index 0 is the root.  Landmark first-seen order matches the
        # object path's `_question_landmarks` (yes-subtree first).
        stack = [(task.question_tree.root, -1, True)]
        while stack:
            node, parent, is_yes = stack.pop()
            index = len(landmark_pos)
            if parent >= 0:
                if is_yes:
                    yes_child[parent] = index
                else:
                    no_child[parent] = index
            if node.is_leaf:
                landmark_pos.append(-1)
                yes_child.append(-1)
                no_child.append(-1)
                route_index.append(task.route_index(node.decided_route))
                continue
            landmark_id = node.landmark_id
            pos = position.get(landmark_id)
            if pos is None:
                pos = len(landmark_ids)
                position[landmark_id] = pos
                landmark_ids.append(landmark_id)
            landmark_pos.append(pos)
            yes_child.append(-1)
            no_child.append(-1)
            route_index.append(-1)
            # Pop order: yes child is flattened first (first-seen parity
            # with the object path's stack, which pushes no then yes last).
            stack.append((node.no_child, index, False))
            stack.append((node.yes_child, index, True))

        self.landmark_ids = landmark_ids
        self.landmark_pos = landmark_pos
        self.yes_child = yes_child
        self.no_child = no_child
        self.route_index = route_index
        anchors = [catalog.get(lid).anchor for lid in landmark_ids]
        self.xs = np.array([anchor.x for anchor in anchors], dtype=np.float64)
        self.ys = np.array([anchor.y for anchor in anchors], dtype=np.float64)
        self.max_questions = max(1, task.max_questions())
        self.rng_seed: Optional[int] = None
        self.truthful: Optional[List[bool]] = None
        self.accuracy_rows: Dict[Tuple[int, ...], List[List[float]]] = {}


class SimulatedCrowd(CrowdBackend):
    """Simulates workers answering CrowdPlanner tasks.

    Parameters
    ----------
    pool:
        The worker registry (profiles provide anchors and response rates).
    catalog:
        Landmark catalogue (anchors of the questioned landmarks).
    calibrator:
        Used to express the ground-truth route as a landmark set.
    ground_truth:
        Callable mapping a query to the driver-preferred node path the
        simulated workers' knowledge is based on.
    behavior:
        Accuracy model; defaults to :class:`AnswerBehaviorModel`.
    seed:
        Seed for answer sampling and response times.
    batched:
        When true (the default) responses are produced columnar (one
        vectorized behaviour-model evaluation per crew, compiled tree walk,
        flat columns); ``False`` routes every call through the sequential
        oracle and disables the columnar fast path.
    use_population_accuracies:
        When true (the default) a familiarity refresh
        (:meth:`refresh_population_accuracies`, called from
        :meth:`CrowdPlanner.prepare_workers <repro.core.planner.CrowdPlanner.prepare_workers>`)
        precomputes one population-level ``(worker, landmark)`` accuracy
        matrix over the whole pool and catalogue; per-task crew rows are
        then plain list slices of it, removing the last per-task numpy
        dispatch from the columnar hot path.  Slices are bit-identical to
        the per-task matrix (the computation is elementwise per (worker,
        landmark) and an ``inf``-padded anchor never wins the
        nearest-anchor minimum); ``False`` keeps the per-task evaluation,
        which stays in place as the equivalence oracle and the fallback
        for workers or landmarks registered after the refresh.
    """

    def __init__(
        self,
        pool: WorkerPool,
        catalog: LandmarkCatalog,
        calibrator: AnchorCalibrator,
        ground_truth: GroundTruthProvider,
        behavior: Optional[AnswerBehaviorModel] = None,
        seed: int = 37,
        batched: bool = True,
        use_population_accuracies: bool = True,
    ):
        self.pool = pool
        self.catalog = catalog
        self.calibrator = calibrator
        self.ground_truth = ground_truth
        self.behavior = behavior or AnswerBehaviorModel()
        self.seed = seed
        self.batched = batched
        self.use_population_accuracies = use_population_accuracies
        # Population accuracy matrix, rebuilt by refresh_population_accuracies:
        # (worker_id -> full accuracy row, landmark_id -> column index).
        self._population: Optional[
            Tuple[Dict[int, List[float]], Dict[int, int]]
        ] = None
        # Per-query ground-truth landmark sets (batched path only).  The
        # ground-truth provider is deterministic per query, so calibrating its
        # route once per od-pair instead of once per task removes the
        # dominant shared cost when the experiment harness re-queries hot
        # od-pairs.
        self._truth_cache: Dict[Tuple[int, int, float], frozenset] = {}
        # Compiled question trees, keyed by tree identity (weak: dies with
        # the task).
        self._compiled_trees: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------- interface
    def collect_responses(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        """Simulate every assigned worker and return responses in arrival order."""
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        if not self.batched:
            return self._collect_sequential(task, worker_ids)
        return self.collect_responses_block(task, worker_ids).to_responses()

    def collect_responses_block(
        self, task: Task, worker_ids: Sequence[int]
    ) -> Optional[ResponseBlock]:
        """The columnar fast path: one :class:`ResponseBlock` per task.

        Returns ``None`` when the simulator was built with ``batched=False``
        (the planner then falls back to :meth:`collect_responses`, keeping
        the pure object path exercisable end to end).
        """
        if not self.batched:
            return None
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        tree = self._compiled_tree(task)
        # The RNG seed, truth flags and crew accuracy rows are pure functions
        # of the task content (and static worker profiles): computed on the
        # first collection, reused on repeats.
        if tree.rng_seed is None:
            tree.rng_seed = SeedSequence(self.seed).seed_for(self._task_signature(task))
        rng = random.Random(tree.rng_seed)
        truthful = tree.truthful
        if truthful is None:
            truth_landmarks = self._cached_truth_landmarks(task.query)
            truthful = [lid in truth_landmarks for lid in tree.landmark_ids]
            tree.truthful = truthful
        max_questions = tree.max_questions

        crew = tuple(worker_ids)
        workers = [self.pool.get(worker_id) for worker_id in worker_ids]
        accuracies = tree.accuracy_rows.get(crew)
        if accuracies is None:
            accuracies = self._crew_accuracies(tree, workers)
            if len(tree.accuracy_rows) >= 8:
                tree.accuracy_rows.clear()
            tree.accuracy_rows[crew] = accuracies

        # Flat columns, appended scalar-by-scalar during the walks; the
        # numpy conversion happens once per task after arrival sorting.
        response_workers: List[int] = []
        chosen: List[int] = []
        totals: List[float] = []
        counts: List[int] = []
        ans_landmark: List[int] = []
        ans_yes: List[bool] = []
        ans_correct: List[bool] = []
        ans_accuracy: List[float] = []
        ans_time: List[float] = []

        landmark_ids = tree.landmark_ids
        landmark_pos = tree.landmark_pos
        yes_child, no_child = tree.yes_child, tree.no_child
        rng_random = rng.random
        log = math.log
        for worker, row in zip(workers, accuracies):
            per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max_questions
            # rng.expovariate(lambd) is exactly -log(1 - random()) / lambd;
            # inlining it (with lambd rounded once, like the oracle's
            # argument) keeps the draws bit-identical while skipping the
            # method dispatch per question.
            lambd = 1.0 / per_question_time if per_question_time > 0 else 0.0
            total_time = 0.0
            questions = 0
            node = 0
            pos = landmark_pos[0]
            while pos >= 0:
                accuracy = row[pos]
                truthful_answer = truthful[pos]
                says_yes = truthful_answer if rng_random() < accuracy else not truthful_answer
                elapsed = -log(1.0 - rng_random()) / lambd if lambd else 0.0
                total_time += elapsed
                questions += 1
                ans_landmark.append(landmark_ids[pos])
                ans_yes.append(says_yes)
                ans_correct.append(says_yes == truthful_answer)
                ans_accuracy.append(accuracy)
                ans_time.append(elapsed)
                node = yes_child[node] if says_yes else no_child[node]
                pos = landmark_pos[node]
            response_workers.append(worker.worker_id)
            chosen.append(tree.route_index[node])
            totals.append(total_time)
            counts.append(questions)

        # Arrival order: total response time, worker id breaking ties —
        # identical to the object paths' sort.
        order = sorted(range(len(workers)), key=lambda i: (totals[i], response_workers[i]))
        starts = [0] * len(workers)
        acc = 0
        for i, count in enumerate(counts):
            starts[i] = acc
            acc += count
        offsets = [0] * (len(workers) + 1)
        o_landmark: List[int] = []
        o_yes: List[bool] = []
        o_correct: List[bool] = []
        o_accuracy: List[float] = []
        o_time: List[float] = []
        for out_row, i in enumerate(order):
            begin, end = starts[i], starts[i] + counts[i]
            o_landmark.extend(ans_landmark[begin:end])
            o_yes.extend(ans_yes[begin:end])
            o_correct.extend(ans_correct[begin:end])
            o_accuracy.extend(ans_accuracy[begin:end])
            o_time.extend(ans_time[begin:end])
            offsets[out_row + 1] = len(o_landmark)
        return ResponseBlock(
            task=task,
            worker_ids=np.array([response_workers[i] for i in order], dtype=np.int64),
            chosen_route_index=np.array([chosen[i] for i in order], dtype=np.int64),
            total_response_time_s=np.array([totals[i] for i in order], dtype=np.float64),
            answer_offsets=np.array(offsets, dtype=np.int64),
            answer_landmark_ids=np.array(o_landmark, dtype=np.int64),
            answer_says_yes=np.array(o_yes, dtype=bool),
            answer_correct=np.array(o_correct, dtype=bool),
            answer_accuracy=np.array(o_accuracy, dtype=np.float64),
            answer_time_s=np.array(o_time, dtype=np.float64),
        )

    def collect_responses_objects(
        self, task: Task, worker_ids: Sequence[int]
    ) -> List[WorkerResponse]:
        """The batched object path (the columnar path's preserved oracle).

        One vectorized behaviour-model evaluation per crew, then a
        per-worker tree walk building :class:`Answer` objects eagerly —
        the pre-columnar default, kept for the ``crowd_columnar``
        equivalence assertion and benchmark pair.
        """
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        rng = self._task_rng(task)
        truth_landmarks = self._cached_truth_landmarks(task.query)

        # One pass over the question tree resolves every questioned landmark's
        # anchor and truth flag for the whole task.
        question_landmarks = self._question_landmarks(task)
        anchors = [self.catalog.get(lid).anchor for lid in question_landmarks]
        xs = np.array([anchor.x for anchor in anchors], dtype=np.float64)
        ys = np.array([anchor.y for anchor in anchors], dtype=np.float64)
        position = {lid: i for i, lid in enumerate(question_landmarks)}
        truthful = [lid in truth_landmarks for lid in question_landmarks]
        max_questions = max(1, task.max_questions())

        workers = [self.pool.get(worker_id) for worker_id in worker_ids]
        accuracy_matrix = self.behavior.answer_accuracies_matrix(workers, xs, ys)
        responses = []
        for worker, row in zip(workers, accuracy_matrix):
            responses.append(
                self._walk_tree(task, worker, rng, position, truthful, row.tolist(), max_questions)
            )
        responses.sort(key=lambda response: (response.total_response_time_s, response.worker_id))
        return responses

    def collect_responses_sequential(
        self, task: Task, worker_ids: Sequence[int]
    ) -> List[WorkerResponse]:
        """The original question-by-question simulation (the batched oracle)."""
        if not worker_ids:
            raise CrowdPlannerError("collect_responses called with no workers")
        return self._collect_sequential(task, worker_ids)

    # ------------------------------------------------- population accuracies
    def refresh_population_accuracies(self) -> None:
        """Precompute the population ``(worker, landmark)`` accuracy matrix.

        Called whenever the familiarity model is (re)fitted — worker anchors
        are registration-time profile data, so the matrix is valid until the
        next refresh changes the population.  One vectorized evaluation over
        every pool worker and catalogue landmark replaces all later per-task
        ``answer_accuracies_matrix`` calls with pure-list slicing (see
        :meth:`_crew_accuracies`).  A no-op (clearing any stale matrix) when
        the columnar path or the knob is off, or the pool/catalogue is empty.
        """
        self._population = None
        if not (self.batched and self.use_population_accuracies):
            return
        workers = self.pool.workers()
        landmarks = self.catalog.all()
        if not workers or not landmarks:
            return
        xs = np.array([lm.anchor.x for lm in landmarks], dtype=np.float64)
        ys = np.array([lm.anchor.y for lm in landmarks], dtype=np.float64)
        matrix = self.behavior.answer_accuracies_matrix(workers, xs, ys)
        worker_rows = {
            worker.worker_id: row for worker, row in zip(workers, matrix.tolist())
        }
        landmark_cols = {lm.landmark_id: j for j, lm in enumerate(landmarks)}
        self._population = (worker_rows, landmark_cols)

    def _crew_accuracies(self, tree: _CompiledTree, workers) -> List[List[float]]:
        """The crew's accuracy rows over the tree's landmark set.

        Sliced out of the population matrix when one is current — each
        (worker, landmark) cell of the population matrix is computed by the
        same elementwise arithmetic as the per-task call, and the wider
        ``inf`` anchor padding never wins the nearest-anchor minimum, so
        slices are bit-identical to the per-task evaluation below, which
        remains the equivalence oracle and the fallback for any worker or
        landmark the refresh has not seen.
        """
        population = self._population
        if population is not None:
            worker_rows, landmark_cols = population
            try:
                cols = [landmark_cols[lid] for lid in tree.landmark_ids]
                return [
                    [worker_rows[worker.worker_id][col] for col in cols]
                    for worker in workers
                ]
            except KeyError:
                pass  # late-registered worker or landmark
        return self.behavior.answer_accuracies_matrix(workers, tree.xs, tree.ys).tolist()

    # -------------------------------------------------------------- internal
    def _compiled_tree(self, task: Task) -> _CompiledTree:
        tree = self._compiled_trees.get(task.question_tree)
        if tree is None:
            tree = _CompiledTree(task, self.catalog)
            self._compiled_trees[task.question_tree] = tree
        return tree

    def _collect_sequential(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        rng = self._task_rng(task)
        truth_landmarks = self._ground_truth_landmarks(task.query)

        responses = []
        for worker_id in worker_ids:
            responses.append(self._simulate_worker(task, worker_id, truth_landmarks, rng))
        responses.sort(key=lambda response: (response.total_response_time_s, response.worker_id))
        return responses

    def _task_rng(self, task: Task) -> random.Random:
        """Derive the task's RNG from its *content* rather than a counter.

        The signature (:meth:`_task_signature`) covers everything that
        distinguishes one crowd task from another, so identical tasks sample
        identical randomness no matter when, in what order, or in which
        process they are collected.  (Within one planner batch the same task
        content cannot reach the crowd twice: the first resolution records a
        verified truth that answers any od-identical repeat.)
        """
        return derive_rng(self.seed, self._task_signature(task))

    @staticmethod
    def _task_signature(task: Task) -> str:
        """The task-content string the per-task RNG is derived from.

        Covers the query endpoints and departure time, the selected landmark
        set and every candidate path.  ``derive_rng(seed, signature)`` and
        ``random.Random(SeedSequence(seed).seed_for(signature))`` are the
        same RNG by construction — the columnar path caches the derived seed
        integer per task and rebuilds the ``Random`` from it.
        """
        query = task.query
        return "task-{}-{}-{!r}-{}-{}".format(
            query.origin,
            query.destination,
            query.departure_time_s,
            ",".join(str(lid) for lid in task.selected_landmarks),
            ";".join(
                ",".join(map(str, landmark_route.route.path))
                for landmark_route in task.landmark_routes
            ),
        )

    @staticmethod
    def _question_landmarks(task: Task) -> List[int]:
        """Landmark ids questioned anywhere in the task's tree, in first-seen
        preorder (deduplicated)."""
        seen: Dict[int, None] = {}
        stack = [task.question_tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            seen.setdefault(node.landmark_id, None)
            stack.append(node.no_child)
            stack.append(node.yes_child)
        return list(seen)

    def _ground_truth_landmarks(self, query: RouteQuery) -> frozenset:
        path = list(self.ground_truth(query))
        if len(path) < 2:
            raise CrowdPlannerError("ground-truth provider returned an invalid path")
        return frozenset(self.calibrator.calibrate_path(path))

    def _cached_truth_landmarks(self, query: RouteQuery) -> frozenset:
        key = (query.origin, query.destination, query.departure_time_s)
        cached = self._truth_cache.get(key)
        if cached is None:
            if len(self._truth_cache) >= 4096:
                self._truth_cache.clear()
            cached = self._ground_truth_landmarks(query)
            self._truth_cache[key] = cached
        return cached

    def _walk_tree(
        self,
        task: Task,
        worker,
        rng: random.Random,
        position: Dict[int, int],
        truthful: List[bool],
        accuracies: List[float],
        max_questions: int,
    ) -> WorkerResponse:
        """Tree walk over precomputed per-landmark accuracy and truth tables.

        Consumes the RNG exactly like :meth:`_simulate_worker`: one uniform
        draw (the answer) then one exponential draw (the per-question time)
        per question, in traversal order.
        """
        node = task.question_tree.root
        answers: List[Answer] = []
        per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max_questions
        total_time = 0.0
        while not node.is_leaf:
            landmark_id = node.landmark_id
            index = position[landmark_id]
            truthful_answer = truthful[index]
            if rng.random() < accuracies[index]:
                says_yes = truthful_answer
            else:
                says_yes = not truthful_answer
            elapsed = rng.expovariate(1.0 / per_question_time) if per_question_time > 0 else 0.0
            total_time += elapsed
            answers.append(
                Answer(
                    worker_id=worker.worker_id,
                    landmark_id=landmark_id,
                    says_yes=says_yes,
                    response_time_s=elapsed,
                )
            )
            node = node.yes_child if says_yes else node.no_child
        decided = node.decided_route
        chosen_index = task.route_index(decided)
        return WorkerResponse(
            worker_id=worker.worker_id,
            answers=answers,
            chosen_route_index=chosen_index,
            total_response_time_s=total_time,
        )

    def _simulate_worker(
        self,
        task: Task,
        worker_id: int,
        truth_landmarks: frozenset,
        rng: random.Random,
    ) -> WorkerResponse:
        worker = self.pool.get(worker_id)
        node = task.question_tree.root
        answers: List[Answer] = []
        per_question_time = 1.0 / max(worker.response_rate, 1e-9) / max(1, task.max_questions())
        total_time = 0.0
        while not node.is_leaf:
            landmark_id = node.landmark_id
            anchor = self.catalog.get(landmark_id).anchor
            truthful = landmark_id in truth_landmarks
            says_yes = self.behavior.answer(worker, anchor, truthful, rng)
            elapsed = rng.expovariate(1.0 / per_question_time) if per_question_time > 0 else 0.0
            total_time += elapsed
            answers.append(
                Answer(
                    worker_id=worker_id,
                    landmark_id=landmark_id,
                    says_yes=says_yes,
                    response_time_s=elapsed,
                )
            )
            node = node.yes_child if says_yes else node.no_child
        decided = node.decided_route
        chosen_index = task.route_index(decided)
        return WorkerResponse(
            worker_id=worker_id,
            answers=answers,
            chosen_route_index=chosen_index,
            total_response_time_s=total_time,
        )
