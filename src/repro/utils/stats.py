"""Statistics helpers shared across the library.

These are intentionally small, dependency-light functions: empirical entropy
for the question-ordering information strength, normalisation helpers for
significance scores, and simple summary statistics for the experiment
harness.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def empirical_entropy(labels: Iterable) -> float:
    """Return the empirical Shannon entropy (in bits) of a label multiset.

    The question-ordering component treats each candidate route as its own
    class, so the entropy of ``n`` remaining candidate routes is ``log2(n)``.

    >>> empirical_entropy(["a", "a", "b", "b"])
    1.0
    >>> empirical_entropy(["a"])
    0.0
    """
    counts = Counter(labels)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def normalize(values: Sequence[float]) -> List[float]:
    """Scale values into [0, 1] by min-max normalisation.

    A constant sequence maps to all ones (the values are equally significant
    rather than equally insignificant), and an empty sequence maps to an
    empty list.
    """
    if not values:
        return []
    low = min(values)
    high = max(values)
    if math.isclose(high, low):
        return [1.0] * len(values)
    span = high - low
    return [(value - low) / span for value in values]


def normalize_to_sum(values: Sequence[float]) -> List[float]:
    """Scale non-negative values so they sum to one (uniform if all zero)."""
    if not values:
        return []
    total = float(sum(values))
    if total <= 0:
        return [1.0 / len(values)] * len(values)
    return [value / total for value in values]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return float(sum(values)) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence is undefined")
    if not 0 <= q <= 100:
        raise ValueError("q must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    weight = rank - lower
    return float(ordered[lower] * (1 - weight) + ordered[upper] * weight)


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sequence (0 = equal, ->1 = skewed).

    Used to characterise how skewed the inferred landmark significance
    distribution is.
    """
    cleaned = [v for v in values if v >= 0]
    if not cleaned or sum(cleaned) == 0:
        return 0.0
    ordered = sorted(cleaned)
    n = len(ordered)
    cumulative = 0.0
    for index, value in enumerate(ordered, start=1):
        cumulative += index * value
    total = sum(ordered)
    return (2 * cumulative) / (n * total) - (n + 1) / n


def weighted_choice(options: Sequence[T], weights: Sequence[float], rng: random.Random) -> T:
    """Pick one option with probability proportional to its weight."""
    if len(options) != len(weights):
        raise ValueError("options and weights must have the same length")
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    probabilities = normalize_to_sum(weights)
    threshold = rng.random()
    cumulative = 0.0
    for option, probability in zip(options, probabilities):
        cumulative += probability
        if threshold <= cumulative:
            return option
    return options[-1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return a small summary (count/mean/p50/p95/min/max) of a sequence."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def pairs(items: Sequence[T]) -> List[Tuple[T, T]]:
    """Return all unordered pairs of a sequence."""
    result: List[Tuple[T, T]] = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            result.append((items[i], items[j]))
    return result
