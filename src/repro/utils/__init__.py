"""Small shared utilities: seeded randomness, statistics helpers and timers."""

from .rng import SeedSequence, derive_rng, spawn_seeds
from .stats import (
    empirical_entropy,
    gini,
    mean,
    normalize,
    percentile,
    weighted_choice,
)
from .timer import Timer

__all__ = [
    "SeedSequence",
    "derive_rng",
    "spawn_seeds",
    "empirical_entropy",
    "gini",
    "mean",
    "normalize",
    "percentile",
    "weighted_choice",
    "Timer",
]
