"""Deterministic random-number helpers.

Every stochastic component in the library receives its randomness from a
``random.Random`` (or ``numpy.random.Generator``) instance derived from an
explicit seed.  Nothing reads the global random state, which keeps the
experiments reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Iterable, List

import numpy as np


class SeedSequence:
    """A tiny, dependency-free seed derivation helper.

    A :class:`SeedSequence` deterministically maps string labels to child
    seeds, so independent components (trajectory generator, crowd simulator,
    worker population, ...) get decorrelated but reproducible randomness from
    a single root seed.

    Example
    -------
    >>> seeds = SeedSequence(7)
    >>> seeds.seed_for("crowd") == seeds.seed_for("crowd")
    True
    >>> seeds.seed_for("crowd") != seeds.seed_for("trajectories")
    True
    """

    _MODULUS = 2**63 - 1

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed_for(self, label: str) -> int:
        """Return a deterministic child seed for ``label``."""
        value = self.root_seed & self._MODULUS
        for char in label:
            value = (value * 1_000_003 + ord(char)) % self._MODULUS
        return value

    def rng_for(self, label: str) -> random.Random:
        """Return a ``random.Random`` seeded for ``label``."""
        return random.Random(self.seed_for(label))

    def numpy_rng_for(self, label: str) -> np.random.Generator:
        """Return a ``numpy.random.Generator`` seeded for ``label``."""
        return np.random.default_rng(self.seed_for(label))


def derive_rng(seed: int, label: str = "") -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and an optional label."""
    if label:
        return SeedSequence(seed).rng_for(label)
    return random.Random(seed)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Return ``count`` decorrelated child seeds derived from ``seed``."""
    sequence = SeedSequence(seed)
    return [sequence.seed_for(f"child-{index}") for index in range(count)]


def shuffled(items: Iterable, rng: random.Random) -> list:
    """Return a new shuffled list without mutating the input iterable."""
    result = list(items)
    rng.shuffle(result)
    return result
