"""Worker familiarity scores (Section IV-B).

The familiarity of worker ``w`` with landmark ``l`` combines two signals:

* profile proximity — how close the landmark is to the worker's home, work
  place and declared familiar places; and
* answer history — how often the worker answered questions about this
  landmark correctly (a wrong answer still indicates partial knowledge, so it
  earns a discounted credit ``beta``).

Raw scores form a very sparse worker x landmark matrix ``M``; PMF completes
it by exploiting latent similarity between workers, and the *accumulated*
familiarity of a landmark is the Gaussian-weighted sum of the completed
scores over all landmarks within the knowledge radius ``eta_dis``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import WorkerSelectionError
from ..landmarks.model import LandmarkCatalog
from .pmf import ProbabilisticMatrixFactorization
from .worker import Worker, WorkerPool


class FamiliarityModel:
    """Builds, completes and accumulates the worker-landmark familiarity matrix."""

    def __init__(
        self,
        pool: WorkerPool,
        catalog: LandmarkCatalog,
        config: PlannerConfig = DEFAULT_CONFIG,
        pmf: Optional[ProbabilisticMatrixFactorization] = None,
    ):
        self.pool = pool
        self.catalog = catalog
        self.config = config
        self.pmf = pmf or ProbabilisticMatrixFactorization(latent_dim=config.pmf_latent_dim)
        self._worker_ids = sorted(pool.ids())
        self._landmark_ids = sorted(catalog.ids())
        self._worker_index = {wid: i for i, wid in enumerate(self._worker_ids)}
        self._landmark_index = {lid: j for j, lid in enumerate(self._landmark_ids)}
        self._completed: Optional[np.ndarray] = None
        self._accumulated: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- scores
    def raw_score(self, worker: Worker, landmark_id: int) -> float:
        """The paper's ``f_w^l`` for one worker-landmark pair.

        Distances beyond the knowledge radius ``eta_dis`` are treated as
        infinite (their exponential term vanishes).  Distances are expressed
        in units of the knowledge radius so the exponential stays in a useful
        range regardless of city size.
        """
        landmark = self.catalog.get(landmark_id)
        anchor = landmark.anchor
        radius = self.config.knowledge_radius_m

        def scaled(distance: float) -> float:
            if distance > radius:
                return float("inf")
            return distance / radius

        distance_sum = (
            scaled(anchor.distance_to(worker.home))
            + scaled(anchor.distance_to(worker.workplace))
            + scaled(anchor.distance_to(worker.nearest_familiar_place(anchor)))
        )
        profile_term = 0.0 if math.isinf(distance_sum) else math.exp(-distance_sum)
        history = worker.history_for(landmark_id)
        history_term = history.correct + self.config.familiarity_beta * history.wrong
        return (
            self.config.familiarity_alpha * profile_term
            + (1.0 - self.config.familiarity_alpha) * history_term
        )

    def build_raw_matrix(self) -> np.ndarray:
        """The sparse observed matrix ``M`` (zeros mean "no information")."""
        matrix = np.zeros((len(self._worker_ids), len(self._landmark_ids)))
        for worker_id in self._worker_ids:
            worker = self.pool.get(worker_id)
            row = self._worker_index[worker_id]
            for landmark_id in self._landmark_ids:
                column = self._landmark_index[landmark_id]
                matrix[row, column] = self.raw_score(worker, landmark_id)
        return matrix

    # ------------------------------------------------------------ completion
    def fit(self, use_pmf: bool = True) -> np.ndarray:
        """Build the matrix, optionally complete it with PMF, and accumulate.

        Returns the accumulated familiarity matrix ``M*``.  With
        ``use_pmf=False`` the raw matrix is accumulated directly — the
        ablation the PMF experiment (E6) compares against.
        """
        raw = self.build_raw_matrix()
        if use_pmf and raw.any():
            completed = self.pmf.complete(raw)
        else:
            completed = raw
        self._completed = completed
        self._accumulated = self._accumulate(completed)
        return self._accumulated

    def _accumulate(self, completed: np.ndarray) -> np.ndarray:
        """Gaussian-weighted neighbourhood sum: the paper's ``F_w^l``."""
        radius = self.config.knowledge_radius_m
        sigma = radius / 3.0
        accumulated = np.zeros_like(completed)
        for landmark_id in self._landmark_ids:
            column = self._landmark_index[landmark_id]
            anchor = self.catalog.get(landmark_id).anchor
            neighbours = self.catalog.within_radius(anchor, radius)
            for neighbour in neighbours:
                neighbour_column = self._landmark_index[neighbour.landmark_id]
                distance = anchor.distance_to(neighbour.anchor)
                weight = _gaussian_weight(distance, sigma)
                accumulated[:, column] += weight * completed[:, neighbour_column]
        return accumulated

    # ----------------------------------------------------------------- reads
    def completed_matrix(self) -> np.ndarray:
        if self._completed is None:
            raise WorkerSelectionError("FamiliarityModel.fit() has not been called")
        return self._completed

    def accumulated_matrix(self) -> np.ndarray:
        if self._accumulated is None:
            raise WorkerSelectionError("FamiliarityModel.fit() has not been called")
        return self._accumulated

    def accumulated_score(self, worker_id: int, landmark_id: int) -> float:
        """``F_w^l`` for one worker-landmark pair."""
        matrix = self.accumulated_matrix()
        try:
            row = self._worker_index[worker_id]
            column = self._landmark_index[landmark_id]
        except KeyError as error:
            raise WorkerSelectionError(f"unknown worker or landmark: {error}") from None
        return float(matrix[row, column])

    def workers_knowing(self, landmark_id: int, minimum: float = 1e-9) -> List[int]:
        """Worker ids with a non-zero accumulated score for ``landmark_id``."""
        matrix = self.accumulated_matrix()
        column = self._landmark_index[landmark_id]
        return [
            worker_id
            for worker_id in self._worker_ids
            if matrix[self._worker_index[worker_id], column] > minimum
        ]

    @property
    def worker_ids(self) -> List[int]:
        return list(self._worker_ids)

    @property
    def landmark_ids(self) -> List[int]:
        return list(self._landmark_ids)


def _gaussian_weight(distance: float, sigma: float) -> float:
    """Normal-density weight of a neighbouring landmark at ``distance``."""
    if sigma <= 0:
        return 1.0 if distance == 0 else 0.0
    coefficient = 1.0 / (sigma * math.sqrt(2.0 * math.pi))
    return coefficient * math.exp(-0.5 * (distance / sigma) ** 2)
