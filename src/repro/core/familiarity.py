"""Worker familiarity scores (Section IV-B).

The familiarity of worker ``w`` with landmark ``l`` combines two signals:

* profile proximity — how close the landmark is to the worker's home, work
  place and declared familiar places; and
* answer history — how often the worker answered questions about this
  landmark correctly (a wrong answer still indicates partial knowledge, so it
  earns a discounted credit ``beta``).

Raw scores form a very sparse worker x landmark matrix ``M``; PMF completes
it by exploiting latent similarity between workers, and the *accumulated*
familiarity of a landmark is the Gaussian-weighted sum of the completed
scores over all landmarks within the knowledge radius ``eta_dis``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import WorkerSelectionError
from ..landmarks.model import LandmarkCatalog
from .pmf import ProbabilisticMatrixFactorization
from .worker import Worker, WorkerPool


class FamiliarityModel:
    """Builds, completes and accumulates the worker-landmark familiarity matrix."""

    def __init__(
        self,
        pool: WorkerPool,
        catalog: LandmarkCatalog,
        config: PlannerConfig = DEFAULT_CONFIG,
        pmf: Optional[ProbabilisticMatrixFactorization] = None,
    ):
        self.pool = pool
        self.catalog = catalog
        self.config = config
        self.pmf = pmf or ProbabilisticMatrixFactorization(latent_dim=config.pmf_latent_dim)
        self._worker_ids = sorted(pool.ids())
        self._landmark_ids = sorted(catalog.ids())
        self._worker_index = {wid: i for i, wid in enumerate(self._worker_ids)}
        self._landmark_index = {lid: j for j, lid in enumerate(self._landmark_ids)}
        self._completed: Optional[np.ndarray] = None
        self._accumulated: Optional[np.ndarray] = None
        # Neighbourhood accumulation structure, cached against the catalogue
        # version (see _accumulation_rounds).
        self._rounds_key: Optional[Tuple[int, float]] = None
        self._rounds: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    # ---------------------------------------------------------------- scores
    def raw_score(self, worker: Worker, landmark_id: int) -> float:
        """The paper's ``f_w^l`` for one worker-landmark pair.

        Distances beyond the knowledge radius ``eta_dis`` are treated as
        infinite (their exponential term vanishes).  Distances are expressed
        in units of the knowledge radius so the exponential stays in a useful
        range regardless of city size.
        """
        landmark = self.catalog.get(landmark_id)
        anchor = landmark.anchor
        radius = self.config.knowledge_radius_m

        def scaled(distance: float) -> float:
            if distance > radius:
                return float("inf")
            return distance / radius

        distance_sum = (
            scaled(anchor.distance_to(worker.home))
            + scaled(anchor.distance_to(worker.workplace))
            + scaled(anchor.distance_to(worker.nearest_familiar_place(anchor)))
        )
        profile_term = 0.0 if math.isinf(distance_sum) else math.exp(-distance_sum)
        history = worker.history_for(landmark_id)
        history_term = history.correct + self.config.familiarity_beta * history.wrong
        return (
            self.config.familiarity_alpha * profile_term
            + (1.0 - self.config.familiarity_alpha) * history_term
        )

    def build_raw_matrix(self) -> np.ndarray:
        """The sparse observed matrix ``M`` (zeros mean "no information").

        Vectorized as an anchor-distance kernel (the same shape as
        :meth:`AnswerBehaviorModel.answer_accuracies_matrix`): the three
        profile distances — home, workplace and nearest declared familiar
        place, the latter via an ``inf``-padded ``(worker, place)`` minimum —
        are computed for every (worker, landmark) pair in one numpy pass, and
        the sparse answer-history term is scattered on top from each worker's
        per-landmark records.  The former double loop is preserved as
        :meth:`build_raw_matrix_reference`, the oracle the equivalence tests
        and the ``familiarity_raw`` benchmark compare against (``np.hypot`` /
        ``np.exp`` may differ from the scalar ``math`` calls in the final
        ulp, so the comparison is a tight ``allclose`` rather than bitwise).
        """
        workers = [self.pool.get(worker_id) for worker_id in self._worker_ids]
        num_workers, num_landmarks = len(workers), len(self._landmark_ids)
        if num_workers == 0 or num_landmarks == 0:
            return np.zeros((num_workers, num_landmarks))
        radius = self.config.knowledge_radius_m

        anchors = [self.catalog.get(landmark_id).anchor for landmark_id in self._landmark_ids]
        lx = np.array([anchor.x for anchor in anchors], dtype=np.float64)
        ly = np.array([anchor.y for anchor in anchors], dtype=np.float64)
        hx = np.array([worker.home.x for worker in workers], dtype=np.float64)
        hy = np.array([worker.home.y for worker in workers], dtype=np.float64)
        wx = np.array([worker.workplace.x for worker in workers], dtype=np.float64)
        wy = np.array([worker.workplace.y for worker in workers], dtype=np.float64)
        # Familiar places padded to the crew maximum with inf (an infinitely
        # far place never wins the minimum); a worker with none declared
        # falls back to home, matching ``nearest_familiar_place``.
        place_lists = [worker.familiar_places or [worker.home] for worker in workers]
        width = max(len(places) for places in place_lists)
        px = np.full((num_workers, width), np.inf, dtype=np.float64)
        py = np.full((num_workers, width), np.inf, dtype=np.float64)
        for i, places in enumerate(place_lists):
            for j, place in enumerate(places):
                px[i, j] = place.x
                py[i, j] = place.y

        home_distance = np.hypot(lx[None, :] - hx[:, None], ly[None, :] - hy[:, None])
        work_distance = np.hypot(lx[None, :] - wx[:, None], ly[None, :] - wy[:, None])
        familiar_distance = np.hypot(
            lx[None, None, :] - px[:, :, None], ly[None, None, :] - py[:, :, None]
        ).min(axis=1)

        def scaled(distance: np.ndarray) -> np.ndarray:
            return np.where(distance > radius, np.inf, distance / radius)

        distance_sum = scaled(home_distance) + scaled(work_distance) + scaled(familiar_distance)
        profile_term = np.where(np.isinf(distance_sum), 0.0, np.exp(-distance_sum))

        history_term = np.zeros((num_workers, num_landmarks))
        beta = self.config.familiarity_beta
        for row, worker in enumerate(workers):
            for landmark_id, record in worker.answer_history.items():
                column = self._landmark_index.get(landmark_id)
                if column is not None:
                    history_term[row, column] = record.correct + beta * record.wrong

        alpha = self.config.familiarity_alpha
        return alpha * profile_term + (1.0 - alpha) * history_term

    def build_raw_matrix_reference(self) -> np.ndarray:
        """The original per-pair double loop — the vectorized kernel's oracle."""
        matrix = np.zeros((len(self._worker_ids), len(self._landmark_ids)))
        for worker_id in self._worker_ids:
            worker = self.pool.get(worker_id)
            row = self._worker_index[worker_id]
            for landmark_id in self._landmark_ids:
                column = self._landmark_index[landmark_id]
                matrix[row, column] = self.raw_score(worker, landmark_id)
        return matrix

    # ------------------------------------------------------------ completion
    def fit(self, use_pmf: bool = True) -> np.ndarray:
        """Build the matrix, optionally complete it with PMF, and accumulate.

        Returns the accumulated familiarity matrix ``M*``.  With
        ``use_pmf=False`` the raw matrix is accumulated directly — the
        ablation the PMF experiment (E6) compares against.
        """
        raw = self.build_raw_matrix()
        if use_pmf and raw.any():
            completed = self.pmf.complete(raw)
        else:
            completed = raw
        self._completed = completed
        self._accumulated = self._accumulate(completed)
        return self._accumulated

    def _accumulate(self, completed: np.ndarray) -> np.ndarray:
        """Gaussian-weighted neighbourhood sum: the paper's ``F_w^l``.

        Vectorized as round-sliced gather/scatter over the cached neighbour
        structure: round ``r`` adds every landmark's ``r``-th neighbour
        contribution in one numpy operation, so the Python loop shrinks from
        one iteration per (landmark, neighbour) pair to one per round (the
        maximum neighbour count).  Because each column still receives its
        contributions in the exact neighbour order of the sequential loop —
        and elementwise multiply/add are the same IEEE operations either way
        — the result is bit-identical to :meth:`_accumulate_reference`.
        """
        accumulated = np.zeros_like(completed)
        for destinations, sources, weights in self._accumulation_rounds():
            accumulated[:, destinations] += completed[:, sources] * weights
        return accumulated

    def _accumulate_reference(self, completed: np.ndarray) -> np.ndarray:
        """The original sequential accumulation — the oracle for the
        vectorized path (equivalence tests and benchmarks compare the two)."""
        radius = self.config.knowledge_radius_m
        sigma = radius / 3.0
        accumulated = np.zeros_like(completed)
        for landmark_id in self._landmark_ids:
            column = self._landmark_index[landmark_id]
            anchor = self.catalog.get(landmark_id).anchor
            neighbours = self.catalog.within_radius(anchor, radius)
            for neighbour in neighbours:
                neighbour_column = self._landmark_index[neighbour.landmark_id]
                distance = anchor.distance_to(neighbour.anchor)
                weight = _gaussian_weight(distance, sigma)
                accumulated[:, column] += weight * completed[:, neighbour_column]
        return accumulated

    def _accumulation_rounds(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-round ``(destination columns, source columns, weights)`` arrays.

        Round ``r`` holds, for every landmark column with at least ``r + 1``
        neighbours, that landmark's ``r``-th neighbour column and Gaussian
        weight, in the exact order the sequential loop visits them (the
        spatial index's distance-sorted ``within_radius`` ranking).  Weights
        are computed with the same scalar arithmetic as the reference
        (``Point.distance_to`` + :func:`_gaussian_weight`).  The structure
        only depends on the catalogue geometry and the knowledge radius, so it
        is cached and invalidated via :attr:`LandmarkCatalog.version`.
        """
        radius = self.config.knowledge_radius_m
        key = (self.catalog.version, radius)
        if self._rounds_key == key:
            return self._rounds
        sigma = radius / 3.0
        per_landmark: List[Tuple[int, List[Tuple[int, float]]]] = []
        for landmark_id in self._landmark_ids:
            column = self._landmark_index[landmark_id]
            anchor = self.catalog.get(landmark_id).anchor
            entries = []
            for neighbour in self.catalog.within_radius(anchor, radius):
                distance = anchor.distance_to(neighbour.anchor)
                entries.append(
                    (self._landmark_index[neighbour.landmark_id], _gaussian_weight(distance, sigma))
                )
            per_landmark.append((column, entries))
        rounds = []
        max_neighbours = max((len(entries) for _, entries in per_landmark), default=0)
        for r in range(max_neighbours):
            slice_r = [
                (column, entries[r][0], entries[r][1])
                for column, entries in per_landmark
                if len(entries) > r
            ]
            destinations = np.array([item[0] for item in slice_r], dtype=np.intp)
            sources = np.array([item[1] for item in slice_r], dtype=np.intp)
            weights = np.array([item[2] for item in slice_r], dtype=np.float64)
            rounds.append((destinations, sources, weights))
        self._rounds = rounds
        self._rounds_key = key
        return rounds

    # ----------------------------------------------------------------- reads
    def completed_matrix(self) -> np.ndarray:
        if self._completed is None:
            raise WorkerSelectionError("FamiliarityModel.fit() has not been called")
        return self._completed

    def accumulated_matrix(self) -> np.ndarray:
        if self._accumulated is None:
            raise WorkerSelectionError("FamiliarityModel.fit() has not been called")
        return self._accumulated

    def accumulated_score(self, worker_id: int, landmark_id: int) -> float:
        """``F_w^l`` for one worker-landmark pair."""
        matrix = self.accumulated_matrix()
        try:
            row = self._worker_index[worker_id]
            column = self._landmark_index[landmark_id]
        except KeyError as error:
            raise WorkerSelectionError(f"unknown worker or landmark: {error}") from None
        return float(matrix[row, column])

    def workers_knowing(self, landmark_id: int, minimum: float = 1e-9) -> List[int]:
        """Worker ids with a non-zero accumulated score for ``landmark_id``."""
        matrix = self.accumulated_matrix()
        column = self._landmark_index[landmark_id]
        return [
            worker_id
            for worker_id in self._worker_ids
            if matrix[self._worker_index[worker_id], column] > minimum
        ]

    @property
    def worker_ids(self) -> List[int]:
        return list(self._worker_ids)

    @property
    def landmark_ids(self) -> List[int]:
        return list(self._landmark_ids)


def _gaussian_weight(distance: float, sigma: float) -> float:
    """Normal-density weight of a neighbouring landmark at ``distance``."""
    if sigma <= 0:
        return 1.0 if distance == 0 else 0.0
    coefficient = 1.0 / (sigma * math.sqrt(2.0 * math.pi))
    return coefficient * math.exp(-0.5 * (distance / sigma) ** 2)
