"""Automatic route evaluation (Section II-B1).

Before involving any human, the traditional-recommendation module tries to
settle the request itself:

* **Agreement check** — if the candidate routes agree with each other to a
  high degree (pairwise edge-set similarity above the agreement threshold),
  one of them is declared best outright and stored as truth.
* **Confidence scoring** — otherwise each candidate receives a confidence
  score derived from previously verified truths in the neighbourhood of the
  request: a candidate similar to what the crowd already verified nearby is
  probably right.  If the best confidence clears the threshold ``eta``, the
  system answers automatically; otherwise the request is handed to the crowd
  module.

The module also hosts the *answer grading* step of the crowd path
(:func:`grade_answers`): once a task's winning route is verified, every
collected answer is evaluated for correctness against it — the signal the
worker answer-history / familiarity layer consumes.  Grading operates on the
columnar answer representation (:class:`~repro.core.task.ResponseBlock`
columns) in one vectorized pass instead of per-:class:`Answer` attribute
walks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..routing.base import CandidateRoute, RouteQuery
from ..utils.stats import pairs
from .route import LandmarkRoute
from .truth import TruthDatabase


def grade_answers(
    winner: LandmarkRoute, landmark_ids: np.ndarray, says_yes: np.ndarray
) -> np.ndarray:
    """Correctness of each answer against the verified winning route.

    An answer is correct when its yes/no agrees with whether the winner
    passes the questioned landmark — elementwise
    ``says_yes[i] == winner.passes(landmark_ids[i])``, vectorized:
    membership of every questioned landmark in the winner's landmark set is
    resolved with one :func:`numpy.isin` over the columns.
    """
    if landmark_ids.size == 0:
        return np.zeros(0, dtype=bool)
    winner_landmarks = np.fromiter(winner.landmark_set, dtype=np.int64)
    passes = np.isin(landmark_ids, winner_landmarks)
    return says_yes == passes


class EvaluationDecision(enum.Enum):
    """What the TR module decided to do with a request."""

    AGREEMENT = "agreement"          # candidates agree; answered automatically
    CONFIDENT = "confident"          # a candidate's truth-based confidence clears eta
    NEEDS_CROWD = "needs_crowd"      # hand over to the crowd module


@dataclass(frozen=True)
class EvaluationOutcome:
    """Result of evaluating a candidate set without human input."""

    decision: EvaluationDecision
    best_route: Optional[CandidateRoute]
    confidences: Dict[str, float]
    mean_pairwise_similarity: float


class RouteEvaluator:
    """Implements the TR module's automatic evaluation logic."""

    def __init__(
        self,
        network: RoadNetwork,
        truths: TruthDatabase,
        config: PlannerConfig = DEFAULT_CONFIG,
        neighbourhood_radius_m: float = 1_500.0,
    ):
        if neighbourhood_radius_m <= 0:
            raise RoutingError("neighbourhood_radius_m must be positive")
        self.network = network
        self.truths = truths
        self.config = config
        self.neighbourhood_radius_m = neighbourhood_radius_m

    # ------------------------------------------------------------- agreement
    def mean_pairwise_similarity(self, candidates: Sequence[CandidateRoute]) -> float:
        """Average edge-set Jaccard similarity over all candidate pairs."""
        if len(candidates) < 2:
            return 1.0
        similarities = [a.similarity_to(b) for a, b in pairs(list(candidates))]
        return sum(similarities) / len(similarities)

    def agreement_route(self, candidates: Sequence[CandidateRoute]) -> Optional[CandidateRoute]:
        """The representative route if candidates agree strongly, else ``None``.

        The representative is the candidate with the highest average
        similarity to the others (the "medoid"), preferring higher support on
        ties.
        """
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        if self.mean_pairwise_similarity(candidates) < self.config.agreement_threshold:
            return None
        scored = []
        for candidate in candidates:
            others = [other for other in candidates if other is not candidate]
            mean_similarity = sum(candidate.similarity_to(other) for other in others) / len(others)
            scored.append((mean_similarity, candidate.support, candidate.source, candidate))
        scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
        return scored[0][3]

    # ------------------------------------------------------------ confidence
    def confidence_scores(
        self, query: RouteQuery, candidates: Sequence[CandidateRoute]
    ) -> Dict[str, float]:
        """Truth-based confidence per candidate source.

        The confidence of a candidate is the maximum, over verified truths in
        the request's neighbourhood, of (similarity to the truth x the truth's
        own confidence), decayed by how far the truth's endpoints are from the
        request's endpoints.

        The endpoint distance decay depends only on the truth, so it is
        computed once per truth rather than once per (candidate, truth) pair;
        the per-pair work is then a single Jaccard over the routes' cached
        edge signatures (see :meth:`CandidateRoute.edge_signature`).
        """
        origin = self.network.node_location(query.origin)
        destination = self.network.node_location(query.destination)
        nearby = self.truths.truths_near(origin, destination, self.neighbourhood_radius_m)
        decayed = [
            (
                truth,
                1.0
                / (
                    1.0
                    + (
                        truth.origin.distance_to(origin)
                        + truth.destination.distance_to(destination)
                    )
                    / self.neighbourhood_radius_m
                ),
            )
            for truth in nearby
        ]
        scores: Dict[str, float] = {}
        for candidate in candidates:
            best = 0.0
            for truth, distance_decay in decayed:
                similarity = candidate.similarity_to(truth.route)
                best = max(best, similarity * truth.confidence * distance_decay)
            scores[candidate.source] = best
        return scores

    # ------------------------------------------------------------- interface
    def evaluate(self, query: RouteQuery, candidates: Sequence[CandidateRoute]) -> EvaluationOutcome:
        """Run the full automatic evaluation for a candidate set."""
        if not candidates:
            raise RoutingError("cannot evaluate an empty candidate set")
        mean_similarity = self.mean_pairwise_similarity(candidates)
        agreed = self.agreement_route(candidates)
        if agreed is not None:
            return EvaluationOutcome(
                decision=EvaluationDecision.AGREEMENT,
                best_route=agreed,
                confidences={candidate.source: 1.0 for candidate in candidates},
                mean_pairwise_similarity=mean_similarity,
            )
        confidences = self.confidence_scores(query, candidates)
        best_source, best_confidence = max(
            confidences.items(), key=lambda item: (item[1], item[0])
        )
        if best_confidence >= self.config.confidence_threshold:
            best_route = next(c for c in candidates if c.source == best_source)
            return EvaluationOutcome(
                decision=EvaluationDecision.CONFIDENT,
                best_route=best_route,
                confidences=confidences,
                mean_pairwise_similarity=mean_similarity,
            )
        return EvaluationOutcome(
            decision=EvaluationDecision.NEEDS_CROWD,
            best_route=None,
            confidences=confidences,
            mean_pairwise_similarity=mean_similarity,
        )
