"""Worker response-time model (Section IV-A).

Response times are assumed exponentially distributed, ``f(t; λ) = λ e^{-λt}``.
A worker is only eligible for a task if the probability of answering before
the user's deadline, ``F(t; λ) = 1 - e^{-λt}``, is at least ``eta_time``.
"""

from __future__ import annotations

import math
import random

from ..exceptions import WorkerSelectionError
from .worker import Worker


class ResponseTimeModel:
    """Evaluates and samples exponential worker response times."""

    def __init__(self, minimum_rate: float = 1e-9):
        if minimum_rate <= 0:
            raise WorkerSelectionError("minimum_rate must be positive")
        self.minimum_rate = minimum_rate

    def probability_within(self, worker: Worker, deadline_s: float) -> float:
        """``P(response time <= deadline)`` for the worker's rate parameter."""
        if deadline_s <= 0:
            return 0.0
        rate = max(worker.response_rate, self.minimum_rate)
        return 1.0 - math.exp(-rate * deadline_s)

    def meets_deadline(self, worker: Worker, deadline_s: float, threshold: float) -> bool:
        """True if the worker's on-time probability reaches ``threshold`` (``eta_time``)."""
        return self.probability_within(worker, deadline_s) >= threshold

    def expected_response_time(self, worker: Worker) -> float:
        """Mean of the exponential distribution, ``1 / λ``."""
        rate = max(worker.response_rate, self.minimum_rate)
        return 1.0 / rate

    def sample(self, worker: Worker, rng: random.Random) -> float:
        """Draw one response time for the worker."""
        rate = max(worker.response_rate, self.minimum_rate)
        return rng.expovariate(rate)
