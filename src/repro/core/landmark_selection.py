"""Landmark selection (Section III-B).

Given the landmark-based candidate routes and a significance score per
landmark, select a small set of highly significant landmarks that is
*discriminative* for the candidate set, maximising the objective

    value(L) = (sum of significances of L) / |L|      (mean significance)

subject to L being discriminative and ``ceil(log2 n) <= |L| <= n`` where ``n``
is the number of candidate routes.

Three selectors are provided:

* :class:`BruteForceSelector` — exhaustive enumeration; exponential, only
  usable for small inputs, serves as the exactness oracle in tests and as the
  baseline in the efficiency experiment (E4).
* :class:`IncrementalLandmarkSelector` (ILS) — the paper's level-wise
  bottom-up search over simplest-discriminative sets.
* :class:`GreedySelector` — the paper's depth-first expansion in descending
  significance order with upper-bound pruning.

All selectors work on the *beneficial* landmarks only (union minus
intersection of the routes' landmark sets) and break ties deterministically.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import TaskGenerationError
from .discriminative import is_discriminative
from .route import LandmarkRoute, beneficial_landmarks


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a landmark-selection run."""

    landmark_ids: Tuple[int, ...]
    value: float
    evaluated_sets: int
    algorithm: str

    def __init__(self, landmark_ids: Sequence[int], value: float, evaluated_sets: int, algorithm: str):
        object.__setattr__(self, "landmark_ids", tuple(landmark_ids))
        object.__setattr__(self, "value", float(value))
        object.__setattr__(self, "evaluated_sets", int(evaluated_sets))
        object.__setattr__(self, "algorithm", algorithm)


def objective_value(landmark_ids: Sequence[int], significance: Dict[int, float]) -> float:
    """The paper's target function: sum of significances times ``|L|^-1``."""
    ids = list(landmark_ids)
    if not ids:
        return 0.0
    return sum(significance[lid] for lid in ids) / len(ids)


def minimum_set_size(route_count: int) -> int:
    """``ceil(log2 n)`` — the information-theoretic lower bound on |L|."""
    if route_count <= 1:
        return 0
    return int(math.ceil(math.log2(route_count)))


class _SelectorBase:
    """Shared preparation step: beneficial landmarks sorted by significance."""

    algorithm = "base"

    def __init__(self, max_candidate_landmarks: Optional[int] = None):
        if max_candidate_landmarks is not None and max_candidate_landmarks < 1:
            raise TaskGenerationError("max_candidate_landmarks must be positive")
        self.max_candidate_landmarks = max_candidate_landmarks

    def prepare(
        self,
        routes: Sequence[LandmarkRoute],
        significance: Dict[int, float],
    ) -> List[int]:
        """Return beneficial landmarks sorted by descending significance.

        When ``max_candidate_landmarks`` is set, only the most significant
        candidates are kept — a practical cap that bounds the exponential
        worst case without changing behaviour on typical inputs.
        """
        candidates = beneficial_landmarks(routes)
        missing = [lid for lid in candidates if lid not in significance]
        if missing:
            raise TaskGenerationError(f"missing significance for landmarks {missing[:5]!r}")
        ordered = sorted(candidates, key=lambda lid: (-significance[lid], lid))
        if self.max_candidate_landmarks is not None:
            ordered = ordered[: self.max_candidate_landmarks]
        return ordered

    def select(self, routes: Sequence[LandmarkRoute], significance: Dict[int, float]) -> SelectionResult:
        raise NotImplementedError

    @staticmethod
    def _check_routes(routes: Sequence[LandmarkRoute]) -> None:
        if len(routes) < 2:
            raise TaskGenerationError("landmark selection needs at least two candidate routes")


class BruteForceSelector(_SelectorBase):
    """Exhaustive enumeration of all subsets of beneficial landmarks."""

    algorithm = "brute-force"

    def select(self, routes: Sequence[LandmarkRoute], significance: Dict[int, float]) -> SelectionResult:
        self._check_routes(routes)
        candidates = self.prepare(routes, significance)
        lower = max(1, minimum_set_size(len(routes)))
        best_set: Optional[Tuple[int, ...]] = None
        best_value = -1.0
        evaluated = 0
        for size in range(lower, len(candidates) + 1):
            for combination in itertools.combinations(candidates, size):
                evaluated += 1
                if not is_discriminative(combination, routes):
                    continue
                value = objective_value(combination, significance)
                if value > best_value + 1e-12:
                    best_value = value
                    best_set = combination
        if best_set is None:
            raise TaskGenerationError(
                "no discriminative landmark set exists for the candidate routes"
            )
        return SelectionResult(best_set, best_value, evaluated, self.algorithm)


class GreedySelector(_SelectorBase):
    """Depth-first expansion in descending significance order with pruning.

    Sets are expanded by adding landmarks whose significance does not exceed
    the smallest significance already in the set (which eliminates duplicate
    enumeration orders).  Because additions can only lower the mean
    significance, a branch whose current mean is already no better than the
    best discriminative set found so far can be pruned, and expansion stops
    as soon as a set becomes discriminative.
    """

    algorithm = "greedy"

    def select(self, routes: Sequence[LandmarkRoute], significance: Dict[int, float]) -> SelectionResult:
        self._check_routes(routes)
        ordered = self.prepare(routes, significance)
        if not ordered:
            raise TaskGenerationError("no beneficial landmarks — routes are indistinguishable")

        best: Dict[str, object] = {"set": None, "value": -1.0}
        evaluated = 0

        def expand(current: List[int], start_index: int) -> None:
            nonlocal evaluated
            for index in range(start_index, len(ordered)):
                landmark = ordered[index]
                candidate = current + [landmark]
                evaluated += 1
                candidate_value = objective_value(candidate, significance)
                # Adding further landmarks (all with significance <= the
                # current minimum) can only decrease the mean, so prune
                # branches that already cannot beat the incumbent.
                if candidate_value <= best["value"] + 1e-12 and best["set"] is not None:
                    continue
                if is_discriminative(candidate, routes):
                    if candidate_value > best["value"] + 1e-12:
                        best["set"] = tuple(candidate)
                        best["value"] = candidate_value
                    # Supersets are discriminative too but strictly worse in
                    # mean significance; do not expand further.
                    continue
                expand(candidate, index + 1)

        expand([], 0)
        if best["set"] is None:
            raise TaskGenerationError(
                "no discriminative landmark set exists for the candidate routes"
            )
        return SelectionResult(best["set"], float(best["value"]), evaluated, self.algorithm)


class IncrementalLandmarkSelector(_SelectorBase):
    """The paper's ILS: level-wise search over simplest-discriminative sets.

    Level ``k`` holds all undiscriminative sets of size ``k``; discriminative
    sets found at level ``k`` compete for ``Lsim[k]`` (the best
    simplest-discriminative set of that size) and are pruned from further
    expansion.  The final answer extends each ``Lsim[i]`` with the most
    significant unused landmarks (``GetMaxSet``) and keeps the best objective
    value over all sizes.
    """

    algorithm = "ILS"

    def select(self, routes: Sequence[LandmarkRoute], significance: Dict[int, float]) -> SelectionResult:
        self._check_routes(routes)
        ordered = self.prepare(routes, significance)
        if not ordered:
            raise TaskGenerationError("no beneficial landmarks — routes are indistinguishable")

        evaluated = 0
        simplest: Dict[int, Tuple[Tuple[int, ...], float]] = {}

        # Level-wise expansion.  Sets are kept in "descending significance"
        # canonical order, and extension only appends landmarks less
        # significant than the set's last element, so every subset is
        # enumerated exactly once.
        index_of = {lid: i for i, lid in enumerate(ordered)}
        current_level: List[Tuple[int, ...]] = [()]
        for size in range(1, len(ordered) + 1):
            next_level: List[Tuple[int, ...]] = []
            best_at_size: Optional[Tuple[Tuple[int, ...], float]] = None
            for undiscriminative_set in current_level:
                start = index_of[undiscriminative_set[-1]] + 1 if undiscriminative_set else 0
                for index in range(start, len(ordered)):
                    candidate = undiscriminative_set + (ordered[index],)
                    evaluated += 1
                    if is_discriminative(candidate, routes):
                        value = objective_value(candidate, significance)
                        if best_at_size is None or value > best_at_size[1] + 1e-12:
                            best_at_size = (candidate, value)
                        # Discriminative sets are pruned from expansion.
                        continue
                    next_level.append(candidate)
            if best_at_size is not None:
                simplest[size] = best_at_size
            current_level = next_level
            if not current_level:
                break

        if not simplest:
            raise TaskGenerationError(
                "no discriminative landmark set exists for the candidate routes"
            )

        # GetMaxSet: for each target size k >= i, the best superset of
        # Lsim[i] of size k adds the k-i most significant unused landmarks.
        lower = max(1, minimum_set_size(len(routes)))
        best_set: Optional[Tuple[int, ...]] = None
        best_value = -1.0
        max_size = len(ordered)
        for base_size, (base_set, _) in simplest.items():
            unused = [lid for lid in ordered if lid not in base_set]
            for target_size in range(max(lower, base_size), max_size + 1):
                extra = target_size - base_size
                if extra > len(unused):
                    break
                candidate = tuple(base_set) + tuple(unused[:extra])
                value = objective_value(candidate, significance)
                if value > best_value + 1e-12:
                    best_value = value
                    best_set = candidate
        if best_set is None:
            raise TaskGenerationError("landmark selection failed to produce a set")
        return SelectionResult(best_set, best_value, evaluated, self.algorithm)
