"""The CrowdPlanner facade: control logic of the whole system (Section II-B).

:class:`CrowdPlanner` wires together every component into the paper's
workflow:

1. **Truth reuse** — if a verified truth matches the request, return it.
2. **Candidate generation** — collect routes from all configured sources
   (web services and popular-route miners).
3. **Automatic evaluation** — answer immediately when candidates agree or a
   candidate's truth-based confidence clears the threshold.
4. **Crowd task** — otherwise generate a task, select the top-k eligible
   workers, collect their answers through the crowd backend (early-stopping
   when possible), aggregate, reward workers, update their answer history and
   record the verified truth.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import (
    CrowdPlannerError,
    RoutingError,
    TaskGenerationError,
    WorkerSelectionError,
)
from ..landmarks.model import LandmarkCatalog
from ..roadnet.graph import RoadNetwork
from ..routing.base import CandidateRoute, RouteQuery, RouteSource
from ..trajectory.calibration import AnchorCalibrator
from .aggregation import AnswerAggregator
from .early_stop import EarlyStopMonitor
from .evaluation import EvaluationDecision, EvaluationOutcome, RouteEvaluator, grade_answers
from .familiarity import FamiliarityModel
from .rewards import RewardLedger
from .task import Task, TaskResult, WorkerResponse, reissue_task_id
from .task_generation import TaskGenerator
from .truth import TruthDatabase, VerifiedTruth
from .worker import WorkerPool
from .worker_selection import WorkerSelector


class CrowdBackend(abc.ABC):
    """Source of worker responses.

    Production deployments would push questions to mobile clients; the
    reproduction uses :class:`repro.crowd.simulator.SimulatedCrowd`.

    Backends may additionally expose ``collect_responses_block(task,
    worker_ids) -> Optional[ResponseBlock]`` — the columnar fast path the
    planner prefers when present.  A block-capable backend may return
    ``None`` to decline a particular call (the planner then falls back to
    :meth:`collect_responses`); when it does return a block, materializing
    it must yield exactly what :meth:`collect_responses` would have
    returned — the columnar representation is a performance channel, never
    a semantic one.
    """

    @abc.abstractmethod
    def collect_responses(self, task: Task, worker_ids: Sequence[int]) -> List[WorkerResponse]:
        """Return the workers' responses in arrival order."""


@dataclass
class RecommendationResult:
    """What a route-recommendation request produced."""

    query: RouteQuery
    route: CandidateRoute
    method: str                      # "truth_reuse" | "agreement" | "confident" | "crowd" | "single_candidate"
    confidence: float
    candidates: List[CandidateRoute] = field(default_factory=list)
    evaluation: Optional[EvaluationOutcome] = None
    task_result: Optional[TaskResult] = None

    @property
    def used_crowd(self) -> bool:
        return self.method == "crowd"


@dataclass
class PlannerStatistics:
    """Counters of how requests were resolved (used by the cost experiments)."""

    requests: int = 0
    truth_hits: int = 0
    agreement_answers: int = 0
    confident_answers: int = 0
    crowd_tasks: int = 0
    single_candidate_answers: int = 0
    questions_asked: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "truth_hits": self.truth_hits,
            "agreement_answers": self.agreement_answers,
            "confident_answers": self.confident_answers,
            "crowd_tasks": self.crowd_tasks,
            "single_candidate_answers": self.single_candidate_answers,
            "questions_asked": self.questions_asked,
        }

    def merge(self, delta: Dict[str, int]) -> None:
        """Add per-shard counter deltas (the serving engine's merge step)."""
        for name, value in delta.items():
            setattr(self, name, getattr(self, name) + int(value))


@dataclass(frozen=True)
class QueryShard:
    """One worker's slice of a batch: whole interaction-closed components.

    ``indices`` are submission positions into the original query list, in
    ascending (submission) order; ``destination_cells`` is the reach-expanded
    set of destination grid cells whose truth partition the shard must be
    shipped (see :meth:`TruthDatabase.partition_by_cells`).

    Sub-shards produced by :func:`repro.serving.shards.split_oversized`
    additionally carry chain edges: ``predecessors`` are the shard ids whose
    completion makes this sub-shard dispatchable, and ``handoff_from`` the
    shard ids whose recorded truths must be adopted before it runs (a
    superset of ``predecessors`` — the whole upstream slice of its dataflow).
    Both are empty for ordinary component shards, which remain mutually
    interaction-free.
    """

    shard_id: int
    indices: Tuple[int, ...]
    destination_cells: FrozenSet[Tuple[int, int]]
    components: int
    predecessors: Tuple[int, ...] = ()
    handoff_from: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardPlan:
    """How a batch of queries is split across serving workers.

    Shards are unions of *interaction-closed components*: two queries land in
    the same component whenever a truth recorded for one could influence the
    other — their origin cells and destination cells are both within
    ``cell_reach`` grid cells, the quantised form of ``interaction_radius_m``
    (the larger of the truth-reuse radius and the evaluator's neighbourhood
    radius).  Queries in different components can therefore be answered in
    different processes, in any order, without observing each other, which is
    what makes sharded execution bit-identical to sequential execution.
    """

    shards: Tuple[QueryShard, ...]
    num_queries: int
    interaction_radius_m: float
    cell_size_m: float
    cell_reach: int

    @property
    def num_components(self) -> int:
        return sum(shard.components for shard in self.shards)

    def largest_shard_fraction(self) -> float:
        """Load skew diagnostic: fraction of the batch in the biggest shard."""
        if not self.shards or self.num_queries == 0:
            return 0.0
        return max(len(shard) for shard in self.shards) / self.num_queries

    def chain_depth(self) -> int:
        """Length of the longest sub-shard hand-off chain in this plan.

        ``1`` for any non-empty plan without sub-shards (every shard is its
        own chain of one), ``0`` for an empty plan.  After
        :func:`repro.serving.shards.split_oversized` this is the critical
        path of the dataflow DAG — how many sub-shards must run strictly one
        after another before the split component is fully served.
        """
        if not self.shards:
            return 0
        depth: Dict[int, int] = {}
        # Shard ids are a topological order of the chain DAG (predecessors
        # always carry smaller ids), so one ascending pass suffices.
        for shard in sorted(self.shards, key=lambda s: s.shard_id):
            depth[shard.shard_id] = 1 + max(
                (depth.get(pred, 0) for pred in shard.predecessors), default=0
            )
        return max(depth.values())


class CrowdPlanner:
    """End-to-end crowd-based route recommendation system."""

    def __init__(
        self,
        network: RoadNetwork,
        catalog: LandmarkCatalog,
        calibrator: AnchorCalibrator,
        sources: Sequence[RouteSource],
        worker_pool: WorkerPool,
        crowd_backend: Optional[CrowdBackend] = None,
        config: PlannerConfig = DEFAULT_CONFIG,
        familiarity: Optional[FamiliarityModel] = None,
        task_generator: Optional[TaskGenerator] = None,
    ):
        if not sources:
            raise CrowdPlannerError("CrowdPlanner needs at least one candidate-route source")
        self.network = network
        self.catalog = catalog
        self.calibrator = calibrator
        self.sources = list(sources)
        self.worker_pool = worker_pool
        self.crowd_backend = crowd_backend
        self.config = config

        self.truths = TruthDatabase(network, config)
        self.evaluator = RouteEvaluator(network, self.truths, config)
        self.task_generator = task_generator or TaskGenerator(calibrator, catalog)
        self.familiarity = familiarity
        self.worker_selector: Optional[WorkerSelector] = None
        if familiarity is not None:
            self.worker_selector = WorkerSelector(worker_pool, familiarity, config)
        self.aggregator = AnswerAggregator(config, EarlyStopMonitor(config))
        self.rewards = RewardLedger(worker_pool, config)
        self.statistics = PlannerStatistics()
        # Per-batch candidate-generation memo (see recommend_batch); None
        # outside a batch.
        self._batch_candidate_memo: Optional[Dict[tuple, List[CandidateRoute]]] = None

    # -------------------------------------------------------------- plumbing
    def prepare_workers(self, use_pmf: bool = True) -> None:
        """Fit the familiarity model (must run before crowd tasks can be assigned)."""
        if self.familiarity is None:
            self.familiarity = FamiliarityModel(self.worker_pool, self.catalog, self.config)
        self.familiarity.fit(use_pmf=use_pmf)
        self.worker_selector = WorkerSelector(self.worker_pool, self.familiarity, self.config)
        # A familiarity refresh is the population-change boundary: backends
        # that precompute population-level answer accuracies (the simulated
        # crowd's columnar fast path) rebuild their matrix here.
        refresh = getattr(self.crowd_backend, "refresh_population_accuracies", None)
        if refresh is not None:
            refresh()

    def generate_candidates(self, query: RouteQuery) -> List[CandidateRoute]:
        """Collect candidate routes from every source, dropping failures and duplicates.

        Inside :meth:`recommend_batch`, od-identical queries share one
        generation pass through the per-batch memo (every in-repo source is
        deterministic for a fixed query, so sharing cannot change results).
        """
        memo = self._batch_candidate_memo
        key = (query.origin, query.destination, query.departure_time_s)
        if memo is not None:
            cached = memo.get(key)
            if cached is not None:
                return list(cached)
        candidates: List[CandidateRoute] = []
        seen_paths = set()
        for source in self.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None:
                continue
            if candidate.path in seen_paths:
                continue
            seen_paths.add(candidate.path)
            candidates.append(candidate)
        if memo is not None:
            memo[key] = list(candidates)
        return candidates

    # ------------------------------------------------------------- interface
    def recommend(self, query: RouteQuery) -> RecommendationResult:
        """Answer one route-recommendation request through the full pipeline."""
        self.statistics.requests += 1

        # Step 1: truth reuse.
        truth = self.truths.lookup(query)
        if truth is not None:
            self.statistics.truth_hits += 1
            return RecommendationResult(
                query=query,
                route=truth.route,
                method="truth_reuse",
                confidence=truth.confidence,
            )

        # Step 2: candidate generation.
        candidates = self.generate_candidates(query)
        if not candidates:
            raise RoutingError(
                f"no source produced a route between {query.origin} and {query.destination}"
            )
        if len(candidates) == 1:
            self.statistics.single_candidate_answers += 1
            self.truths.record(query, candidates[0], verified_by="single_candidate", confidence=0.5)
            return RecommendationResult(
                query=query,
                route=candidates[0],
                method="single_candidate",
                confidence=0.5,
                candidates=candidates,
            )

        # Step 3: automatic evaluation.
        outcome = self.evaluator.evaluate(query, candidates)
        if outcome.decision is EvaluationDecision.AGREEMENT:
            self.statistics.agreement_answers += 1
            self.truths.record(query, outcome.best_route, verified_by="agreement", confidence=0.9)
            return RecommendationResult(
                query=query,
                route=outcome.best_route,
                method="agreement",
                confidence=0.9,
                candidates=candidates,
                evaluation=outcome,
            )
        if outcome.decision is EvaluationDecision.CONFIDENT:
            self.statistics.confident_answers += 1
            confidence = max(outcome.confidences.values())
            self.truths.record(query, outcome.best_route, verified_by="confidence", confidence=confidence)
            return RecommendationResult(
                query=query,
                route=outcome.best_route,
                method="confident",
                confidence=confidence,
                candidates=candidates,
                evaluation=outcome,
            )

        # Step 4: crowd task.
        return self._crowdsource(query, candidates, outcome)

    def od_cell_groups(self, queries: Sequence[RouteQuery]) -> Dict[tuple, List[int]]:
        """Group query indices by their (origin cell, destination cell).

        Cells quantise the endpoints at the truth-reuse radius, so a group
        collects the queries whose answers can plausibly feed each other
        (shared candidate generation for od-identical members, truth reuse
        for near members).  Exposed for batch diagnostics and for sources
        that want spatial batching in :meth:`RouteSource.prepare_batch`.
        """
        cell = self.truths.reuse_cell_size_m
        groups: Dict[tuple, List[int]] = {}
        for index, query in enumerate(queries):
            origin = self.network.node_location(query.origin)
            destination = self.network.node_location(query.destination)
            key = (
                int(origin.x // cell),
                int(origin.y // cell),
                int(destination.x // cell),
                int(destination.y // cell),
            )
            groups.setdefault(key, []).append(index)
        return groups

    def shard_plan(self, queries: Sequence[RouteQuery], shards: int) -> ShardPlan:
        """Partition a batch into at most ``shards`` interaction-closed shards.

        Queries are first grouped by od-cell (:meth:`od_cell_groups`), the
        groups are linked into components whenever both their origin cells and
        their destination cells lie within the *interaction reach* — the
        quantised maximum of the truth-reuse radius and the evaluator's
        neighbourhood radius, i.e. the farthest a truth recorded for one query
        can be seen by another — and whole components are packed onto shards
        largest-first.  Because no truth can cross a component boundary,
        executing each shard's queries in submission order (with a truth
        partition covering its ``destination_cells``) reproduces the
        sequential batch exactly; the serving layer
        (:class:`repro.serving.RecommendationService` and its pooled backend)
        is built on this guarantee — including across batch boundaries, where
        :mod:`repro.serving.pipeline` intersects the reach-expanded
        ``destination_cells`` of consecutive batches' shards to decide which
        in-flight batches a shard must wait for.
        """
        if shards < 1:
            raise CrowdPlannerError("shard_plan needs at least one shard")
        cell = self.truths.reuse_cell_size_m
        radius = max(self.config.truth_reuse_radius_m, self.evaluator.neighbourhood_radius_m)
        reach = int(radius // cell) + 1

        groups = self.od_cell_groups(queries)
        keys = list(groups)
        parent = list(range(len(keys)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)

        # Groups within reach in every od-cell axis must share a component.
        # Bucketing by reach-sized coarse cells bounds the pair checks: any
        # two groups within reach differ by at most one coarse cell per axis.
        buckets: Dict[Tuple[int, int, int, int], List[int]] = {}
        for index, key in enumerate(keys):
            coarse = tuple(value // reach for value in key)
            buckets.setdefault(coarse, []).append(index)
        offsets = [-1, 0, 1]
        for coarse, members in buckets.items():
            for da in offsets:
                for db in offsets:
                    for dc in offsets:
                        for dd in offsets:
                            other = (coarse[0] + da, coarse[1] + db, coarse[2] + dc, coarse[3] + dd)
                            neighbours = buckets.get(other)
                            if neighbours is None or other < coarse:
                                continue
                            for i in members:
                                for j in neighbours:
                                    if i >= j and other == coarse:
                                        continue
                                    if all(
                                        abs(keys[i][axis] - keys[j][axis]) <= reach
                                        for axis in range(4)
                                    ):
                                        union(i, j)

        components: Dict[int, List[int]] = {}
        for index in range(len(keys)):
            components.setdefault(find(index), []).append(index)
        # (indices, destination cells) per component, submission-ordered.
        built = []
        for group_indices in components.values():
            indices: List[int] = []
            cells = set()
            for gi in group_indices:
                key = keys[gi]
                indices.extend(groups[key])
                for dx in range(-reach, reach + 1):
                    for dy in range(-reach, reach + 1):
                        cells.add((key[2] + dx, key[3] + dy))
            indices.sort()
            built.append((indices, cells))
        # Largest component first, earliest query breaking ties, onto the
        # least-loaded shard — deterministic for a fixed workload.
        built.sort(key=lambda item: (-len(item[0]), item[0][0]))
        shard_count = max(1, min(shards, len(built)))
        loads = [0] * shard_count
        assigned: List[List[Tuple[List[int], set]]] = [[] for _ in range(shard_count)]
        for component in built:
            target = min(range(shard_count), key=lambda s: (loads[s], s))
            assigned[target].append(component)
            loads[target] += len(component[0])
        shards_built = []
        for shard_id, component_list in enumerate(assigned):
            if not component_list:
                continue
            indices = sorted(itertools.chain.from_iterable(c[0] for c in component_list))
            cells = set().union(*(c[1] for c in component_list))
            shards_built.append(
                QueryShard(
                    shard_id=shard_id,
                    indices=tuple(indices),
                    destination_cells=frozenset(cells),
                    components=len(component_list),
                )
            )
        return ShardPlan(
            shards=tuple(shards_built),
            num_queries=len(queries),
            interaction_radius_m=radius,
            cell_size_m=cell,
            cell_reach=reach,
        )

    def warm_batch(self, queries: Sequence[RouteQuery]) -> None:
        """One-off warm-ups before a batch: compile the road network's
        flat-array view and run every source's
        :meth:`RouteSource.prepare_batch` hook.  Shared by
        :meth:`recommend_batch` and the sharded serving engine (which warms
        once in the parent so forked workers inherit the state)."""
        self.network.compiled()
        for source in self.sources:
            prepare = getattr(source, "prepare_batch", None)
            if prepare is not None:
                prepare(queries)

    def recommend_batch(
        self, queries: Sequence[RouteQuery], share_candidate_generation: bool = True
    ) -> List[RecommendationResult]:
        """Answer a batch of route-recommendation requests in order.

        Semantically identical to calling :meth:`recommend` per query —
        including the truth store accumulating between requests, so later
        queries in the batch can be served by truths recorded for earlier
        ones.  Three batch-level optimisations keep per-request latency flat
        without changing any answer:

        * the road network's compiled flat-array view is warmed up front, so
          the first request does not pay the one-off CSR build;
        * every source's :meth:`RouteSource.prepare_batch` hook runs once
          (e.g. the MPR miner compiles its popularity cost vector before the
          first query instead of inside it);
        * queries are grouped by od-cell (:meth:`od_cell_groups`) and, within
          multi-member groups, od-identical queries share one candidate
          generation pass — sound because sources answer a fixed query
          deterministically, and worthwhile because production traffic is
          dominated by repeated hot od-pairs.  ``share_candidate_generation``
          disables only this memoisation; the warm-ups above always run.
        """
        queries = list(queries)
        self.warm_batch(queries)
        if share_candidate_generation:
            shareable = {
                index
                for members in self.od_cell_groups(queries).values()
                if len(members) > 1
                for index in members
            }
        else:
            shareable = set()
        memo: Dict[tuple, List[CandidateRoute]] = {}
        results: List[RecommendationResult] = []
        try:
            for index, query in enumerate(queries):
                self._batch_candidate_memo = memo if index in shareable else None
                results.append(self.recommend(query))
        finally:
            self._batch_candidate_memo = None
        return results

    # ----------------------------------------------------------------- crowd
    def _crowdsource(
        self,
        query: RouteQuery,
        candidates: Sequence[CandidateRoute],
        outcome: EvaluationOutcome,
    ) -> RecommendationResult:
        if self.crowd_backend is None:
            raise CrowdPlannerError(
                "the request needs crowdsourcing but no crowd backend is configured"
            )
        if self.worker_selector is None:
            raise CrowdPlannerError(
                "prepare_workers() must be called before crowdsourcing tasks"
            )
        try:
            task = self.task_generator.generate(query, candidates)
        except TaskGenerationError:
            # All candidates pass the same landmarks; pick the best supported
            # one — the crowd could not tell them apart anyway.
            best = sorted(candidates, key=lambda c: (-c.support, c.source))[0]
            self.statistics.single_candidate_answers += 1
            self.truths.record(query, best, verified_by="indistinguishable", confidence=0.6)
            return RecommendationResult(
                query=query,
                route=best,
                method="single_candidate",
                confidence=0.6,
                candidates=list(candidates),
                evaluation=outcome,
            )

        worker_ids = self.worker_selector.select(task, self.config.workers_per_task)
        collect_block = getattr(self.crowd_backend, "collect_responses_block", None)
        for worker_id in worker_ids:
            self.worker_pool.assign(worker_id)
        try:
            # Prefer the columnar channel: responses arrive as flat numpy
            # columns and answer objects are materialized only for the
            # collected arrival prefix, when the TaskResult is built.
            block = collect_block(task, worker_ids) if collect_block is not None else None
            if block is None:
                responses = self.crowd_backend.collect_responses(task, worker_ids)
        finally:
            for worker_id in worker_ids:
                self.worker_pool.release(worker_id)

        if block is not None:
            if not len(block):
                raise WorkerSelectionError("the crowd backend returned no responses")
            result = self.aggregator.collect_block_with_early_stop(
                task, block, expected_total=len(worker_ids)
            )
        else:
            if not responses:
                raise WorkerSelectionError("the crowd backend returned no responses")
            result = self.aggregator.collect_with_early_stop(
                task, responses, expected_total=len(worker_ids)
            )
        self.statistics.crowd_tasks += 1
        self.statistics.questions_asked += result.total_questions_asked

        if block is not None:
            self._update_answer_history_block(result, block)
        else:
            self._update_answer_history(result)
        self.rewards.reward_task(result)
        self.truths.record(query, result.winning_route, verified_by="crowd", confidence=result.confidence)
        return RecommendationResult(
            query=query,
            route=result.winning_route,
            method="crowd",
            confidence=result.confidence,
            candidates=list(candidates),
            evaluation=outcome,
            task_result=result,
        )

    # ------------------------------------------------------- serving hooks
    def truth_cursor(self) -> int:
        """Position marker into the truth store's record order (delta export).

        Capture before handing state to a serving worker; pass to
        :meth:`truth_delta` later to get exactly the truths recorded since.
        """
        return len(self.truths)

    def truth_delta(self, cursor: int, upto: Optional[int] = None) -> List["VerifiedTruth"]:
        """The truths recorded/absorbed since ``cursor`` (see :meth:`truth_cursor`).

        ``upto`` bounds the delta to truths recorded before that cursor
        position — the window executor uses it to journal each batch's own
        span after several batches merged in one call.
        """
        delta = self.truths.truths_since(cursor)
        if upto is not None:
            delta = delta[: max(0, upto - max(cursor, 0))]
        return delta

    def replay_task_result(self, result: TaskResult) -> None:
        """Replay a crowd task executed elsewhere onto this planner's state.

        Re-issues the task id from this process's sequence (shard-local ids
        are process-local serials) and credits worker answer histories and
        rewards exactly as :meth:`_crowdsource` would have — the serving
        layer's merge step for crowd side effects.
        """
        reissue_task_id(result.task)
        self._update_answer_history(result)
        self.rewards.reward_task(result)

    def _update_answer_history(self, result: TaskResult) -> None:
        """Credit each answered question as correct/wrong against the verified winner."""
        winner = result.task.landmark_routes[result.winning_route_index]
        for response in result.responses:
            worker = self.worker_pool.get(response.worker_id)
            for answer in response.answers:
                correct = answer.says_yes == winner.passes(answer.landmark_id)
                worker.record_answer(answer.landmark_id, correct)

    def _update_answer_history_block(self, result: TaskResult, block) -> None:
        """Columnar twin of :meth:`_update_answer_history`.

        Grades only the collected arrival prefix (exactly the answers inside
        ``result.responses``) in one vectorized pass
        (:func:`~repro.core.evaluation.grade_answers`), then credits the
        per-worker histories in the same response/answer order as the object
        path — the counters land identically.
        """
        collected = len(result.responses)
        upto = block.questions_answered(collected)
        winner = result.task.landmark_routes[result.winning_route_index]
        landmark_ids = block.answer_landmark_ids[:upto]
        correct = grade_answers(winner, landmark_ids, block.answer_says_yes[:upto])
        landmarks = landmark_ids.tolist()
        flags = correct.tolist()
        offsets = block.answer_offsets.tolist()
        worker_ids = block.worker_ids.tolist()
        for row in range(collected):
            worker = self.worker_pool.get(worker_ids[row])
            record = worker.record_answer
            for position in range(offsets[row], offsets[row + 1]):
                record(landmarks[position], flags[position])
