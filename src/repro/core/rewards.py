"""Worker rewarding (Section II-B2).

Workers earn points proportional to their workload (questions answered) with
a quality bonus when their answer agrees with the verified final result.  The
points are credited to the worker profile, where they can later offset the
worker's own route-recommendation requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import DEFAULT_CONFIG, PlannerConfig
from .task import TaskResult
from .worker import WorkerPool


@dataclass(frozen=True)
class RewardEntry:
    """One reward credited to one worker for one task."""

    task_id: int
    worker_id: int
    questions_answered: int
    agreed_with_result: bool
    points: float


class RewardLedger:
    """Computes and records worker rewards."""

    def __init__(
        self,
        pool: WorkerPool,
        config: PlannerConfig = DEFAULT_CONFIG,
        agreement_bonus: float = 2.0,
    ):
        if agreement_bonus < 0:
            raise ValueError("agreement_bonus must be non-negative")
        self.pool = pool
        self.config = config
        self.agreement_bonus = agreement_bonus
        self._entries: List[RewardEntry] = []

    def reward_task(self, result: TaskResult) -> List[RewardEntry]:
        """Credit every responding worker of a finished task."""
        entries = []
        for response in result.responses:
            agreed = response.chosen_route_index == result.winning_route_index
            points = self.config.reward_per_question * response.questions_answered
            if agreed:
                points += self.agreement_bonus
            worker = self.pool.get(response.worker_id)
            worker.reward_points += points
            entry = RewardEntry(
                task_id=result.task.task_id,
                worker_id=response.worker_id,
                questions_answered=response.questions_answered,
                agreed_with_result=agreed,
                points=points,
            )
            self._entries.append(entry)
            entries.append(entry)
        return entries

    def entries_for(self, worker_id: int) -> List[RewardEntry]:
        """All reward entries earned by one worker."""
        return [entry for entry in self._entries if entry.worker_id == worker_id]

    def total_points_awarded(self) -> float:
        return sum(entry.points for entry in self._entries)

    def history(self) -> List[RewardEntry]:
        return list(self._entries)
