"""CrowdPlanner core: the paper's contribution.

This package implements the two-layer system of the paper's Section II —
traditional route recommendation (truth reuse, route evaluation) and
crowd-based route recommendation (task generation, worker selection, early
stop, rewarding) — with the task-generation machinery of Section III and the
worker-selection machinery of Section IV.
"""

from .route import LandmarkRoute, to_landmark_routes
from .discriminative import is_discriminative, is_simplest_discriminative
from .landmark_selection import (
    BruteForceSelector,
    GreedySelector,
    IncrementalLandmarkSelector,
    SelectionResult,
    objective_value,
)
from .question_ordering import QuestionNode, QuestionTree, build_question_tree, information_strength
from .task import Answer, Question, Task, TaskResult
from .task_generation import TaskGenerator
from .worker import Worker, WorkerPool
from .familiarity import FamiliarityModel
from .pmf import ProbabilisticMatrixFactorization
from .response_time import ResponseTimeModel
from .worker_selection import WorkerSelector
from .early_stop import EarlyStopMonitor
from .rewards import RewardLedger
from .aggregation import AnswerAggregator
from .truth import TruthDatabase, VerifiedTruth
from .evaluation import EvaluationOutcome, RouteEvaluator
from .planner import CrowdPlanner, RecommendationResult

__all__ = [
    "LandmarkRoute",
    "to_landmark_routes",
    "is_discriminative",
    "is_simplest_discriminative",
    "BruteForceSelector",
    "GreedySelector",
    "IncrementalLandmarkSelector",
    "SelectionResult",
    "objective_value",
    "QuestionNode",
    "QuestionTree",
    "build_question_tree",
    "information_strength",
    "Answer",
    "Question",
    "Task",
    "TaskResult",
    "TaskGenerator",
    "Worker",
    "WorkerPool",
    "FamiliarityModel",
    "ProbabilisticMatrixFactorization",
    "ResponseTimeModel",
    "WorkerSelector",
    "EarlyStopMonitor",
    "RewardLedger",
    "AnswerAggregator",
    "TruthDatabase",
    "VerifiedTruth",
    "EvaluationOutcome",
    "RouteEvaluator",
    "CrowdPlanner",
    "RecommendationResult",
]
