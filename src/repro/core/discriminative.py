"""Discriminative and simplest-discriminative landmark sets (Definitions 4–5).

A landmark set ``L`` is *discriminative* for a route set if the intersection
``R̄ ∩ L`` differs for every pair of routes — i.e. knowing which of the
selected landmarks a route passes identifies the route uniquely.  It is
*simplest discriminative* if removing any single landmark breaks that
property.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set

from .route import LandmarkRoute


def is_discriminative(landmark_ids: Iterable[int], routes: Sequence[LandmarkRoute]) -> bool:
    """True if ``landmark_ids`` distinguishes every pair of routes.

    With fewer than two routes any set (including the empty set) is trivially
    discriminative.
    """
    selected = list(landmark_ids)
    signatures: Set[FrozenSet[int]] = set()
    for route in routes:
        signature = route.restricted_to(selected)
        if signature in signatures:
            return False
        signatures.add(signature)
    return True


def is_simplest_discriminative(landmark_ids: Iterable[int], routes: Sequence[LandmarkRoute]) -> bool:
    """True if the set is discriminative and minimal.

    Minimal means removing any one landmark makes the set non-discriminative.
    The empty set is simplest discriminative only for route sets of size 0/1.
    """
    selected = list(dict.fromkeys(landmark_ids))
    if not is_discriminative(selected, routes):
        return False
    for index in range(len(selected)):
        reduced = selected[:index] + selected[index + 1:]
        if is_discriminative(reduced, routes):
            return False
    return True


def route_signatures(landmark_ids: Iterable[int], routes: Sequence[LandmarkRoute]) -> List[FrozenSet[int]]:
    """The joint sets ``R̄ ∩ L`` for every route, in route order."""
    selected = list(landmark_ids)
    return [route.restricted_to(selected) for route in routes]
