"""Task generation (Section III): from candidate routes to a crowd task.

The three phases of the paper are wired together here:

1. landmark significance is read from the (already inferred) catalogue;
2. landmark selection picks a small, highly significant, discriminative set
   (:mod:`repro.core.landmark_selection`);
3. question ordering builds the ID3 tree that minimises the expected number
   of questions (:mod:`repro.core.question_ordering`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..exceptions import TaskGenerationError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import CandidateRoute, RouteQuery
from ..trajectory.calibration import AnchorCalibrator
from .landmark_selection import GreedySelector, SelectionResult, _SelectorBase
from .question_ordering import build_question_tree
from .route import LandmarkRoute, significance_lookup, to_landmark_routes
from .task import Question, Task, render_question


class TaskGenerator:
    """Builds crowdsourcing tasks from candidate route sets.

    Parameters
    ----------
    calibrator:
        Anchor calibrator used to rewrite candidate routes into landmark form.
    catalog:
        Landmark catalogue (provides names and significance scores).
    selector:
        Landmark-selection algorithm; defaults to :class:`GreedySelector`
        capped at 25 candidate landmarks, which keeps worst-case latency
        bounded while matching the exact optimum on typical inputs.
    """

    def __init__(
        self,
        calibrator: AnchorCalibrator,
        catalog: LandmarkCatalog,
        selector: Optional[_SelectorBase] = None,
    ):
        self.calibrator = calibrator
        self.catalog = catalog
        self.selector = selector or GreedySelector(max_candidate_landmarks=25)

    # ------------------------------------------------------------------ steps
    def calibrate(self, candidates: Sequence[CandidateRoute]) -> List[LandmarkRoute]:
        """Rewrite candidate routes into landmark-based routes, dropping duplicates.

        Routes whose landmark sets are identical are indistinguishable to the
        crowd; only the first of each group (highest support first) is kept.
        """
        landmark_routes = to_landmark_routes(candidates, self.calibrator)
        landmark_routes.sort(key=lambda lr: (-lr.route.support, lr.source))
        unique: List[LandmarkRoute] = []
        seen = set()
        for landmark_route in landmark_routes:
            key = landmark_route.landmark_set
            if key in seen:
                continue
            seen.add(key)
            unique.append(landmark_route)
        return unique

    def select_landmarks(self, landmark_routes: Sequence[LandmarkRoute]) -> SelectionResult:
        """Run the configured landmark-selection algorithm."""
        significance = significance_lookup(landmark_routes, self.catalog)
        return self.selector.select(landmark_routes, significance)

    # -------------------------------------------------------------- interface
    def generate(self, query: RouteQuery, candidates: Sequence[CandidateRoute]) -> Task:
        """Generate the crowdsourcing task for ``query``.

        Raises :class:`TaskGenerationError` when fewer than two distinct
        candidate routes remain after calibration — in that case there is
        nothing to ask the crowd and the single route is simply the answer.
        """
        landmark_routes = self.calibrate(candidates)
        if len(landmark_routes) < 2:
            raise TaskGenerationError(
                "task generation needs at least two distinguishable candidate routes"
            )
        selection = self.select_landmarks(landmark_routes)
        significance = significance_lookup(landmark_routes, self.catalog)
        tree = build_question_tree(landmark_routes, selection.landmark_ids, significance)
        questions: Dict[int, Question] = {
            landmark_id: render_question(landmark_id, self.catalog, query.departure_time_s)
            for landmark_id in selection.landmark_ids
        }
        return Task(
            query=query,
            landmark_routes=list(landmark_routes),
            selected_landmarks=selection.landmark_ids,
            question_tree=tree,
            questions=questions,
        )
