"""Worker profiles and the worker pool (Section IV).

A :class:`Worker` is a registered CrowdPlanner user who can be assigned
evaluation tasks.  The profile captures what the worker-selection math needs:
home / work / familiar-place anchors, answer history per landmark, outstanding
task load and the response-rate parameter of the exponential response-time
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..exceptions import WorkerSelectionError
from ..spatial import Point


@dataclass
class AnswerRecord:
    """Per-landmark answer history of a worker."""

    correct: int = 0
    wrong: int = 0

    @property
    def total(self) -> int:
        return self.correct + self.wrong


@dataclass
class Worker:
    """A registered crowd worker.

    Attributes
    ----------
    worker_id:
        Unique identifier.
    home, workplace:
        Profile anchor points collected at registration.
    familiar_places:
        Additional places the worker declared familiarity with.
    response_rate:
        ``lambda`` of the exponential response-time distribution (answers per
        second); higher means faster.
    outstanding_tasks:
        Number of currently assigned, unanswered tasks.
    reward_points:
        Accumulated reward balance.
    """

    worker_id: int
    home: Point
    workplace: Point
    familiar_places: List[Point] = field(default_factory=list)
    response_rate: float = 1.0 / 600.0
    outstanding_tasks: int = 0
    reward_points: float = 0.0
    answer_history: Dict[int, AnswerRecord] = field(default_factory=dict)

    def record_answer(self, landmark_id: int, correct: bool) -> None:
        """Update the per-landmark answer history after task verification."""
        record = self.answer_history.setdefault(landmark_id, AnswerRecord())
        if correct:
            record.correct += 1
        else:
            record.wrong += 1

    def history_for(self, landmark_id: int) -> AnswerRecord:
        return self.answer_history.get(landmark_id, AnswerRecord())

    def anchors(self) -> List[Point]:
        """Home, workplace and declared familiar places."""
        return [self.home, self.workplace, *self.familiar_places]

    def nearest_familiar_place(self, target: Point) -> Point:
        """The declared familiar place closest to ``target`` (home if none declared)."""
        if not self.familiar_places:
            return self.home
        return min(self.familiar_places, key=lambda place: place.distance_to(target))


class WorkerPool:
    """The registry of all workers known to the system."""

    def __init__(self, workers: Optional[Iterable[Worker]] = None):
        self._workers: Dict[int, Worker] = {}
        if workers:
            for worker in workers:
                self.add(worker)

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers.values())

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._workers

    def add(self, worker: Worker) -> None:
        if worker.worker_id in self._workers:
            raise WorkerSelectionError(f"worker id {worker.worker_id} already registered")
        self._workers[worker.worker_id] = worker

    def get(self, worker_id: int) -> Worker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise WorkerSelectionError(f"unknown worker id {worker_id}") from None

    def ids(self) -> List[int]:
        return list(self._workers)

    def workers(self) -> List[Worker]:
        return list(self._workers.values())

    def assign(self, worker_id: int) -> None:
        """Increment a worker's outstanding-task counter."""
        self.get(worker_id).outstanding_tasks += 1

    def release(self, worker_id: int) -> None:
        """Decrement a worker's outstanding-task counter (not below zero)."""
        worker = self.get(worker_id)
        worker.outstanding_tasks = max(0, worker.outstanding_tasks - 1)
