"""Landmark-based routes (Definition 3 of the paper).

A :class:`LandmarkRoute` pairs a candidate route with the ordered sequence of
landmarks it passes, produced by anchor-based calibration.  Task generation
works entirely on these landmark sequences: questions are about landmarks, and
two routes are distinguishable only through landmarks that appear on one but
not the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..exceptions import TaskGenerationError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import CandidateRoute
from ..trajectory.calibration import AnchorCalibrator


@dataclass(frozen=True)
class LandmarkRoute:
    """A candidate route rewritten as a finite sequence of landmarks."""

    route: CandidateRoute
    landmark_sequence: Tuple[int, ...]

    def __init__(self, route: CandidateRoute, landmark_sequence: Sequence[int]):
        object.__setattr__(self, "route", route)
        object.__setattr__(self, "landmark_sequence", tuple(landmark_sequence))

    @property
    def landmark_set(self) -> FrozenSet[int]:
        """The set of landmark ids this route passes."""
        return frozenset(self.landmark_sequence)

    @property
    def source(self) -> str:
        return self.route.source

    def passes(self, landmark_id: int) -> bool:
        """True if the route passes the landmark."""
        return landmark_id in self.landmark_set

    def restricted_to(self, landmark_ids: Sequence[int]) -> FrozenSet[int]:
        """The joint set ``R̄ ∩ L`` used by the discriminative-set definition."""
        wanted = set(landmark_ids)
        return frozenset(landmark_id for landmark_id in self.landmark_sequence if landmark_id in wanted)


def to_landmark_routes(
    candidates: Sequence[CandidateRoute],
    calibrator: AnchorCalibrator,
) -> List[LandmarkRoute]:
    """Calibrate every candidate route into its landmark-based form."""
    landmark_routes = []
    for candidate in candidates:
        sequence = calibrator.calibrate_path(candidate.path)
        landmark_routes.append(LandmarkRoute(candidate, sequence))
    return landmark_routes


def beneficial_landmarks(routes: Sequence[LandmarkRoute]) -> List[int]:
    """Landmarks on some but not all routes: ``union - intersection``.

    Landmarks on every route (or on none) cannot distinguish anything, so the
    selection algorithms filter them out first (the paper's "preparation
    step").
    """
    if not routes:
        return []
    union = set()
    intersection: Optional[set] = None
    for route in routes:
        landmark_set = set(route.landmark_set)
        union |= landmark_set
        intersection = landmark_set if intersection is None else (intersection & landmark_set)
    return sorted(union - (intersection or set()))


def ensure_distinguishable(routes: Sequence[LandmarkRoute]) -> None:
    """Raise :class:`TaskGenerationError` if two routes share the same landmark set.

    Two candidate routes that pass exactly the same landmarks cannot be told
    apart by any landmark question; the caller should deduplicate them (they
    are, for the crowd's purposes, the same route).
    """
    seen: Dict[FrozenSet[int], str] = {}
    for route in routes:
        key = route.landmark_set
        if key in seen:
            raise TaskGenerationError(
                f"routes from {seen[key]!r} and {route.source!r} pass identical "
                "landmark sets and cannot be distinguished by landmark questions"
            )
        seen[key] = route.source


def significance_lookup(routes: Sequence[LandmarkRoute], catalog: LandmarkCatalog) -> Dict[int, float]:
    """Significance of every landmark appearing on any of the routes."""
    scores: Dict[int, float] = {}
    for route in routes:
        for landmark_id in route.landmark_sequence:
            if landmark_id not in scores:
                scores[landmark_id] = catalog.significance_of(landmark_id)
    return scores
