"""Crowdsourcing task objects: questions, answers and task results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exceptions import TaskGenerationError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import CandidateRoute, RouteQuery
from .question_ordering import QuestionTree
from .route import LandmarkRoute

_task_ids = itertools.count(1)


@dataclass(frozen=True)
class Question:
    """A single binary question shown to a worker.

    The wording follows the paper's example: "do you prefer the route passing
    <landmark> (around <time>)?".
    """

    landmark_id: int
    text: str


@dataclass(frozen=True)
class Answer:
    """One worker's yes/no answer to one question."""

    worker_id: int
    landmark_id: int
    says_yes: bool
    response_time_s: float = 0.0


@dataclass
class WorkerResponse:
    """A worker's complete pass over a task: the questions asked and the
    route their answers resolved to."""

    worker_id: int
    answers: List[Answer]
    chosen_route_index: int
    total_response_time_s: float

    @property
    def questions_answered(self) -> int:
        return len(self.answers)


@dataclass
class Task:
    """A crowdsourcing task for one route-recommendation request.

    A task bundles the original query, the candidate routes in landmark-based
    form, the selected (discriminative) landmark set and the ID3 question
    tree that orders the questions.
    """

    query: RouteQuery
    landmark_routes: List[LandmarkRoute]
    selected_landmarks: Tuple[int, ...]
    question_tree: QuestionTree
    questions: Dict[int, Question]
    task_id: int = field(default_factory=lambda: next(_task_ids))

    @property
    def candidate_routes(self) -> List[CandidateRoute]:
        return [landmark_route.route for landmark_route in self.landmark_routes]

    @property
    def num_candidates(self) -> int:
        return len(self.landmark_routes)

    def question_for(self, landmark_id: int) -> Question:
        try:
            return self.questions[landmark_id]
        except KeyError:
            raise TaskGenerationError(
                f"task {self.task_id} has no question about landmark {landmark_id}"
            ) from None

    def route_index(self, landmark_route: LandmarkRoute) -> int:
        """Index of a landmark route within the task's candidate list."""
        for index, candidate in enumerate(self.landmark_routes):
            if candidate is landmark_route or (
                candidate.route.path == landmark_route.route.path
                and candidate.source == landmark_route.source
            ):
                return index
        raise TaskGenerationError("route does not belong to this task")

    def max_questions(self) -> int:
        """Worst-case number of questions a worker may be asked."""
        return self.question_tree.depth()

    def expected_questions(self) -> float:
        """Expected number of questions under a uniform route prior."""
        return self.question_tree.expected_questions()


def reissue_task_id(task: Task) -> None:
    """Re-number ``task`` from this process's id sequence.

    The sharded serving engine generates tasks inside worker processes, whose
    forked id counters advance independently; re-issuing ids at merge time
    keeps the parent planner's task-id sequence exactly as if the batch had
    been answered sequentially.
    """
    task.task_id = next(_task_ids)


@dataclass
class TaskResult:
    """Aggregated outcome of a task after (a subset of) workers responded."""

    task: Task
    responses: List[WorkerResponse]
    votes: Dict[int, int]
    winning_route_index: int
    confidence: float
    stopped_early: bool

    @property
    def winning_route(self) -> CandidateRoute:
        return self.task.candidate_routes[self.winning_route_index]

    @property
    def total_questions_asked(self) -> int:
        return sum(response.questions_answered for response in self.responses)


def render_question(landmark_id: int, catalog: LandmarkCatalog, departure_time_s: float) -> Question:
    """Produce the human-readable binary question about a landmark."""
    landmark = catalog.get(landmark_id)
    hour = int(departure_time_s // 3600) % 24
    minute = int((departure_time_s % 3600) // 60)
    text = (
        f"Travelling around {hour:02d}:{minute:02d}, would you prefer the route "
        f"passing {landmark.name}?"
    )
    return Question(landmark_id=landmark_id, text=text)
