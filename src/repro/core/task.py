"""Crowdsourcing task objects: questions, answers and task results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import TaskGenerationError
from ..landmarks.model import LandmarkCatalog
from ..routing.base import CandidateRoute, RouteQuery
from .question_ordering import QuestionTree
from .route import LandmarkRoute

_task_ids = itertools.count(1)


@dataclass(frozen=True)
class Question:
    """A single binary question shown to a worker.

    The wording follows the paper's example: "do you prefer the route passing
    <landmark> (around <time>)?".
    """

    landmark_id: int
    text: str


@dataclass(frozen=True)
class Answer:
    """One worker's yes/no answer to one question."""

    worker_id: int
    landmark_id: int
    says_yes: bool
    response_time_s: float = 0.0


@dataclass
class WorkerResponse:
    """A worker's complete pass over a task: the questions asked and the
    route their answers resolved to."""

    worker_id: int
    answers: List[Answer]
    chosen_route_index: int
    total_response_time_s: float

    @property
    def questions_answered(self) -> int:
        return len(self.answers)


@dataclass(eq=False)  # ndarray fields: identity comparison, not elementwise
class ResponseBlock:
    """Columnar form of one task's worker responses, in arrival order.

    The batched crowd simulator produces its responses as flat numpy columns
    instead of :class:`Answer`/:class:`WorkerResponse` object trees: one row
    per response in the per-response columns, one row per answered question
    in the per-answer columns, with ``answer_offsets`` slicing the answer
    columns CSR-style per response.  Downstream consumers that only need
    counts, votes or correctness (tallying, early stopping, answer-history
    grading) read the columns directly; :class:`WorkerResponse` objects are
    materialized lazily — and only for the arrival prefix that was actually
    collected — at the planner boundary via :meth:`materialize`.

    ``answer_correct`` records each answer's agreement with the simulation's
    *ground truth* (a diagnostic column; grading against the crowd-verified
    winner happens downstream, because the winner is only known after
    aggregation), and ``answer_accuracy`` the behaviour-model accuracy the
    answer was sampled under.
    """

    task: Task
    #: per-response columns (arrival order)
    worker_ids: np.ndarray            # int64
    chosen_route_index: np.ndarray    # int64
    total_response_time_s: np.ndarray  # float64
    #: CSR offsets into the per-answer columns, length ``len(self) + 1``
    answer_offsets: np.ndarray        # int64
    #: per-answer columns (response order, question order within a response)
    answer_landmark_ids: np.ndarray   # int64
    answer_says_yes: np.ndarray       # bool
    answer_correct: np.ndarray        # bool (vs ground truth)
    answer_accuracy: np.ndarray       # float64
    answer_time_s: np.ndarray         # float64
    _materialized: Optional[List[WorkerResponse]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.worker_ids)

    @property
    def num_answers(self) -> int:
        return len(self.answer_landmark_ids)

    def questions_answered(self, upto: Optional[int] = None) -> int:
        """Total questions answered by the first ``upto`` responses (all by
        default) — ``sum(r.questions_answered)`` without materializing."""
        position = len(self) if upto is None else upto
        return int(self.answer_offsets[position])

    def materialize(self, upto: Optional[int] = None) -> List[WorkerResponse]:
        """Materialize the first ``upto`` responses (all by default) as
        :class:`WorkerResponse` objects, identical to the object path's.

        The full materialization is cached (benchmark equivalence checks and
        repeated planner-boundary reads pay the object construction once);
        prefixes reuse the cache when present.
        """
        count = len(self) if upto is None else min(upto, len(self))
        if self._materialized is not None:
            return self._materialized[:count]
        offsets = self.answer_offsets
        # Convert only what the prefix needs: an early-stopped task
        # materializes nothing of the uncollected tail.
        answers_end = int(offsets[count])
        worker_ids = self.worker_ids[:count].tolist()
        chosen = self.chosen_route_index[:count].tolist()
        totals = self.total_response_time_s[:count].tolist()
        landmarks = self.answer_landmark_ids[:answers_end].tolist()
        says_yes = self.answer_says_yes[:answers_end].tolist()
        times = self.answer_time_s[:answers_end].tolist()
        responses = []
        for row in range(count):
            worker_id = worker_ids[row]
            answers = [
                Answer(
                    worker_id=worker_id,
                    landmark_id=landmarks[position],
                    says_yes=says_yes[position],
                    response_time_s=times[position],
                )
                for position in range(offsets[row], offsets[row + 1])
            ]
            responses.append(
                WorkerResponse(
                    worker_id=worker_id,
                    answers=answers,
                    chosen_route_index=chosen[row],
                    total_response_time_s=totals[row],
                )
            )
        if count == len(self):
            self._materialized = responses
        return responses

    def to_responses(self) -> List[WorkerResponse]:
        """Every response as objects (cached full materialization)."""
        return self.materialize()


@dataclass
class Task:
    """A crowdsourcing task for one route-recommendation request.

    A task bundles the original query, the candidate routes in landmark-based
    form, the selected (discriminative) landmark set and the ID3 question
    tree that orders the questions.
    """

    query: RouteQuery
    landmark_routes: List[LandmarkRoute]
    selected_landmarks: Tuple[int, ...]
    question_tree: QuestionTree
    questions: Dict[int, Question]
    task_id: int = field(default_factory=lambda: next(_task_ids))

    @property
    def candidate_routes(self) -> List[CandidateRoute]:
        return [landmark_route.route for landmark_route in self.landmark_routes]

    @property
    def num_candidates(self) -> int:
        return len(self.landmark_routes)

    def question_for(self, landmark_id: int) -> Question:
        try:
            return self.questions[landmark_id]
        except KeyError:
            raise TaskGenerationError(
                f"task {self.task_id} has no question about landmark {landmark_id}"
            ) from None

    def route_index(self, landmark_route: LandmarkRoute) -> int:
        """Index of a landmark route within the task's candidate list."""
        for index, candidate in enumerate(self.landmark_routes):
            if candidate is landmark_route or (
                candidate.route.path == landmark_route.route.path
                and candidate.source == landmark_route.source
            ):
                return index
        raise TaskGenerationError("route does not belong to this task")

    def max_questions(self) -> int:
        """Worst-case number of questions a worker may be asked."""
        return self.question_tree.depth()

    def expected_questions(self) -> float:
        """Expected number of questions under a uniform route prior."""
        return self.question_tree.expected_questions()


def reissue_task_id(task: Task) -> None:
    """Re-number ``task`` from this process's id sequence.

    The sharded serving engine generates tasks inside worker processes, whose
    forked id counters advance independently; re-issuing ids at merge time
    keeps the parent planner's task-id sequence exactly as if the batch had
    been answered sequentially.
    """
    task.task_id = next(_task_ids)


@dataclass
class TaskResult:
    """Aggregated outcome of a task after (a subset of) workers responded."""

    task: Task
    responses: List[WorkerResponse]
    votes: Dict[int, int]
    winning_route_index: int
    confidence: float
    stopped_early: bool

    @property
    def winning_route(self) -> CandidateRoute:
        return self.task.candidate_routes[self.winning_route_index]

    @property
    def total_questions_asked(self) -> int:
        return sum(response.questions_answered for response in self.responses)


def render_question(landmark_id: int, catalog: LandmarkCatalog, departure_time_s: float) -> Question:
    """Produce the human-readable binary question about a landmark."""
    landmark = catalog.get(landmark_id)
    hour = int(departure_time_s // 3600) % 24
    minute = int((departure_time_s % 3600) // 60)
    text = (
        f"Travelling around {hour:02d}:{minute:02d}, would you prefer the route "
        f"passing {landmark.name}?"
    )
    return Question(landmark_id=landmark_id, text=text)
