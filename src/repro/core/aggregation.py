"""Aggregation of worker responses into a task result.

Both response representations are supported: the object path
(:class:`~repro.core.task.WorkerResponse` lists) and the columnar path
(:class:`~repro.core.task.ResponseBlock`), whose votes are tallied straight
off the ``chosen_route_index`` column without materializing any answer
objects until the final :class:`TaskResult` is built.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import TaskGenerationError
from .early_stop import EarlyStopMonitor
from .task import ResponseBlock, Task, TaskResult, WorkerResponse


class AnswerAggregator:
    """Counts votes over candidate routes and builds the final task result.

    Each worker's traversal of the question tree resolves to exactly one
    candidate route; aggregation is majority voting over those resolutions,
    with ties broken by historical support and then by source name, so the
    outcome is deterministic.
    """

    def __init__(self, config: PlannerConfig = DEFAULT_CONFIG, early_stop: Optional[EarlyStopMonitor] = None):
        self.config = config
        self.early_stop = early_stop or EarlyStopMonitor(config)

    def tally(self, responses: Sequence[WorkerResponse]) -> Dict[int, int]:
        """Votes per candidate-route index."""
        votes: Dict[int, int] = defaultdict(int)
        for response in responses:
            votes[response.chosen_route_index] += 1
        return dict(votes)

    def winning_index(self, task: Task, votes: Dict[int, int]) -> int:
        """The winning route index under majority voting with deterministic ties."""
        if not votes:
            raise TaskGenerationError("cannot determine a winner without any response")

        def sort_key(index: int):
            route = task.candidate_routes[index]
            return (-votes.get(index, 0), -route.support, route.source, index)

        return sorted(votes, key=sort_key)[0]

    def aggregate(
        self,
        task: Task,
        responses: Sequence[WorkerResponse],
        expected_total: Optional[int] = None,
        stopped_early: bool = False,
    ) -> TaskResult:
        """Build the :class:`TaskResult` for the collected responses."""
        if not responses:
            raise TaskGenerationError("cannot aggregate an empty response set")
        votes = self.tally(responses)
        winner = self.winning_index(task, votes)
        confidence = self.early_stop.confidence(votes)
        return TaskResult(
            task=task,
            responses=list(responses),
            votes=votes,
            winning_route_index=winner,
            confidence=confidence,
            stopped_early=stopped_early,
        )

    def collect_with_early_stop(
        self,
        task: Task,
        responses_in_arrival_order: Sequence[WorkerResponse],
        expected_total: Optional[int] = None,
    ) -> TaskResult:
        """Process responses in arrival order, stopping as soon as allowed.

        ``expected_total`` defaults to the number of supplied responses (i.e.
        everyone who was assigned eventually answers).
        """
        if not responses_in_arrival_order:
            raise TaskGenerationError("cannot aggregate an empty response set")
        expected = expected_total if expected_total is not None else len(responses_in_arrival_order)
        collected: List[WorkerResponse] = []
        for response in responses_in_arrival_order:
            collected.append(response)
            votes = self.tally(collected)
            decision = self.early_stop.evaluate(votes, expected)
            if decision.should_stop:
                return self.aggregate(task, collected, expected, stopped_early=len(collected) < len(responses_in_arrival_order))
        return self.aggregate(task, collected, expected, stopped_early=False)

    def collect_block_with_early_stop(
        self,
        task: Task,
        block: ResponseBlock,
        expected_total: Optional[int] = None,
    ) -> TaskResult:
        """Columnar twin of :meth:`collect_with_early_stop`.

        Walks the block's arrival-ordered ``chosen_route_index`` column,
        accumulating votes incrementally (the object path re-tallies the
        prefix after every response — same counts, quadratic work) and
        evaluating the early-stop rule after each one.  Only the collected
        arrival prefix is materialized into :class:`WorkerResponse` objects,
        and the final :class:`TaskResult` is built by :meth:`aggregate` on
        that prefix — the exact code path the object oracle ends in.
        """
        total = len(block)
        if total == 0:
            raise TaskGenerationError("cannot aggregate an empty response set")
        expected = expected_total if expected_total is not None else total
        # .tolist() once: Python ints keep the votes dict (and everything
        # derived from it) free of numpy scalar types.
        chosen = block.chosen_route_index.tolist()
        votes: Dict[int, int] = {}
        collected = 0
        stopped = False
        for index in chosen:
            votes[index] = votes.get(index, 0) + 1
            collected += 1
            if self.early_stop.evaluate(votes, expected).should_stop:
                stopped = collected < total
                break
        return self.aggregate(
            task, block.materialize(collected), expected, stopped_early=stopped
        )
