"""Early stopping of crowd tasks (Section II-B2).

The system does not always need all assigned workers to respond.  After each
collected response the early-stop monitor evaluates the confidence of the
current leading route; if the leader holds a large enough share of the votes
(and mathematically cannot be a fluke given how many answers are still
outstanding), the answer is returned immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import DEFAULT_CONFIG, PlannerConfig


@dataclass(frozen=True)
class EarlyStopDecision:
    """The monitor's verdict after a batch of responses."""

    should_stop: bool
    leading_route_index: Optional[int]
    confidence: float
    votes_collected: int


class EarlyStopMonitor:
    """Decides when enough crowd answers have been collected.

    Parameters
    ----------
    config:
        Supplies ``early_stop_confidence``.
    min_responses:
        Never stop before this many responses have been collected (a single
        vote, however confident, is not a consensus).
    """

    def __init__(self, config: PlannerConfig = DEFAULT_CONFIG, min_responses: int = 2):
        if min_responses < 1:
            raise ValueError("min_responses must be at least 1")
        self.config = config
        self.min_responses = min_responses

    def confidence(self, votes: Dict[int, int]) -> float:
        """Confidence of the current leader: its share of collected votes."""
        total = sum(votes.values())
        if total == 0:
            return 0.0
        return max(votes.values()) / total

    def unbeatable(self, votes: Dict[int, int], expected_total: int) -> bool:
        """True if no other route can catch the leader with the remaining votes."""
        if not votes:
            return False
        total = sum(votes.values())
        remaining = max(0, expected_total - total)
        ordered = sorted(votes.values(), reverse=True)
        leader = ordered[0]
        runner_up = ordered[1] if len(ordered) > 1 else 0
        return leader > runner_up + remaining

    def evaluate(self, votes: Dict[int, int], expected_total: int) -> EarlyStopDecision:
        """Evaluate the collected votes against the stopping rule.

        Stops when the leader's share reaches ``early_stop_confidence`` (with
        at least ``min_responses`` collected), or when the leader is already
        mathematically unbeatable.
        """
        total = sum(votes.values())
        if total == 0:
            return EarlyStopDecision(False, None, 0.0, 0)
        leading_index = max(votes.items(), key=lambda item: (item[1], -item[0]))[0]
        confidence = self.confidence(votes)
        stop = False
        if total >= self.min_responses and confidence >= self.config.early_stop_confidence:
            stop = True
        if self.unbeatable(votes, expected_total):
            stop = True
        return EarlyStopDecision(stop, leading_index, confidence, total)
