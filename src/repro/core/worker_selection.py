"""Top-k eligible worker selection (Section IV-C).

An eligible worker (1) has spare quota, (2) is likely to answer before the
user's deadline, and (3) is familiar with the task's landmarks.  Among
eligible workers the final ranking uses a *rated voting system*: every task
landmark "votes" by ranking the candidate workers that know it, assigning the
preference score ``1 - (rank - 1) / |W_l|``; the k workers with the highest
summed preference win.  This balances depth of knowledge against coverage —
a worker who knows every landmark a little can beat a worker who knows one
landmark perfectly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import WorkerSelectionError
from .familiarity import FamiliarityModel
from .response_time import ResponseTimeModel
from .task import Task
from .worker import Worker, WorkerPool


@dataclass(frozen=True)
class WorkerScore:
    """Ranking diagnostics for one candidate worker."""

    worker_id: int
    preference_score: float
    familiarity_sum: float
    landmarks_known: int


class WorkerSelector:
    """Finds the top-k most eligible workers for a task."""

    def __init__(
        self,
        pool: WorkerPool,
        familiarity: FamiliarityModel,
        config: PlannerConfig = DEFAULT_CONFIG,
        response_time_model: Optional[ResponseTimeModel] = None,
    ):
        self.pool = pool
        self.familiarity = familiarity
        self.config = config
        self.response_time_model = response_time_model or ResponseTimeModel()

    # -------------------------------------------------------------- filters
    def has_quota(self, worker: Worker) -> bool:
        """Condition 1: the worker has fewer outstanding tasks than ``eta_#q``."""
        return worker.outstanding_tasks < self.config.worker_quota

    def meets_deadline(self, worker: Worker, deadline_s: float) -> bool:
        """Condition 2: probability of answering within the deadline >= ``eta_time``."""
        return self.response_time_model.meets_deadline(
            worker, deadline_s, self.config.response_time_threshold
        )

    def candidate_workers(self, task: Task) -> List[int]:
        """Workers knowing at least one task landmark and passing both filters."""
        knowing: set = set()
        for landmark_id in task.selected_landmarks:
            knowing.update(self.familiarity.workers_knowing(landmark_id))
        eligible = []
        for worker_id in sorted(knowing):
            worker = self.pool.get(worker_id)
            if not self.has_quota(worker):
                continue
            if not self.meets_deadline(worker, task.query.max_response_time_s):
                continue
            eligible.append(worker_id)
        return eligible

    # -------------------------------------------------------------- ranking
    def rank_candidates(self, task: Task, candidates: Sequence[int]) -> List[WorkerScore]:
        """Rated-voting ranking of candidate workers for a task."""
        preference: Dict[int, float] = {worker_id: 0.0 for worker_id in candidates}
        familiarity_sum: Dict[int, float] = {worker_id: 0.0 for worker_id in candidates}
        landmarks_known: Dict[int, int] = {worker_id: 0 for worker_id in candidates}

        for landmark_id in task.selected_landmarks:
            voters = [
                (worker_id, self.familiarity.accumulated_score(worker_id, landmark_id))
                for worker_id in candidates
            ]
            voters = [(worker_id, score) for worker_id, score in voters if score > 0.0]
            if not voters:
                continue
            # Rank descending by familiarity; ties broken by worker id so the
            # ordering (and therefore the preference score) is deterministic.
            voters.sort(key=lambda item: (-item[1], item[0]))
            pool_size = len(voters)
            for rank, (worker_id, score) in enumerate(voters, start=1):
                preference[worker_id] += 1.0 - (rank - 1) / pool_size
                familiarity_sum[worker_id] += score
                landmarks_known[worker_id] += 1

        scores = [
            WorkerScore(
                worker_id=worker_id,
                preference_score=preference[worker_id],
                familiarity_sum=familiarity_sum[worker_id],
                landmarks_known=landmarks_known[worker_id],
            )
            for worker_id in candidates
        ]
        scores.sort(key=lambda s: (-s.preference_score, -s.familiarity_sum, s.worker_id))
        return scores

    def rank_by_familiarity_sum(self, task: Task, candidates: Sequence[int]) -> List[WorkerScore]:
        """Naive baseline: rank purely by summed accumulated familiarity.

        This is the biased ranking the paper argues against (a worker with
        deep knowledge of a single landmark outranks one with broad coverage);
        it is kept as the ablation baseline for experiment E5.
        """
        scores = []
        for worker_id in candidates:
            total = 0.0
            known = 0
            for landmark_id in task.selected_landmarks:
                value = self.familiarity.accumulated_score(worker_id, landmark_id)
                total += value
                if value > 0:
                    known += 1
            scores.append(
                WorkerScore(
                    worker_id=worker_id,
                    preference_score=total,
                    familiarity_sum=total,
                    landmarks_known=known,
                )
            )
        scores.sort(key=lambda s: (-s.familiarity_sum, s.worker_id))
        return scores

    # ------------------------------------------------------------ interface
    def select(self, task: Task, k: Optional[int] = None, use_rated_voting: bool = True) -> List[int]:
        """Return the ids of the top-k eligible workers for ``task``.

        Raises :class:`WorkerSelectionError` when no worker passes the
        eligibility filters.
        """
        k = k if k is not None else self.config.workers_per_task
        if k < 1:
            raise WorkerSelectionError("k must be at least 1")
        candidates = self.candidate_workers(task)
        if not candidates:
            raise WorkerSelectionError(
                "no eligible worker is familiar with the task's landmarks"
            )
        if use_rated_voting:
            ranking = self.rank_candidates(task, candidates)
        else:
            ranking = self.rank_by_familiarity_sum(task, candidates)
        return [score.worker_id for score in ranking[:k]]
