"""Verified-truth database and truth reuse (Section II-B1).

Once a best route between two places (at a departure-time slot) has been
verified — either because the candidate sources strongly agreed or because
the crowd voted — it is stored as a :class:`VerifiedTruth`.  Subsequent
requests whose endpoints fall within the reuse radius of a stored truth and
whose departure time falls in the same time slot are answered immediately,
which is the main lever the paper uses to keep crowdsourcing cost down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..exceptions import TruthStoreError
from ..roadnet.graph import RoadNetwork
from ..routing.base import CandidateRoute, RouteQuery
from ..spatial import GridIndex, Point

class _TruthIdSequence:
    """Process-global truth-id sequence.

    Unlike a bare :func:`itertools.count`, the sequence can be advanced past
    externally issued ids: when a serving worker adopts truths merged by the
    parent process (:meth:`TruthDatabase.adopt_all`), its local sequence must
    jump past the adopted ids so locally recorded truths keep the sequential
    invariant "newer truth => larger id" — the id is the deterministic
    tie-break of :meth:`TruthDatabase.lookup`.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1):
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def advance_past(self, value: int) -> None:
        """Ensure the next issued id is strictly greater than ``value``."""
        if value >= self._next:
            self._next = value + 1


_truth_ids = _TruthIdSequence()


def truth_id_watermark() -> int:
    """The next truth id this process would issue (exclusive upper bound of
    every id issued so far).

    The sub-shard hand-off machinery (:func:`repro.serving.shards
    .handoff_id_base`) uses this to pick provisional truth-id regions that
    are strictly greater than any id currently visible in this process, so
    retagged hand-off truths always rank *newer* than base truths inside a
    worker clone — preserving the lookup tie-break order a sequential run
    would have seen.
    """
    return _truth_ids._next


@dataclass(frozen=True)
class VerifiedTruth:
    """A verified best route between two places for one departure-time slot."""

    truth_id: int
    origin: Point
    destination: Point
    time_slot: int
    route: CandidateRoute
    verified_by: str
    confidence: float

    @property
    def source(self) -> str:
        return self.route.source


class TruthDatabase:
    """Stores verified truths and answers reuse lookups."""

    def __init__(self, network: RoadNetwork, config: PlannerConfig = DEFAULT_CONFIG):
        self.network = network
        self.config = config
        self._truths: Dict[int, VerifiedTruth] = {}
        cell_size = max(200.0, config.truth_reuse_radius_m)
        self._origin_index: GridIndex[int] = GridIndex(cell_size=cell_size)
        # Second index over destinations: od lookups intersect the two radius
        # queries instead of scanning every origin match with a Python-level
        # distance check.
        self._destination_index: GridIndex[int] = GridIndex(cell_size=cell_size)

    def __len__(self) -> int:
        return len(self._truths)

    def __contains__(self, truth_id: int) -> bool:
        """Whether a truth with this id is stored (journal replay uses this
        to skip records that were already adopted, making replay idempotent)."""
        return truth_id in self._truths

    @property
    def reuse_cell_size_m(self) -> float:
        """Grid cell size of the endpoint indexes (floored reuse radius).

        Batch planning quantises od-pairs at this resolution so its groups
        stay aligned with the truth store's spatial granularity.
        """
        return self._origin_index.cell_size

    # ------------------------------------------------------------------ time
    def time_slot_of(self, departure_time_s: float) -> int:
        """Map a departure time to its slot index."""
        slot_width_s = self.config.truth_time_slot_minutes * 60
        return int((departure_time_s % (24 * 3600)) // slot_width_s)

    # ----------------------------------------------------------------- write
    def record(
        self,
        query: RouteQuery,
        route: CandidateRoute,
        verified_by: str,
        confidence: float,
    ) -> VerifiedTruth:
        """Store a verified truth for ``query``."""
        if not 0.0 <= confidence <= 1.0:
            raise TruthStoreError("confidence must be in [0, 1]")
        truth = VerifiedTruth(
            truth_id=_truth_ids.next(),
            origin=self.network.node_location(query.origin),
            destination=self.network.node_location(query.destination),
            time_slot=self.time_slot_of(query.departure_time_s),
            route=route,
            verified_by=verified_by,
            confidence=confidence,
        )
        self._adopt(truth)
        return truth

    def _adopt(self, truth: VerifiedTruth) -> None:
        """Insert an already-built truth, keeping its id (partition/merge path)."""
        self._truths[truth.truth_id] = truth
        self._origin_index.insert(truth.truth_id, truth.origin)
        self._destination_index.insert(truth.truth_id, truth.destination)

    # ------------------------------------------------------------ partitioning
    def destination_cell_of(self, point: Point) -> Tuple[int, int]:
        """The destination-index grid cell ``point`` falls in."""
        return self._destination_index.cell_of(point)

    def partition_by_cells(self, cells: Iterable[Tuple[int, int]]) -> "TruthDatabase":
        """A new store holding the truths whose *destination* falls in ``cells``.

        This is the shard-shipping primitive of the serving layer: each shard
        of a batch receives the partition covering its queries' destination
        cells (expanded by the interaction reach, see
        :meth:`~repro.core.planner.CrowdPlanner.shard_plan`), which is a
        superset of every truth its queries can observe — lookups filter by
        exact radius, so surplus truths are harmless, while a missing one
        would change an answer.  Truths keep their ids and relative insertion
        order, so distance-tie-breaking inside the partition agrees with the
        parent store.  The partition is an independent store: truths recorded
        into it do not appear in the parent (merge them back explicitly with
        :meth:`absorb`).
        """
        partition = TruthDatabase(self.network, self.config)
        # The destination index already buckets truths by exactly these
        # cells, so the partition is built in O(its size), not O(store);
        # index insertion order is record order, so relative id order (the
        # lookup tie-break) is preserved.
        for truth_id in self._destination_index.items_in_cells(cells):
            partition._adopt(self._truths[truth_id])
        return partition

    def view_by_cells(self, cells: Iterable[Tuple[int, int]]) -> "TruthDatabaseView":
        """A copy-on-write view of the truths whose destination falls in ``cells``.

        Semantically identical to :meth:`partition_by_cells` — same member
        set, same lookup/neighbourhood answers, same ``all()`` order — but
        built in O(members) *without copying* the member truths into new
        spatial indexes: reads consult this store's indexes filtered by the
        membership set, while writes (:meth:`record`) land in a private
        overlay.  This is how serving shards are seeded: a shard ships (or,
        under ``fork``, inherits) only the destination-cell index slice
        instead of a materialised partition.  The base store must not be
        mutated while the view is live (the serving layer merges shard
        writes back only after every shard has finished).
        """
        return TruthDatabaseView(self, cells)

    def absorb(self, truths: Iterable[VerifiedTruth]) -> List[VerifiedTruth]:
        """Merge truths recorded in partitions back, assigning fresh ids.

        ``truths`` must be ordered the way a sequential run would have
        recorded them (the serving engine orders them by query submission
        position); each is re-issued under this store's id sequence so the
        merged store is indistinguishable — up to the process-local id values
        themselves — from one that recorded the batch sequentially.
        """
        merged: List[VerifiedTruth] = []
        for truth in truths:
            renumbered = VerifiedTruth(
                truth_id=_truth_ids.next(),
                origin=truth.origin,
                destination=truth.destination,
                time_slot=truth.time_slot,
                route=truth.route,
                verified_by=truth.verified_by,
                confidence=truth.confidence,
            )
            self._adopt(renumbered)
            merged.append(renumbered)
        return merged

    def adopt_all(self, truths) -> None:
        """Adopt already-issued truths *keeping their ids* (delta import hook).

        This is the receiving end of the serving layer's truth streaming: a
        pool worker applies the parent's merged deltas to its warm base store
        so later batches observe them exactly as the parent does.  Ids are
        preserved (they are the lookup tie-break, so relative order must
        match the parent) and the process-local id sequence is advanced past
        them, keeping locally recorded truths strictly newer.

        ``truths`` is any iterable of :class:`VerifiedTruth` — or a columnar
        :class:`~repro.serving.protocol.TruthDeltaBlock`, which is decoded
        against this store's own network (duck-typed via ``decode_truths``
        so the core layer needs no serving import).
        """
        decode = getattr(truths, "decode_truths", None)
        if decode is not None:
            truths = decode(self.network)
        for truth in truths:
            if truth.truth_id in self._truths:
                raise TruthStoreError(f"truth id {truth.truth_id} already present")
            self._adopt(truth)
            _truth_ids.advance_past(truth.truth_id)

    # ------------------------------------------------------------------ read
    def get(self, truth_id: int) -> VerifiedTruth:
        try:
            return self._truths[truth_id]
        except KeyError:
            raise TruthStoreError(f"unknown truth id {truth_id}") from None

    def all(self) -> List[VerifiedTruth]:
        return list(self._truths.values())

    def truths_since(self, position: int) -> List[VerifiedTruth]:
        """Truths recorded/absorbed after the first ``position`` (delta export).

        ``position`` is a cursor previously captured as ``len(store)``;
        record order is stable and truths are never removed, so the slice is
        exactly what a consumer synced at ``position`` is missing.
        """
        if position <= 0:
            return self.all()
        if position >= len(self._truths):
            return []  # the common already-synced case: no O(store) walk
        return list(itertools.islice(self._truths.values(), position, None))

    # The two match helpers are the only spatial read primitives ``lookup``
    # and ``truths_near`` consume; :class:`TruthDatabaseView` overrides them
    # (plus ``_truth_by_id``) to serve base-slice + overlay reads.
    def _origin_matches(self, point: Point, radius_m: float) -> List[Tuple[int, float]]:
        """``(truth_id, distance)`` with origin within ``radius_m``, ranked
        by increasing distance with record-order tie-breaking."""
        return self._origin_index.within_radius(point, radius_m)

    def _destination_matches(self, point: Point, radius_m: float) -> List[Tuple[int, float]]:
        """``(truth_id, distance)`` with destination within ``radius_m``,
        ranked like :meth:`_origin_matches`."""
        return self._destination_index.within_radius(point, radius_m)

    def _truth_by_id(self, truth_id: int) -> VerifiedTruth:
        return self._truths[truth_id]

    def lookup(self, query: RouteQuery) -> Optional[VerifiedTruth]:
        """Return a reusable truth for ``query`` or ``None``.

        A truth is reusable when both endpoints are within the reuse radius
        and the departure-time slot matches.  The closest-origin match wins.
        """
        origin = self.network.node_location(query.origin)
        destination = self.network.node_location(query.destination)
        slot = self.time_slot_of(query.departure_time_s)
        radius = self.config.truth_reuse_radius_m
        near_destination = {
            truth_id for truth_id, _ in self._destination_matches(destination, radius)
        }
        matches: List[Tuple[float, VerifiedTruth]] = []
        for truth_id, origin_distance in self._origin_matches(origin, radius):
            if truth_id not in near_destination:
                continue
            truth = self._truth_by_id(truth_id)
            if truth.time_slot != slot:
                continue
            matches.append((origin_distance, truth))
        if not matches:
            return None
        matches.sort(key=lambda item: (item[0], item[1].truth_id))
        return matches[0][1]

    def truths_near(
        self,
        origin: Point,
        destination: Point,
        radius_m: float,
        time_slot: Optional[int] = None,
    ) -> List[VerifiedTruth]:
        """Truths whose endpoints are within ``radius_m`` of the given points.

        Used by the route-evaluation component to compute confidence scores
        from previously verified knowledge in the neighbourhood.  Both
        endpoint conditions are grid-index radius queries (the index's
        boundary decisions agree exactly with ``Point.distance_to``), so the
        result — still ranked by origin distance — matches the former
        per-truth Python distance filter.
        """
        near_destination = {
            truth_id for truth_id, _ in self._destination_matches(destination, radius_m)
        }
        results = []
        for truth_id, _ in self._origin_matches(origin, radius_m):
            if truth_id not in near_destination:
                continue
            truth = self._truth_by_id(truth_id)
            if time_slot is not None and truth.time_slot != time_slot:
                continue
            results.append(truth)
        return results

    def hit_rate(self, hits: int, total: int) -> float:
        """Convenience: fraction of requests served from the truth store."""
        if total <= 0:
            return 0.0
        return hits / total


def _merge_ranked(
    primary: List[Tuple[int, float]], secondary: List[Tuple[int, float]]
) -> List[Tuple[int, float]]:
    """Merge two distance-ranked match lists, primary winning distance ties.

    Both inputs are sorted by increasing distance with record-order
    tie-breaking; in a materialised partition every primary (base) truth was
    inserted before any secondary (overlay) truth, so at equal distance the
    primary entry enumerates first.  A stable two-way merge reproduces the
    partition's enumeration exactly.
    """
    if not secondary:
        return primary
    if not primary:
        return secondary
    merged: List[Tuple[int, float]] = []
    i = j = 0
    while i < len(primary) and j < len(secondary):
        if secondary[j][1] < primary[i][1]:
            merged.append(secondary[j])
            j += 1
        else:
            merged.append(primary[i])
            i += 1
    merged.extend(primary[i:])
    merged.extend(secondary[j:])
    return merged


class TruthDatabaseView(TruthDatabase):
    """Copy-on-write destination-cell slice of a :class:`TruthDatabase`.

    Reads see the base store's truths whose destination falls in the view's
    cells plus everything recorded through the view; writes go only to the
    view's private overlay (the structures inherited from
    :class:`TruthDatabase` act as the overlay), so the base store is never
    touched.  Answers — ``lookup``, ``truths_near``, ``all()`` order,
    ``len`` — are identical to a :meth:`TruthDatabase.partition_by_cells`
    partition over the same cells (the shard tests assert this), while
    construction is O(members) set/list building with no index copies.

    The base store must stay unmutated while the view is live; views are not
    themselves partitionable (build views from the base instead).
    """

    def __init__(self, base: TruthDatabase, cells: Iterable[Tuple[int, int]]):
        if isinstance(base, TruthDatabaseView):
            raise TruthStoreError("cannot build a view over a view; use the base store")
        super().__init__(base.network, base.config)
        self._base = base
        # ``items_in_cells`` returns members in record order (ascending slot),
        # which is also ascending truth-id order — the order a materialised
        # partition would adopt them in.
        self._member_order = base._destination_index.items_in_cells(cells)
        self._member_ids = frozenset(self._member_order)

    # ------------------------------------------------------------- overrides
    def __len__(self) -> int:
        return len(self._member_order) + len(self._truths)

    def __contains__(self, truth_id: int) -> bool:
        return truth_id in self._truths or truth_id in self._member_ids

    def all(self) -> List[VerifiedTruth]:
        base_truths = self._base._truths
        return [base_truths[truth_id] for truth_id in self._member_order] + list(
            self._truths.values()
        )

    def truths_since(self, position: int) -> List[VerifiedTruth]:
        return self.all()[max(position, 0):]

    def get(self, truth_id: int) -> VerifiedTruth:
        if truth_id in self._truths:
            return self._truths[truth_id]
        if truth_id in self._member_ids:
            return self._base._truths[truth_id]
        raise TruthStoreError(f"unknown truth id {truth_id}")

    _truth_by_id = get

    def _origin_matches(self, point: Point, radius_m: float) -> List[Tuple[int, float]]:
        members = [
            (truth_id, distance)
            for truth_id, distance in self._base._origin_index.within_radius(point, radius_m)
            if truth_id in self._member_ids
        ]
        return _merge_ranked(members, self._origin_index.within_radius(point, radius_m))

    def _destination_matches(self, point: Point, radius_m: float) -> List[Tuple[int, float]]:
        members = [
            (truth_id, distance)
            for truth_id, distance in self._base._destination_index.within_radius(point, radius_m)
            if truth_id in self._member_ids
        ]
        return _merge_ranked(members, self._destination_index.within_radius(point, radius_m))

    def partition_by_cells(self, cells: Iterable[Tuple[int, int]]) -> "TruthDatabase":
        raise TruthStoreError("cannot partition a view; partition the base store")

    def view_by_cells(self, cells: Iterable[Tuple[int, int]]) -> "TruthDatabaseView":
        raise TruthStoreError("cannot build a view over a view; use the base store")
