"""Probabilistic Matrix Factorization (Mnih & Salakhutdinov, NIPS 2007 [15]).

The worker-landmark familiarity matrix ``M`` is extremely sparse: most workers
have never answered a question about most landmarks.  PMF factorizes the
observed entries into latent worker features ``W`` (d x n) and latent landmark
features ``L`` (d x m) so that ``M ≈ WᵀL``, which lets the system predict how
familiar a worker is with a landmark they have never been asked about, from
the behaviour of similar workers.

The implementation minimises

    sum_{ij observed} (M_ij - W_iᵀ L_j)² + λ_W ||W||_F² + λ_L ||L||_F²

by full-batch gradient descent with a simple step-size backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError


@dataclass
class PMFTrainingReport:
    """Diagnostics of one PMF fit."""

    iterations: int
    final_objective: float
    converged: bool


class ProbabilisticMatrixFactorization:
    """Low-rank completion of a sparse non-negative score matrix.

    Parameters
    ----------
    latent_dim:
        Number of latent factors ``d``.
    regularization_workers, regularization_landmarks:
        ``λ_W`` and ``λ_L``.
    learning_rate:
        Initial gradient-descent step size.
    max_iterations:
        Iteration budget.
    tolerance:
        Relative objective improvement below which training stops.
    seed:
        Seed for the latent-factor initialisation.
    """

    def __init__(
        self,
        latent_dim: int = 8,
        regularization_workers: float = 0.05,
        regularization_landmarks: float = 0.05,
        learning_rate: float = 0.005,
        max_iterations: int = 500,
        tolerance: float = 1e-6,
        seed: int = 23,
    ):
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be at least 1")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if regularization_workers < 0 or regularization_landmarks < 0:
            raise ConfigurationError("regularization terms must be non-negative")
        self.latent_dim = latent_dim
        self.regularization_workers = regularization_workers
        self.regularization_landmarks = regularization_landmarks
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.worker_factors: Optional[np.ndarray] = None
        self.landmark_factors: Optional[np.ndarray] = None
        self.report: Optional[PMFTrainingReport] = None

    # -------------------------------------------------------------- training
    def fit(self, matrix: np.ndarray, mask: Optional[np.ndarray] = None) -> PMFTrainingReport:
        """Fit latent factors to the observed entries of ``matrix``.

        ``mask`` marks observed entries (non-zero cells by default, matching
        the paper's indicator ``I_ij``).
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ConfigurationError("matrix must be two-dimensional")
        if mask is None:
            mask = matrix != 0
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != matrix.shape:
            raise ConfigurationError("mask shape must match matrix shape")

        n_workers, n_landmarks = matrix.shape
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / max(1, self.latent_dim)
        workers = rng.normal(0.0, scale, size=(self.latent_dim, n_workers))
        landmarks = rng.normal(0.0, scale, size=(self.latent_dim, n_landmarks))

        learning_rate = self.learning_rate
        previous_objective = self._objective(matrix, mask, workers, landmarks)
        iterations_run = 0
        converged = False
        for iteration in range(1, self.max_iterations + 1):
            iterations_run = iteration
            prediction = workers.T @ landmarks
            error = np.where(mask, matrix - prediction, 0.0)
            gradient_workers = -2.0 * (landmarks @ error.T) + 2.0 * self.regularization_workers * workers
            gradient_landmarks = -2.0 * (workers @ error) + 2.0 * self.regularization_landmarks * landmarks

            candidate_workers = workers - learning_rate * gradient_workers
            candidate_landmarks = landmarks - learning_rate * gradient_landmarks
            objective = self._objective(matrix, mask, candidate_workers, candidate_landmarks)
            if objective > previous_objective:
                # Overshot: halve the step and retry from the same point.
                learning_rate *= 0.5
                if learning_rate < 1e-9:
                    break
                continue
            workers, landmarks = candidate_workers, candidate_landmarks
            improvement = previous_objective - objective
            previous_objective = objective
            if previous_objective > 0 and improvement / max(previous_objective, 1e-12) < self.tolerance:
                converged = True
                break

        self.worker_factors = workers
        self.landmark_factors = landmarks
        self.report = PMFTrainingReport(
            iterations=iterations_run,
            final_objective=float(previous_objective),
            converged=converged,
        )
        return self.report

    def _objective(
        self,
        matrix: np.ndarray,
        mask: np.ndarray,
        workers: np.ndarray,
        landmarks: np.ndarray,
    ) -> float:
        prediction = workers.T @ landmarks
        residual = np.where(mask, matrix - prediction, 0.0)
        return float(
            (residual**2).sum()
            + self.regularization_workers * (workers**2).sum()
            + self.regularization_landmarks * (landmarks**2).sum()
        )

    # ------------------------------------------------------------ prediction
    def predict(self) -> np.ndarray:
        """The completed matrix ``WᵀL`` (clipped at zero, scores are non-negative)."""
        if self.worker_factors is None or self.landmark_factors is None:
            raise ConfigurationError("fit() must be called before predict()")
        return np.clip(self.worker_factors.T @ self.landmark_factors, 0.0, None)

    def complete(self, matrix: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Fit and return ``matrix`` with unobserved cells filled by predictions.

        Observed cells keep their original values.
        """
        matrix = np.asarray(matrix, dtype=float)
        if mask is None:
            mask = matrix != 0
        self.fit(matrix, mask)
        predicted = self.predict()
        return np.where(mask, matrix, predicted)
