"""Probabilistic Matrix Factorization (Mnih & Salakhutdinov, NIPS 2007 [15]).

The worker-landmark familiarity matrix ``M`` is extremely sparse: most workers
have never answered a question about most landmarks.  PMF factorizes the
observed entries into latent worker features ``W`` (d x n) and latent landmark
features ``L`` (d x m) so that ``M ≈ WᵀL``, which lets the system predict how
familiar a worker is with a landmark they have never been asked about, from
the behaviour of similar workers.

The implementation minimises

    sum_{ij observed} (M_ij - W_iᵀ L_j)² + λ_W ||W||_F² + λ_L ||L||_F²

by full-batch gradient descent with a simple step-size backoff.  Because the
familiarity matrix is ~95% unobserved, training works on the observed entries
only (COO index arrays): predictions, errors and gradients are computed over
the ``nnz`` observed cells instead of materialising dense ``n×m``
intermediates, with scipy's sparse matmul when available (a pure-numpy
scatter-add fallback otherwise).  The original dense ``np.where``-masked
updates are kept behind ``method="dense"`` as the verification oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError

try:  # scipy is optional: only its sparse matmul is used, and only for speed.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _scipy_sparse = None


@dataclass
class PMFTrainingReport:
    """Diagnostics of one PMF fit."""

    iterations: int
    final_objective: float
    converged: bool


class ProbabilisticMatrixFactorization:
    """Low-rank completion of a sparse non-negative score matrix.

    Parameters
    ----------
    latent_dim:
        Number of latent factors ``d``.
    regularization_workers, regularization_landmarks:
        ``λ_W`` and ``λ_L``.
    learning_rate:
        Initial gradient-descent step size.
    max_iterations:
        Iteration budget.
    tolerance:
        Relative objective improvement below which training stops.
    seed:
        Seed for the latent-factor initialisation.
    """

    def __init__(
        self,
        latent_dim: int = 8,
        regularization_workers: float = 0.05,
        regularization_landmarks: float = 0.05,
        learning_rate: float = 0.005,
        max_iterations: int = 500,
        tolerance: float = 1e-6,
        seed: int = 23,
    ):
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be at least 1")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if regularization_workers < 0 or regularization_landmarks < 0:
            raise ConfigurationError("regularization terms must be non-negative")
        self.latent_dim = latent_dim
        self.regularization_workers = regularization_workers
        self.regularization_landmarks = regularization_landmarks
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.worker_factors: Optional[np.ndarray] = None
        self.landmark_factors: Optional[np.ndarray] = None
        self.report: Optional[PMFTrainingReport] = None

    # -------------------------------------------------------------- training
    def fit(
        self,
        matrix: np.ndarray,
        mask: Optional[np.ndarray] = None,
        method: str = "sparse",
    ) -> PMFTrainingReport:
        """Fit latent factors to the observed entries of ``matrix``.

        ``mask`` marks observed entries (non-zero cells by default, matching
        the paper's indicator ``I_ij``).  ``method`` selects the gradient
        implementation: ``"sparse"`` (default) computes errors and gradients
        over the observed COO entries only; ``"dense"`` is the original
        ``np.where``-masked implementation, kept as a verification oracle —
        both minimise the same objective and agree within float tolerance.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ConfigurationError("matrix must be two-dimensional")
        if mask is None:
            mask = matrix != 0
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != matrix.shape:
            raise ConfigurationError("mask shape must match matrix shape")
        if method not in ("sparse", "dense"):
            raise ConfigurationError("method must be 'sparse' or 'dense'")

        n_workers, n_landmarks = matrix.shape
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / max(1, self.latent_dim)
        workers = rng.normal(0.0, scale, size=(self.latent_dim, n_workers))
        landmarks = rng.normal(0.0, scale, size=(self.latent_dim, n_landmarks))

        if method == "sparse":
            rows, cols = np.nonzero(mask)
            values = matrix[rows, cols]

            def objective(w: np.ndarray, lm: np.ndarray) -> float:
                errors = values - np.einsum("ij,ij->j", w[:, rows], lm[:, cols])
                return float(
                    errors @ errors
                    + self.regularization_workers * (w**2).sum()
                    + self.regularization_landmarks * (lm**2).sum()
                )

            def gradients(w: np.ndarray, lm: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
                errors = values - np.einsum("ij,ij->j", w[:, rows], lm[:, cols])
                scattered_w, scattered_l = self._scatter_error_products(
                    errors, rows, cols, w, lm, matrix.shape
                )
                gradient_w = -2.0 * scattered_w + 2.0 * self.regularization_workers * w
                gradient_l = -2.0 * scattered_l + 2.0 * self.regularization_landmarks * lm
                return gradient_w, gradient_l

        else:

            def objective(w: np.ndarray, lm: np.ndarray) -> float:
                return self._objective(matrix, mask, w, lm)

            def gradients(w: np.ndarray, lm: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
                error = np.where(mask, matrix - w.T @ lm, 0.0)
                gradient_w = -2.0 * (lm @ error.T) + 2.0 * self.regularization_workers * w
                gradient_l = -2.0 * (w @ error) + 2.0 * self.regularization_landmarks * lm
                return gradient_w, gradient_l

        learning_rate = self.learning_rate
        previous_objective = objective(workers, landmarks)
        iterations_run = 0
        converged = False
        for iteration in range(1, self.max_iterations + 1):
            iterations_run = iteration
            gradient_workers, gradient_landmarks = gradients(workers, landmarks)

            candidate_workers = workers - learning_rate * gradient_workers
            candidate_landmarks = landmarks - learning_rate * gradient_landmarks
            candidate_objective = objective(candidate_workers, candidate_landmarks)
            if candidate_objective > previous_objective:
                # Overshot: halve the step and retry from the same point.
                learning_rate *= 0.5
                if learning_rate < 1e-9:
                    break
                continue
            workers, landmarks = candidate_workers, candidate_landmarks
            improvement = previous_objective - candidate_objective
            previous_objective = candidate_objective
            if previous_objective > 0 and improvement / max(previous_objective, 1e-12) < self.tolerance:
                converged = True
                break

        self.worker_factors = workers
        self.landmark_factors = landmarks
        self.report = PMFTrainingReport(
            iterations=iterations_run,
            final_objective=float(previous_objective),
            converged=converged,
        )
        return self.report

    @staticmethod
    def _scatter_error_products(
        errors: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        workers: np.ndarray,
        landmarks: np.ndarray,
        shape: Tuple[int, int],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(L·Errᵀ, W·Err)`` with ``Err`` the sparse observed-error matrix.

        Uses scipy's sparse-dense matmul when available; otherwise falls back
        to an explicit scatter-add over the observed entries, which is still
        O(nnz·d) rather than O(n·m·d).
        """
        if _scipy_sparse is not None:
            error_matrix = _scipy_sparse.csr_matrix((errors, (rows, cols)), shape=shape)
            scattered_w = (error_matrix @ landmarks.T).T
            scattered_l = (error_matrix.T @ workers.T).T
            return scattered_w, scattered_l
        scattered_w = np.zeros_like(workers)
        scattered_l = np.zeros_like(landmarks)
        np.add.at(scattered_w.T, rows, (landmarks[:, cols] * errors).T)
        np.add.at(scattered_l.T, cols, (workers[:, rows] * errors).T)
        return scattered_w, scattered_l

    def _objective(
        self,
        matrix: np.ndarray,
        mask: np.ndarray,
        workers: np.ndarray,
        landmarks: np.ndarray,
    ) -> float:
        prediction = workers.T @ landmarks
        residual = np.where(mask, matrix - prediction, 0.0)
        return float(
            (residual**2).sum()
            + self.regularization_workers * (workers**2).sum()
            + self.regularization_landmarks * (landmarks**2).sum()
        )

    # ------------------------------------------------------------ prediction
    def predict(self) -> np.ndarray:
        """The completed matrix ``WᵀL`` (clipped at zero, scores are non-negative)."""
        if self.worker_factors is None or self.landmark_factors is None:
            raise ConfigurationError("fit() must be called before predict()")
        return np.clip(self.worker_factors.T @ self.landmark_factors, 0.0, None)

    def complete(self, matrix: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Fit and return ``matrix`` with unobserved cells filled by predictions.

        Observed cells keep their original values.
        """
        matrix = np.asarray(matrix, dtype=float)
        if mask is None:
            mask = matrix != 0
        self.fit(matrix, mask)
        predicted = self.predict()
        return np.where(mask, matrix, predicted)
