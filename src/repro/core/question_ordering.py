"""Question ordering (Section III-C).

The selected landmarks become binary questions ("do you prefer the route
passing landmark X?").  Rather than asking them in a fixed order, CrowdPlanner
builds an ID3-style decision tree: at each step it asks the question with the
largest *information strength*

    IS(l) = l.s * [ H(R) - |R+|/|R| * H(R+) - |R-|/|R| * H(R-) ]

where ``R+``/``R-`` are the candidate routes that do / do not pass the
landmark and ``H`` is the empirical entropy (each remaining route is its own
class).  The yes/no answer selects the child subtree, and questioning stops
when a single route remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import TaskGenerationError
from ..utils.stats import empirical_entropy
from .discriminative import is_discriminative
from .route import LandmarkRoute


def information_strength(
    landmark_id: int,
    routes: Sequence[LandmarkRoute],
    significance: Dict[int, float],
) -> float:
    """Information strength of asking about ``landmark_id`` given remaining routes."""
    if not routes:
        return 0.0
    passing = [route for route in routes if route.passes(landmark_id)]
    missing = [route for route in routes if not route.passes(landmark_id)]
    total = len(routes)
    entropy_before = empirical_entropy(range(total))
    entropy_passing = empirical_entropy(range(len(passing))) if passing else 0.0
    entropy_missing = empirical_entropy(range(len(missing))) if missing else 0.0
    information_gain = (
        entropy_before
        - (len(passing) / total) * entropy_passing
        - (len(missing) / total) * entropy_missing
    )
    return significance.get(landmark_id, 0.0) * information_gain


@dataclass
class QuestionNode:
    """One node of the question tree.

    Leaf nodes carry the single remaining route; internal nodes carry the
    landmark asked about and yes/no children.
    """

    routes: List[LandmarkRoute]
    landmark_id: Optional[int] = None
    yes_child: Optional["QuestionNode"] = None
    no_child: Optional["QuestionNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.landmark_id is None

    @property
    def decided_route(self) -> LandmarkRoute:
        """The single route a leaf resolves to."""
        if not self.is_leaf:
            raise TaskGenerationError("only leaf nodes carry a decided route")
        if len(self.routes) != 1:
            # Indistinguishable remainder: deterministic fallback to the
            # route with the most historical support, then source name.
            return sorted(self.routes, key=lambda r: (-r.route.support, r.source))[0]
        return self.routes[0]


class QuestionTree:
    """An ID3 question tree over the selected landmarks."""

    def __init__(self, root: QuestionNode, landmark_ids: Sequence[int]):
        self.root = root
        self.landmark_ids = tuple(landmark_ids)

    def depth(self) -> int:
        """Longest number of questions any answer path requires."""
        return self._depth(self.root)

    def _depth(self, node: QuestionNode) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._depth(node.yes_child), self._depth(node.no_child))

    def expected_questions(self) -> float:
        """Expected number of questions when every route is equally likely."""
        leaves = self._leaf_depths(self.root, 0)
        weighted = 0.0
        total_routes = sum(len(node.routes) for node, _ in leaves)
        if total_routes == 0:
            return 0.0
        for node, depth in leaves:
            weighted += depth * len(node.routes)
        return weighted / total_routes

    def _leaf_depths(self, node: QuestionNode, depth: int) -> List[Tuple[QuestionNode, int]]:
        if node.is_leaf:
            return [(node, depth)]
        return self._leaf_depths(node.yes_child, depth + 1) + self._leaf_depths(
            node.no_child, depth + 1
        )

    def traverse(self, answers: Dict[int, bool]) -> Tuple[LandmarkRoute, List[int]]:
        """Follow the tree using ``answers`` (landmark id -> yes/no).

        Returns the decided route and the ordered list of landmarks actually
        asked.  Raises :class:`TaskGenerationError` if an answer needed by the
        traversal is missing.
        """
        node = self.root
        asked: List[int] = []
        while not node.is_leaf:
            landmark_id = node.landmark_id
            if landmark_id not in answers:
                raise TaskGenerationError(
                    f"traversal requires an answer for landmark {landmark_id}"
                )
            asked.append(landmark_id)
            node = node.yes_child if answers[landmark_id] else node.no_child
        return node.decided_route, asked

    def question_sequence_for(self, route: LandmarkRoute) -> List[int]:
        """The landmarks that would be asked if the truthful answer is ``route``."""
        answers = {lid: route.passes(lid) for lid in self.landmark_ids}
        _, asked = self.traverse(answers)
        return asked


def build_question_tree(
    routes: Sequence[LandmarkRoute],
    landmark_ids: Sequence[int],
    significance: Dict[int, float],
) -> QuestionTree:
    """Build the ID3 question tree for the selected landmarks.

    ``landmark_ids`` must be discriminative for ``routes``; otherwise some
    leaf would hold more than one route and the task could not identify the
    preferred candidate.
    """
    if len(routes) < 1:
        raise TaskGenerationError("cannot build a question tree without candidate routes")
    if len(routes) > 1 and not is_discriminative(landmark_ids, routes):
        raise TaskGenerationError("the selected landmark set is not discriminative")
    root = _build_node(list(routes), list(landmark_ids), significance)
    return QuestionTree(root, landmark_ids)


def _build_node(
    routes: List[LandmarkRoute],
    remaining: List[int],
    significance: Dict[int, float],
) -> QuestionNode:
    if len(routes) <= 1 or not remaining:
        return QuestionNode(routes=routes)
    # Pick the question with maximum information strength; ties broken by
    # higher significance then lower landmark id for determinism.
    scored = [
        (information_strength(lid, routes, significance), significance.get(lid, 0.0), -lid, lid)
        for lid in remaining
    ]
    scored.sort(reverse=True)
    best_strength, _, _, best_landmark = scored[0]
    if best_strength <= 0.0:
        # No remaining question separates these routes any further.
        return QuestionNode(routes=routes)
    passing = [route for route in routes if route.passes(best_landmark)]
    missing = [route for route in routes if not route.passes(best_landmark)]
    rest = [lid for lid in remaining if lid != best_landmark]
    return QuestionNode(
        routes=routes,
        landmark_id=best_landmark,
        yes_child=_build_node(passing, rest, significance),
        no_child=_build_node(missing, rest, significance),
    )
