"""In-memory trajectory store with the query shapes popular-route mining needs.

The store indexes trajectories by their matched road-graph node path (computed
once at insert time with a :class:`~repro.roadnet.map_matching.MapMatcher`),
by origin/destination proximity and by departure-time slot.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import TrajectoryError
from ..roadnet.graph import RoadNetwork
from ..roadnet.map_matching import MapMatcher
from ..spatial import GridIndex, Point
from .model import Trajectory


class TrajectoryStore:
    """Holds trajectories plus their map-matched node paths.

    Parameters
    ----------
    network:
        The road network trajectories are matched against.
    matcher:
        Optional custom map matcher; a default one is created otherwise.
    use_source_paths:
        When true (the default), a synthetic trajectory that carries its
        ground-truth ``source_path`` skips map matching.  Set to false to
        force matching (used by the map-matching robustness tests).
    """

    def __init__(
        self,
        network: RoadNetwork,
        matcher: Optional[MapMatcher] = None,
        use_source_paths: bool = True,
    ):
        self.network = network
        self.matcher = matcher or MapMatcher(network)
        self.use_source_paths = use_source_paths
        self._trajectories: Dict[int, Trajectory] = {}
        self._matched_paths: Dict[int, Tuple[int, ...]] = {}
        self._by_edge: Dict[Tuple[int, int], set] = defaultdict(set)
        self._by_node: Dict[int, set] = defaultdict(set)
        self._origin_index: GridIndex[int] = GridIndex(cell_size=500.0)
        self._destination_index: GridIndex[int] = GridIndex(cell_size=500.0)

    def __len__(self) -> int:
        return len(self._trajectories)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._trajectories

    # ------------------------------------------------------------------ load
    def add(self, trajectory: Trajectory) -> None:
        """Insert one trajectory, matching it to the road network."""
        if trajectory.trajectory_id in self._trajectories:
            raise TrajectoryError(
                f"trajectory id {trajectory.trajectory_id} already stored"
            )
        if self.use_source_paths and trajectory.source_path:
            path = tuple(trajectory.source_path)
            self.network.validate_path(path)
        else:
            path = tuple(self.matcher.match(trajectory.locations()))
        self._trajectories[trajectory.trajectory_id] = trajectory
        self._matched_paths[trajectory.trajectory_id] = path
        for node in path:
            self._by_node[node].add(trajectory.trajectory_id)
        for edge in zip(path, path[1:]):
            self._by_edge[edge].add(trajectory.trajectory_id)
        self._origin_index.insert(trajectory.trajectory_id, self.network.node_location(path[0]))
        self._destination_index.insert(
            trajectory.trajectory_id, self.network.node_location(path[-1])
        )

    def add_many(self, trajectories: Iterable[Trajectory]) -> int:
        """Insert many trajectories; returns the number successfully matched."""
        added = 0
        for trajectory in trajectories:
            try:
                self.add(trajectory)
            except TrajectoryError:
                continue
            added += 1
        return added

    # --------------------------------------------------------------- queries
    def get(self, trajectory_id: int) -> Trajectory:
        try:
            return self._trajectories[trajectory_id]
        except KeyError:
            raise TrajectoryError(f"unknown trajectory id {trajectory_id}") from None

    def matched_path(self, trajectory_id: int) -> List[int]:
        """The road-graph node path of a stored trajectory."""
        try:
            return list(self._matched_paths[trajectory_id])
        except KeyError:
            raise TrajectoryError(f"unknown trajectory id {trajectory_id}") from None

    def all_ids(self) -> List[int]:
        return list(self._trajectories)

    def trajectories_through_edge(self, source: int, target: int) -> List[int]:
        """Ids of trajectories traversing the directed edge (source, target)."""
        return sorted(self._by_edge.get((source, target), ()))

    def trajectories_through_node(self, node_id: int) -> List[int]:
        """Ids of trajectories passing through an intersection."""
        return sorted(self._by_node.get(node_id, ()))

    def edge_support(self, source: int, target: int) -> int:
        """Number of trajectories traversing the directed edge."""
        return len(self._by_edge.get((source, target), ()))

    def node_support(self, node_id: int) -> int:
        """Number of trajectories passing through an intersection."""
        return len(self._by_node.get(node_id, ()))

    def node_visit_counts(self) -> Dict[int, int]:
        """Visit counts per intersection (used by significance inference)."""
        return {node: len(ids) for node, ids in self._by_node.items()}

    def find_by_od(
        self,
        origin: Point,
        destination: Point,
        radius_m: float = 300.0,
        time_slot: Optional[Tuple[float, float]] = None,
    ) -> List[int]:
        """Ids of trajectories starting near ``origin`` and ending near ``destination``.

        ``time_slot`` optionally restricts results to departure times (seconds
        since midnight) within ``[start, end)``.
        """
        near_origin = {tid for tid, _ in self._origin_index.within_radius(origin, radius_m)}
        near_destination = {
            tid for tid, _ in self._destination_index.within_radius(destination, radius_m)
        }
        matches = sorted(near_origin & near_destination)
        if time_slot is None:
            return matches
        start, end = time_slot
        return [
            tid
            for tid in matches
            if start <= self._trajectories[tid].departure_time_s % (24 * 3600) < end
        ]

    def support_between(self, origin: Point, destination: Point, radius_m: float = 300.0) -> int:
        """Number of historical trajectories connecting the two areas."""
        return len(self.find_by_od(origin, destination, radius_m))

    def paths_between(
        self,
        origin: Point,
        destination: Point,
        radius_m: float = 300.0,
        time_slot: Optional[Tuple[float, float]] = None,
    ) -> List[List[int]]:
        """Matched node paths of trajectories connecting the two areas."""
        return [
            self.matched_path(tid)
            for tid in self.find_by_od(origin, destination, radius_m, time_slot)
        ]
