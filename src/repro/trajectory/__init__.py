"""Trajectory substrate: GPS trajectories, synthetic drivers, calibration and storage."""

from .model import GPSPoint, Trajectory
from .noise import GPSNoiseModel
from .generator import DriverProfile, TrajectoryGenerator, TrajectoryGeneratorConfig
from .calibration import AnchorCalibrator
from .storage import TrajectoryStore

__all__ = [
    "GPSPoint",
    "Trajectory",
    "GPSNoiseModel",
    "DriverProfile",
    "TrajectoryGenerator",
    "TrajectoryGeneratorConfig",
    "AnchorCalibrator",
    "TrajectoryStore",
]
