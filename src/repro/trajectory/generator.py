"""Synthetic driver and trajectory generation.

The paper's central observation is that the routes experienced drivers take
differ from what shortest/fastest-path services return, because drivers weigh
latent factors (traffic lights, road class, turns, familiarity).  The
generator reproduces that divergence explicitly:

* each :class:`DriverProfile` carries latent preference weights;
* a *population preference cost* combines length, expected time, traffic
  lights, road-class comfort and turn count;
* the route a driver follows between an origin and destination is the one
  minimising their personally perturbed preference cost, chosen from a menu
  of k-shortest alternatives;
* trips are drawn over a set of "hot" od-pairs with Zipf-skewed popularity, so
  some corridors have rich historical support and others are sparse — the
  sparsity regime the paper motivates crowdsourcing with.

The route minimising the *unperturbed* population preference cost is recorded
as the ground-truth driver-preferred route for each od-pair, which the
experiments use as the gold standard when scoring recommendation sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, NoPathError
from ..roadnet.graph import RoadClass, RoadEdge, RoadNetwork
from ..roadnet.shortest_path import dijkstra_path, k_shortest_paths
from ..roadnet.travel_time import TravelTimeModel
from ..spatial import Point, Polyline
from ..utils.rng import derive_rng
from .model import GPSPoint, Trajectory
from .noise import GPSNoiseModel

# Comfort multiplier per road class: drivers perceive a metre on a highway as
# "cheaper" than a metre on a local street.
_ROAD_CLASS_COMFORT = {
    RoadClass.HIGHWAY: 0.85,
    RoadClass.ARTERIAL: 0.95,
    RoadClass.COLLECTOR: 1.05,
    RoadClass.LOCAL: 1.2,
}


@dataclass(frozen=True)
class DriverProfile:
    """Latent route preferences of a synthetic driver.

    ``weight_*`` fields are multiplicative perturbations around 1.0 applied to
    the corresponding population-level cost term.
    """

    driver_id: int
    home: Point
    workplace: Point
    weight_length: float = 1.0
    weight_time: float = 1.0
    weight_lights: float = 1.0
    weight_comfort: float = 1.0
    exploration: float = 0.1

    def __post_init__(self) -> None:
        if self.exploration < 0 or self.exploration > 1:
            raise ConfigurationError("exploration must be in [0, 1]")


@dataclass(frozen=True)
class TrajectoryGeneratorConfig:
    """Parameters of the synthetic trajectory workload."""

    num_drivers: int = 60
    num_hot_pairs: int = 40
    trips_per_driver: int = 25
    zipf_exponent: float = 1.1
    min_od_distance_m: float = 1_500.0
    gps_sampling_interval_m: float = 60.0
    route_alternatives: int = 4
    light_penalty_m: float = 120.0
    time_weight: float = 0.4
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_drivers < 1:
            raise ConfigurationError("num_drivers must be at least 1")
        if self.num_hot_pairs < 1:
            raise ConfigurationError("num_hot_pairs must be at least 1")
        if self.trips_per_driver < 0:
            raise ConfigurationError("trips_per_driver must be non-negative")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.route_alternatives < 1:
            raise ConfigurationError("route_alternatives must be at least 1")
        if self.gps_sampling_interval_m <= 0:
            raise ConfigurationError("gps_sampling_interval_m must be positive")


class TrajectoryGenerator:
    """Generates drivers, trips and GPS traces over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        config: Optional[TrajectoryGeneratorConfig] = None,
        travel_time_model: Optional[TravelTimeModel] = None,
        noise_model: Optional[GPSNoiseModel] = None,
    ):
        self.network = network
        self.config = config or TrajectoryGeneratorConfig()
        self.travel_time_model = travel_time_model or TravelTimeModel()
        self.noise_model = noise_model or GPSNoiseModel()
        self._rng = derive_rng(self.config.seed, "trajectory-generator")
        self._preferred_routes: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------ population
    def generate_drivers(self) -> List[DriverProfile]:
        """Create the synthetic driver population."""
        rng = derive_rng(self.config.seed, "drivers")
        box = self.network.bounding_box()
        drivers: List[DriverProfile] = []
        for driver_id in range(self.config.num_drivers):
            home = Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
            workplace = Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
            drivers.append(
                DriverProfile(
                    driver_id=driver_id,
                    home=home,
                    workplace=workplace,
                    weight_length=rng.uniform(0.8, 1.2),
                    weight_time=rng.uniform(0.8, 1.2),
                    weight_lights=rng.uniform(0.6, 1.4),
                    weight_comfort=rng.uniform(0.7, 1.3),
                    exploration=rng.uniform(0.0, 0.25),
                )
            )
        return drivers

    def generate_hot_od_pairs(self) -> List[Tuple[int, int]]:
        """Sample the od-pairs that concentrate most of the trips."""
        rng = derive_rng(self.config.seed, "hot-pairs")
        node_ids = self.network.node_ids()
        pairs: List[Tuple[int, int]] = []
        attempts = 0
        while len(pairs) < self.config.num_hot_pairs and attempts < self.config.num_hot_pairs * 200:
            attempts += 1
            origin, destination = rng.sample(node_ids, 2)
            distance = self.network.node_location(origin).distance_to(
                self.network.node_location(destination)
            )
            if distance < self.config.min_od_distance_m:
                continue
            if (origin, destination) in pairs:
                continue
            pairs.append((origin, destination))
        if not pairs:
            raise ConfigurationError(
                "could not sample any od-pair; lower min_od_distance_m or enlarge the network"
            )
        return pairs

    # --------------------------------------------------------------- costing
    def preference_cost(self, edge: RoadEdge, driver: Optional[DriverProfile] = None) -> float:
        """Perceived cost (in metre-equivalents) of an edge.

        Combines length, expected travel time, road-class comfort and an
        expected traffic-light penalty at the edge's target intersection.
        With ``driver`` given, the population weights are perturbed by the
        driver's latent preferences.
        """
        comfort = _ROAD_CLASS_COMFORT[edge.road_class]
        time_s = self.travel_time_model.edge_travel_time(edge)
        light_penalty = (
            self.config.light_penalty_m
            if self.network.node(edge.target).has_traffic_light
            else 0.0
        )
        w_length = w_time = w_lights = w_comfort = 1.0
        if driver is not None:
            w_length = driver.weight_length
            w_time = driver.weight_time
            w_lights = driver.weight_lights
            w_comfort = driver.weight_comfort
        perceived_length = edge.length_m * comfort ** w_comfort * w_length
        perceived_time = self.config.time_weight * time_s * 10.0 * w_time
        return perceived_length + perceived_time + light_penalty * w_lights

    def population_preferred_route(self, origin: int, destination: int) -> List[int]:
        """The route minimising the unperturbed population preference cost.

        This is the ground-truth "best route" experienced drivers would pick,
        memoised per od-pair.
        """
        key = (origin, destination)
        if key not in self._preferred_routes:
            self._preferred_routes[key] = dijkstra_path(
                self.network, origin, destination, cost=self.preference_cost
            )
        return list(self._preferred_routes[key])

    def driver_route(self, driver: DriverProfile, origin: int, destination: int, rng: random.Random) -> List[int]:
        """The route an individual driver follows for one trip.

        The driver evaluates a small menu of alternatives (k-shortest by their
        personal cost) and usually takes the best one, occasionally exploring
        another alternative.
        """
        def personal_cost(edge: RoadEdge) -> float:
            return self.preference_cost(edge, driver)

        alternatives = k_shortest_paths(
            self.network, origin, destination, self.config.route_alternatives, cost=personal_cost
        )
        if not alternatives:
            raise NoPathError(origin, destination)
        if len(alternatives) > 1 and rng.random() < driver.exploration:
            return list(rng.choice(alternatives[1:]))
        return list(alternatives[0])

    # ------------------------------------------------------------ generation
    def path_to_trajectory(
        self,
        path: Sequence[int],
        trajectory_id: int,
        driver_id: int,
        departure_time_s: float,
        rng: random.Random,
    ) -> Trajectory:
        """Render a node path into a noisy, timestamped GPS trace."""
        points = self.network.path_points(path)
        polyline = Polyline(points)
        sampled = polyline.resample(self.config.gps_sampling_interval_m)
        noisy = self.noise_model.apply(sampled, rng)
        duration = self.travel_time_model.path_travel_time(self.network, path, departure_time_s)
        count = max(len(noisy) - 1, 1)
        gps_points = [
            GPSPoint(location=point, timestamp=departure_time_s + duration * index / count)
            for index, point in enumerate(noisy)
        ]
        return Trajectory(
            trajectory_id=trajectory_id,
            driver_id=driver_id,
            points=gps_points,
            source_path=tuple(path),
            departure_time_s=departure_time_s,
        )

    def generate(
        self,
        drivers: Optional[Sequence[DriverProfile]] = None,
        hot_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> List[Trajectory]:
        """Generate the full trajectory workload.

        Trips are assigned to hot od-pairs with Zipf-skewed popularity and to
        drivers uniformly; departure times mix morning and evening peaks with
        off-peak trips.
        """
        drivers = list(drivers) if drivers is not None else self.generate_drivers()
        hot_pairs = list(hot_pairs) if hot_pairs is not None else self.generate_hot_od_pairs()
        rng = self._rng
        weights = [1.0 / (rank + 1) ** self.config.zipf_exponent for rank in range(len(hot_pairs))]
        total_weight = sum(weights)
        probabilities = [weight / total_weight for weight in weights]

        trajectories: List[Trajectory] = []
        trajectory_id = 0
        for driver in drivers:
            for _ in range(self.config.trips_per_driver):
                pair_index = rng.choices(range(len(hot_pairs)), weights=probabilities, k=1)[0]
                origin, destination = hot_pairs[pair_index]
                departure = self._sample_departure_time(rng)
                try:
                    path = self.driver_route(driver, origin, destination, rng)
                except NoPathError:
                    continue
                trajectories.append(
                    self.path_to_trajectory(path, trajectory_id, driver.driver_id, departure, rng)
                )
                trajectory_id += 1
        return trajectories

    @staticmethod
    def _sample_departure_time(rng: random.Random) -> float:
        """Departure time of day: 40% morning peak, 40% evening peak, 20% off-peak."""
        roll = rng.random()
        if roll < 0.4:
            return rng.gauss(8.0, 0.75) * 3600.0 % (24 * 3600)
        if roll < 0.8:
            return rng.gauss(17.5, 0.75) * 3600.0 % (24 * 3600)
        return rng.uniform(6.0, 22.0) * 3600.0
