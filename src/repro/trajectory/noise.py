"""GPS measurement-noise model.

Real taxi traces carry positional error and occasional dropped fixes; the
noise model reproduces both so map matching and calibration are exercised on
realistically imperfect input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..exceptions import ConfigurationError
from ..spatial import Point


@dataclass(frozen=True)
class GPSNoiseModel:
    """Gaussian positional noise plus random fix dropping.

    Attributes
    ----------
    position_sigma_m:
        Standard deviation of the positional error in metres.
    drop_probability:
        Probability that an individual fix is lost.
    outlier_probability:
        Probability that a fix is a gross outlier (multipath error).
    outlier_sigma_m:
        Standard deviation of outlier error.
    """

    position_sigma_m: float = 8.0
    drop_probability: float = 0.05
    outlier_probability: float = 0.01
    outlier_sigma_m: float = 80.0

    def __post_init__(self) -> None:
        if self.position_sigma_m < 0 or self.outlier_sigma_m < 0:
            raise ConfigurationError("noise sigmas must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise ConfigurationError("outlier_probability must be in [0, 1)")

    def apply(self, points: Sequence[Point], rng: random.Random) -> List[Point]:
        """Return a noisy copy of ``points``.

        The first and last points are never dropped so the trace keeps its
        origin and destination.
        """
        noisy: List[Point] = []
        last_index = len(points) - 1
        for index, point in enumerate(points):
            if 0 < index < last_index and rng.random() < self.drop_probability:
                continue
            sigma = self.position_sigma_m
            if rng.random() < self.outlier_probability:
                sigma = self.outlier_sigma_m
            noisy.append(Point(point.x + rng.gauss(0.0, sigma), point.y + rng.gauss(0.0, sigma)))
        return noisy
