"""GPS trajectory data model.

A :class:`Trajectory` is an immutable, time-ordered sequence of GPS points
with metadata about the driver who produced it and, when known, the road-graph
node path it followed.  Keeping the generating node path (for synthetic data)
lets experiments compare mined routes against the ground-truth driver choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..exceptions import TrajectoryError
from ..spatial import BoundingBox, Point, route_length


@dataclass(frozen=True)
class GPSPoint:
    """A single GPS fix: planar position plus a POSIX-like timestamp in seconds."""

    location: Point
    timestamp: float

    @property
    def x(self) -> float:
        return self.location.x

    @property
    def y(self) -> float:
        return self.location.y


@dataclass(frozen=True)
class Trajectory:
    """A time-ordered GPS trace.

    Attributes
    ----------
    trajectory_id:
        Unique identifier.
    driver_id:
        Identifier of the (synthetic) driver that produced the trace.
    points:
        Time-ordered GPS fixes.
    source_path:
        For synthetic trajectories, the road-graph node path the driver
        actually followed (ground truth).  Real-world traces leave it empty.
    departure_time_s:
        Departure time of day in seconds since midnight.
    """

    trajectory_id: int
    driver_id: int
    points: Tuple[GPSPoint, ...]
    source_path: Tuple[int, ...] = field(default_factory=tuple)
    departure_time_s: float = 9 * 3600.0

    def __init__(
        self,
        trajectory_id: int,
        driver_id: int,
        points: Sequence[GPSPoint],
        source_path: Sequence[int] = (),
        departure_time_s: float = 9 * 3600.0,
    ):
        if len(points) < 2:
            raise TrajectoryError("a trajectory needs at least two GPS points")
        timestamps = [point.timestamp for point in points]
        if any(later < earlier for earlier, later in zip(timestamps, timestamps[1:])):
            raise TrajectoryError("trajectory timestamps must be non-decreasing")
        object.__setattr__(self, "trajectory_id", trajectory_id)
        object.__setattr__(self, "driver_id", driver_id)
        object.__setattr__(self, "points", tuple(points))
        object.__setattr__(self, "source_path", tuple(source_path))
        object.__setattr__(self, "departure_time_s", float(departure_time_s))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def start(self) -> GPSPoint:
        return self.points[0]

    @property
    def end(self) -> GPSPoint:
        return self.points[-1]

    @property
    def duration_s(self) -> float:
        """Elapsed time between the first and last fix."""
        return self.end.timestamp - self.start.timestamp

    @property
    def length_m(self) -> float:
        """Geometric length of the GPS polyline."""
        return route_length([point.location for point in self.points])

    def locations(self) -> List[Point]:
        """Return the planar locations of all fixes, in order."""
        return [point.location for point in self.points]

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.from_points(self.locations())

    def average_speed_ms(self) -> float:
        """Average speed in metres per second (0 if the duration is 0)."""
        if self.duration_s <= 0:
            return 0.0
        return self.length_m / self.duration_s
