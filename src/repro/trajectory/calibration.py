"""Anchor-based route calibration (reference [21] of the paper).

CrowdPlanner rewrites every continuous candidate route into a
*landmark-based route*: the finite sequence of landmarks the route passes,
treating landmarks as anchor points.  The calibrator implements that step:
given a node path and a landmark catalogue, it emits the ordered, de-duplicated
sequence of landmark ids whose anchor region the route touches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..exceptions import CalibrationError
from ..landmarks.model import Landmark
from ..roadnet.graph import RoadNetwork
from ..spatial import GridIndex, Point, point_to_segment_distance


class AnchorCalibrator:
    """Maps node paths onto ordered landmark sequences.

    Parameters
    ----------
    network:
        Road network the paths live on.
    landmarks:
        Landmark catalogue used as anchor points.
    attach_radius_m:
        A landmark is attached to the route if the route passes within this
        distance of it (for point landmarks) or within the landmark's own
        radius plus this slack (for region landmarks).
    """

    def __init__(
        self,
        network: RoadNetwork,
        landmarks: Sequence[Landmark],
        attach_radius_m: float = 150.0,
    ):
        if attach_radius_m <= 0:
            raise CalibrationError("attach_radius_m must be positive")
        self.network = network
        self.attach_radius_m = attach_radius_m
        self._landmarks: Dict[int, Landmark] = {lm.landmark_id: lm for lm in landmarks}
        self._index: GridIndex[int] = GridIndex(cell_size=max(200.0, attach_radius_m))
        for landmark in landmarks:
            self._index.insert(landmark.landmark_id, landmark.anchor)

    @property
    def landmark_count(self) -> int:
        return len(self._landmarks)

    def landmark(self, landmark_id: int) -> Landmark:
        try:
            return self._landmarks[landmark_id]
        except KeyError:
            raise CalibrationError(f"unknown landmark id {landmark_id}") from None

    def _attach_distance(self, landmark: Landmark) -> float:
        """Distance at which a route is considered to pass this landmark."""
        return self.attach_radius_m + landmark.extent_m

    def calibrate_path(self, path: Sequence[int]) -> List[int]:
        """Return the ordered landmark-id sequence a node path passes.

        Landmarks are ordered by the position along the route at which the
        route first comes within attach distance; each landmark appears at
        most once.  Raises :class:`CalibrationError` for paths shorter than
        two nodes.
        """
        if len(path) < 2:
            raise CalibrationError("cannot calibrate a path with fewer than two nodes")
        self.network.validate_path(path)
        points = self.network.path_points(path)

        first_hit: Dict[int, float] = {}
        travelled = 0.0
        search_radius = self.attach_radius_m + self._max_extent()
        for start, end in zip(points, points[1:]):
            segment_length = start.distance_to(end)
            midpoint = start.midpoint(end)
            probe_radius = search_radius + segment_length / 2.0
            for landmark_id, _ in self._index.within_radius(midpoint, probe_radius):
                if landmark_id in first_hit:
                    continue
                landmark = self._landmarks[landmark_id]
                distance = point_to_segment_distance(landmark.anchor, start, end)
                if distance <= self._attach_distance(landmark):
                    first_hit[landmark_id] = travelled + distance
            travelled += segment_length

        ordered = sorted(first_hit.items(), key=lambda item: (item[1], item[0]))
        return [landmark_id for landmark_id, _ in ordered]

    def calibrate_points(self, points: Sequence[Point]) -> List[int]:
        """Landmark sequence for a raw point polyline (no road graph needed)."""
        if len(points) < 2:
            raise CalibrationError("cannot calibrate fewer than two points")
        first_hit: Dict[int, float] = {}
        travelled = 0.0
        search_radius = self.attach_radius_m + self._max_extent()
        for start, end in zip(points, points[1:]):
            segment_length = start.distance_to(end)
            midpoint = start.midpoint(end)
            probe_radius = search_radius + segment_length / 2.0
            for landmark_id, _ in self._index.within_radius(midpoint, probe_radius):
                if landmark_id in first_hit:
                    continue
                landmark = self._landmarks[landmark_id]
                distance = point_to_segment_distance(landmark.anchor, start, end)
                if distance <= self._attach_distance(landmark):
                    first_hit[landmark_id] = travelled + distance
            travelled += segment_length
        ordered = sorted(first_hit.items(), key=lambda item: (item[1], item[0]))
        return [landmark_id for landmark_id, _ in ordered]

    def _max_extent(self) -> float:
        if not self._landmarks:
            return 0.0
        return max(landmark.extent_m for landmark in self._landmarks.values())
