"""CrowdPlanner reproduction.

A full reimplementation of "CrowdPlanner: A Crowd-Based Route Recommendation
System" (ICDE 2014): road-network and trajectory substrates, landmark
significance inference, candidate-route sources (web-service routing and
popular-route mining), and the CrowdPlanner core — truth reuse, automatic
route evaluation, crowd task generation, worker selection, early stopping and
rewarding — together with a simulated crowd and the experiment harness that
regenerates the paper's evaluation.

Quickstart
----------
>>> from repro.datasets import SyntheticCityConfig, build_scenario
>>> scenario = build_scenario(SyntheticCityConfig(rows=12, cols=12))
>>> planner = scenario.build_planner()
>>> query = scenario.sample_queries(1)[0]
>>> result = planner.recommend(query)
>>> result.method in {"truth_reuse", "agreement", "confident", "crowd", "single_candidate"}
True

Batches of requests go through :meth:`CrowdPlanner.recommend_batch`, which
answers queries in order (truths recorded for earlier queries are reusable by
later ones) and warms the road network's compiled flat-array routing view up
front:

>>> results = planner.recommend_batch(scenario.sample_queries(3))
>>> len(results)
3

Serving
-------
Steady request streams scale across OS processes through the session-based
service (``repro.serving``): the planner's ``shard_plan`` splits each batch
into interaction-closed od-cell components (no recorded truth can cross a
shard boundary), a persistent forked worker pool keeps truth partitions warm
between batches, and the merged results are bit-identical to the sequential
path — which stays in place as the oracle the serving benchmark suites and
property tests compare against.  ``pool_size=1`` (or platforms without
``fork``) serves in-process; ``pipeline_window > 1`` overlaps consecutive
batches whose closures are disjoint::

    from repro.config import ServiceConfig
    from repro.serving import RecommendationService

    config = ServiceConfig.from_planner_config(planner.config, pool_size=4)
    with RecommendationService(planner, config) as service:
        responses = service.recommend_batch(queries)
        results = [r.result for r in responses]   # == planner.recommend_batch(queries)

See ``examples/sharded_serving.py`` and ``examples/pipelined_stream.py`` for
end-to-end walkthroughs, experiment E8 (``repro.experiments.exp_throughput``)
for the backend sweep, and ``docs/serving-invariants.md`` for the contract.
(The deprecated per-batch :class:`ShardedRecommendationEngine` remains as a
thin shim over the same machinery.)

Performance
-----------
The routing, spatial-index and PMF hot paths run on flat-array fast paths
(see ``repro.roadnet.compiled``); the original implementations are preserved
in ``repro.roadnet.reference`` as behavioural oracles.  Benchmark them with::

    python scripts/bench_to_json.py       # writes BENCH_hot_paths.json
    scripts/ci.sh                         # tier-1 tests + un-timed benchmarks

``BENCH_hot_paths.json`` records the per-group timings and the
compiled-vs-reference speedups that future performance work is judged
against.
"""

from .config import DEFAULT_CONFIG, PlannerConfig
from .exceptions import CrowdPlannerError
from .core.planner import CrowdPlanner, RecommendationResult, ShardPlan
from .routing.base import CandidateRoute, RouteQuery
from .serving import ShardedRecommendationEngine

__version__ = "1.8.0"

__all__ = [
    "DEFAULT_CONFIG",
    "PlannerConfig",
    "CrowdPlannerError",
    "CrowdPlanner",
    "RecommendationResult",
    "ShardPlan",
    "ShardedRecommendationEngine",
    "CandidateRoute",
    "RouteQuery",
    "__version__",
]
