"""CrowdPlanner reproduction.

A full reimplementation of "CrowdPlanner: A Crowd-Based Route Recommendation
System" (ICDE 2014): road-network and trajectory substrates, landmark
significance inference, candidate-route sources (web-service routing and
popular-route mining), and the CrowdPlanner core — truth reuse, automatic
route evaluation, crowd task generation, worker selection, early stopping and
rewarding — together with a simulated crowd and the experiment harness that
regenerates the paper's evaluation.

Quickstart
----------
>>> from repro.datasets import SyntheticCityConfig, build_scenario
>>> scenario = build_scenario(SyntheticCityConfig(rows=12, cols=12))
>>> planner = scenario.build_planner()
>>> query = scenario.sample_queries(1)[0]
>>> result = planner.recommend(query)
>>> result.method in {"truth_reuse", "agreement", "confident", "crowd", "single_candidate"}
True
"""

from .config import DEFAULT_CONFIG, PlannerConfig
from .exceptions import CrowdPlannerError
from .core.planner import CrowdPlanner, RecommendationResult
from .routing.base import CandidateRoute, RouteQuery

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "PlannerConfig",
    "CrowdPlannerError",
    "CrowdPlanner",
    "RecommendationResult",
    "CandidateRoute",
    "RouteQuery",
    "__version__",
]
