"""CrowdPlanner reproduction.

A full reimplementation of "CrowdPlanner: A Crowd-Based Route Recommendation
System" (ICDE 2014): road-network and trajectory substrates, landmark
significance inference, candidate-route sources (web-service routing and
popular-route mining), and the CrowdPlanner core — truth reuse, automatic
route evaluation, crowd task generation, worker selection, early stopping and
rewarding — together with a simulated crowd and the experiment harness that
regenerates the paper's evaluation.

Quickstart
----------
>>> from repro.datasets import SyntheticCityConfig, build_scenario
>>> scenario = build_scenario(SyntheticCityConfig(rows=12, cols=12))
>>> planner = scenario.build_planner()
>>> query = scenario.sample_queries(1)[0]
>>> result = planner.recommend(query)
>>> result.method in {"truth_reuse", "agreement", "confident", "crowd", "single_candidate"}
True

Batches of requests go through :meth:`CrowdPlanner.recommend_batch`, which
answers queries in order (truths recorded for earlier queries are reusable by
later ones) and warms the road network's compiled flat-array routing view up
front:

>>> results = planner.recommend_batch(scenario.sample_queries(3))
>>> len(results)
3

Performance
-----------
The routing, spatial-index and PMF hot paths run on flat-array fast paths
(see ``repro.roadnet.compiled``); the original implementations are preserved
in ``repro.roadnet.reference`` as behavioural oracles.  Benchmark them with::

    python scripts/bench_to_json.py       # writes BENCH_hot_paths.json
    scripts/ci.sh                         # tier-1 tests + un-timed benchmarks

``BENCH_hot_paths.json`` records the per-group timings and the
compiled-vs-reference speedups that future performance work is judged
against.
"""

from .config import DEFAULT_CONFIG, PlannerConfig
from .exceptions import CrowdPlannerError
from .core.planner import CrowdPlanner, RecommendationResult
from .routing.base import CandidateRoute, RouteQuery

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_CONFIG",
    "PlannerConfig",
    "CrowdPlannerError",
    "CrowdPlanner",
    "RecommendationResult",
    "CandidateRoute",
    "RouteQuery",
    "__version__",
]
