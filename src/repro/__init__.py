"""CrowdPlanner reproduction.

A full reimplementation of "CrowdPlanner: A Crowd-Based Route Recommendation
System" (ICDE 2014): road-network and trajectory substrates, landmark
significance inference, candidate-route sources (web-service routing and
popular-route mining), and the CrowdPlanner core — truth reuse, automatic
route evaluation, crowd task generation, worker selection, early stopping and
rewarding — together with a simulated crowd and the experiment harness that
regenerates the paper's evaluation.

Quickstart
----------
>>> from repro.datasets import SyntheticCityConfig, build_scenario
>>> scenario = build_scenario(SyntheticCityConfig(rows=12, cols=12))
>>> planner = scenario.build_planner()
>>> query = scenario.sample_queries(1)[0]
>>> result = planner.recommend(query)
>>> result.method in {"truth_reuse", "agreement", "confident", "crowd", "single_candidate"}
True

Batches of requests go through :meth:`CrowdPlanner.recommend_batch`, which
answers queries in order (truths recorded for earlier queries are reusable by
later ones) and warms the road network's compiled flat-array routing view up
front:

>>> results = planner.recommend_batch(scenario.sample_queries(3))
>>> len(results)
3

Serving
-------
Large batches scale across OS processes through the sharded serving engine
(``repro.serving``): the planner's ``shard_plan`` splits a batch into
interaction-closed od-cell components (no recorded truth can cross a shard
boundary), each worker process receives a destination-cell partition of the
truth store plus the shared compiled road network, and the merged results are
bit-identical to the sequential path — which stays in place as the oracle the
``crowd_shard`` benchmark suite and the serving property tests compare
against.  ``workers=1`` (or platforms without ``fork``) serves in-process::

    from repro.serving import ShardedRecommendationEngine
    engine = ShardedRecommendationEngine(planner, workers=4)
    results = engine.recommend_batch(queries)   # == planner.recommend_batch(queries)

See ``examples/sharded_serving.py`` for an end-to-end walkthrough and
experiment E8 (``repro.experiments.exp_throughput``) for the worker sweep.

Performance
-----------
The routing, spatial-index and PMF hot paths run on flat-array fast paths
(see ``repro.roadnet.compiled``); the original implementations are preserved
in ``repro.roadnet.reference`` as behavioural oracles.  Benchmark them with::

    python scripts/bench_to_json.py       # writes BENCH_hot_paths.json
    scripts/ci.sh                         # tier-1 tests + un-timed benchmarks

``BENCH_hot_paths.json`` records the per-group timings and the
compiled-vs-reference speedups that future performance work is judged
against.
"""

from .config import DEFAULT_CONFIG, PlannerConfig
from .exceptions import CrowdPlannerError
from .core.planner import CrowdPlanner, RecommendationResult, ShardPlan
from .routing.base import CandidateRoute, RouteQuery
from .serving import ShardedRecommendationEngine

__version__ = "1.3.0"

__all__ = [
    "DEFAULT_CONFIG",
    "PlannerConfig",
    "CrowdPlannerError",
    "CrowdPlanner",
    "RecommendationResult",
    "ShardPlan",
    "ShardedRecommendationEngine",
    "CandidateRoute",
    "RouteQuery",
    "__version__",
]
