"""Multi-tenant workspaces: isolated truth stores over one shared pool.

A *workspace* is a named, fully isolated serving tenant: it owns its own
:class:`~repro.core.truth.TruthDatabase`, answer/reward histories, batch
numbering, and :class:`~repro.serving.journal.TruthJournal` directory.  What
workspaces share is the expensive part — the scenario substrate (road
network, landmark catalog, calibrator, crowd backend) and, under the pooled
backend, one warm :class:`~repro.serving.service.PooledBackend` worker pool.

Layering
--------
::

    WorkspaceService ── template planner + shared PooledBackend
      ├── Workspace "alpha" ── RecommendationService
      │        planner (own TruthDatabase)      TenantBackend("alpha") ─┐
      ├── Workspace "beta"  ── RecommendationService                    │
      │        planner (own TruthDatabase)      TenantBackend("beta") ──┤
      │                                                                 ▼
      └── ...                                             shared PooledBackend
                                                    (per-tenant warm bases in
                                                     every worker process)

Each :class:`Workspace` wraps a plain
:class:`~repro.serving.RecommendationService`, so tickets, submission-order
execution, pipelining, journaling and crash recovery all behave exactly as
they do single-tenant.  The only difference is the backend:
:class:`TenantBackend` is a thin facade that tags every batch/window with
its workspace name before delegating to the shared pool, which routes the
work against that tenant's planner and truth store (see the tenancy plumbing
in :mod:`repro.serving.service`).

Isolation contract
------------------
For any interleaving of workspaces over one shared pool, every workspace's
answers, post-batch planner state, and recovered-journal state are
bit-identical to a dedicated single-tenant service, for every backend, pool
size, ``pipeline_window`` and ``max_shard_fraction`` — and a worker fault
inside one tenant's batch never perturbs another tenant's fingerprints.
The argument lives in ``docs/serving-invariants.md``; the enforcing tests in
``tests/serving/test_tenancy.py``.

Durability layout
-----------------
With a ``journal_root``, each workspace journals under its own
subdirectory, beside a small manifest that makes the tree self-describing::

    <journal_root>/
      alpha/
        workspace.json        # {"name": ..., "planner_config": {...}}
        journal-00000000.log
        snapshot-00000001.snap
      beta/
        ...

:meth:`WorkspaceService.recover_all` scans the root, rebuilds every
workspace from its manifest, and replays each journal — restoring every
tenant to its exact pre-crash truth state and batch numbering.
"""

from __future__ import annotations

import dataclasses
import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..config import PlannerConfig, ServiceConfig
from ..core.planner import CrowdPlanner, ShardPlan
from ..exceptions import ServingError, WorkspaceManifestError
from ..routing.base import RouteQuery
from .journal import TruthJournal
from .protocol import BatchExecution, RecommendResponse, ServingBackend, Ticket, WindowBatch
from .service import (
    InlineBackend,
    PooledBackend,
    QueryLike,
    RecommendationService,
)
from .shards import build_tenant_planner

__all__ = [
    "TenantBackend",
    "Workspace",
    "WorkspaceService",
    "WORKSPACE_MANIFEST",
    "build_tenant_planner",
]

#: Manifest file written beside each workspace's journal files.  The journal
#: itself only touches ``journal-*.log`` / ``snapshot-*.snap`` names, so the
#: manifest survives compaction untouched.
WORKSPACE_MANIFEST = "workspace.json"

#: Counter keys of the pool's per-tenant supervision breakdown that map onto
#: the standard ``supervision_stats`` surface (everything but ``batches``).
_SUPERVISION_KEYS = (
    "respawns",
    "resubmitted_shards",
    "hung_workers_killed",
    "degraded_batches",
)

#: Counter keys of the per-tenant breakdown that map onto the pool's hedged
#: execution surface (``resilience_stats``).
_RESILIENCE_KEYS = (
    "hedges_issued",
    "hedges_won",
    "hedges_wasted",
    "stragglers_killed",
)


class TenantBackend(ServingBackend):
    """A workspace's view of the shared pool.

    Binds the workspace's planner to the pool as a named tenant instead of
    rebinding the pool itself, then delegates batches and windows with the
    tenant tag attached.  ``name`` stays ``"pooled"`` so response provenance
    is byte-identical to a dedicated pooled service.

    Closing the facade drops the tenant from the pool (workers forget its
    warm base) without stopping the pool — other workspaces keep serving.
    """

    name = "pooled"

    def __init__(self, pool: PooledBackend, tenant: str):
        super().__init__()
        if not tenant:
            raise ServingError("tenant name must be non-empty")
        self.pool = pool
        self.tenant = tenant

    # -------------------------------------------------------------- lifecycle
    def bind(self, planner: CrowdPlanner) -> None:
        super().bind(planner)
        self.pool.register_tenant(self.tenant, planner)

    def close(self) -> None:
        self.pool.drop_tenant(self.tenant)

    # -------------------------------------------------------------- execution
    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        return self.pool.execute_batch(
            queries,
            share_candidate_generation=share_candidate_generation,
            plan=plan,
            tenant=self.tenant,
        )

    def execute_window(self, batches: Sequence[WindowBatch]) -> List[BatchExecution]:
        return self.pool.execute_window(batches, tenant=self.tenant)

    # ------------------------------------------------------------ diagnostics
    def resolved_pool_size(self) -> int:
        return self.pool.resolved_pool_size()

    @property
    def max_shard_fraction(self) -> Optional[float]:
        return self.pool.max_shard_fraction

    def worker_pids(self) -> List[int]:
        return self.pool.worker_pids()

    def supervision_stats(self) -> Dict[str, int]:
        """This tenant's share of the pool's supervision counters.

        Faults are attributed to the tenant whose batch was executing when
        they happened (batches run one at a time on the shared pool), so a
        fault inside another tenant's batch never shows up here.
        """
        stats = self.pool.tenant_stats(self.tenant)
        return {key: stats[key] for key in _SUPERVISION_KEYS}

    def resilience_stats(self) -> Dict[str, int]:
        """This tenant's share of the pool's hedged-execution counters.

        Attribution mirrors ``supervision_stats``: hedges are counted inside
        the batch that raced them, so another tenant's stragglers never show
        up here."""
        stats = self.pool.tenant_stats(self.tenant)
        return {key: stats[key] for key in _RESILIENCE_KEYS}

    def pipeline_stats(self) -> Dict[str, int]:
        # Pool-global: windows of every tenant share one DAG dispatcher.
        return self.pool.pipeline_stats()

    def sharding_stats(self) -> Dict[str, Any]:
        # Pool-global: the splitting diagnostics track the last batch run.
        return self.pool.sharding_stats()


class Workspace:
    """One named tenant: an isolated service over the shared substrate.

    Wraps a dedicated :class:`~repro.serving.RecommendationService`, so the
    full single-tenant surface — ``submit`` / ``results`` / ``drain`` /
    ``recommend`` / ``recommend_batch`` / ``stream`` / ``statistics`` — is
    available per workspace with identical semantics.  Attribute access
    falls through to the wrapped service.
    """

    def __init__(self, name: str, service: RecommendationService):
        self.name = name
        self.service = service

    # ----------------------------------------------------- delegated surface
    @property
    def planner(self) -> CrowdPlanner:
        return self.service.planner

    @property
    def journal(self) -> Optional[TruthJournal]:
        return self.service.journal

    @property
    def closed(self) -> bool:
        return self.service.closed

    @property
    def batches_executed(self) -> int:
        """Batches this workspace has finalised, lifetime — journal-backed
        numbering means the count survives crash recovery."""
        return self.service._next_batch_id - 1

    def submit(self, queries, share_candidate_generation=None, deadline_s=None) -> Ticket:
        return self.service.submit(queries, share_candidate_generation, deadline_s)

    def pump(self) -> bool:
        return self.service.pump()

    def results(self, ticket: Union[Ticket, int]) -> List[RecommendResponse]:
        return self.service.results(ticket)

    def drain(self) -> None:
        self.service.drain()

    def recommend(self, query: QueryLike) -> RecommendResponse:
        return self.service.recommend(query)

    def recommend_batch(self, queries, share_candidate_generation=None, plan=None):
        return self.service.recommend_batch(queries, share_candidate_generation, plan)

    def stream(
        self, queries: Iterable[QueryLike], batch_size: Optional[int] = None
    ) -> Iterator[RecommendResponse]:
        return self.service.stream(queries, batch_size)

    def statistics(self) -> Dict[str, Any]:
        return self.service.statistics()

    def __getattr__(self, attr: str):
        return getattr(self.service, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workspace({self.name!r}, closed={self.closed})"


def _validate_workspace_name(name: str) -> None:
    """A workspace name doubles as its journal directory name."""
    if not name or name in (".", ".."):
        raise ServingError(f"invalid workspace name {name!r}")
    if any(sep in name for sep in ("/", "\\", "\x00")):
        raise ServingError(
            f"workspace name {name!r} must not contain path separators"
        )


class WorkspaceService:
    """Many isolated workspaces over one scenario substrate and worker pool.

    Parameters
    ----------
    template:
        A prepared planner for the scenario.  Workspaces share its substrate
        (network, catalog, calibrator, crowd backend, **fitted** familiarity
        model) via :func:`~repro.serving.shards.build_tenant_planner`; each
        gets its own truth store and histories.
    config:
        Serving knobs applied to every workspace (backend, pool size,
        pipelining, journaling cadence, supervision deadlines).  Defaults to
        :meth:`ServiceConfig.from_planner_config` of the template's config.
    journal_root:
        Directory under which each workspace journals (``<root>/<name>/``,
        with a ``workspace.json`` manifest).  ``None`` disables durability.
    pool:
        An existing :class:`PooledBackend` to share (e.g. the fault-injecting
        harness).  Built from ``config`` when omitted and the backend is
        pooled.  The service owns the pool either way and stops it at
        :meth:`close`.
    """

    def __init__(
        self,
        template: CrowdPlanner,
        config: Optional[ServiceConfig] = None,
        journal_root=None,
        pool: Optional[PooledBackend] = None,
    ):
        if config is None:
            config = ServiceConfig.from_planner_config(template.config)
        self.template = template
        self.config = config
        self.journal_root = Path(journal_root) if journal_root is not None else None
        self._workspaces: "OrderedDict[str, Workspace]" = OrderedDict()
        self._closed = False
        # Round-robin origin for pump(): rotates one position per round so
        # no workspace is structurally first in every fairness sweep.
        self._pump_cursor = 0
        self._pool: Optional[PooledBackend] = None
        if config.backend == "pooled":
            if pool is None:
                pool = PooledBackend.from_config(config)
            # The pool's default (unnamed) tenant is the template planner;
            # workspaces register beside it.  Binding must precede the first
            # fork so workers inherit the substrate.
            if pool.planner is None:
                pool.bind(template)
            self._pool = pool
        elif pool is not None:
            raise ServingError("a shared pool requires backend='pooled'")

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def recover_all(
        cls,
        template: CrowdPlanner,
        journal_root,
        config: Optional[ServiceConfig] = None,
        pool: Optional[PooledBackend] = None,
    ) -> "WorkspaceService":
        """Rebuild every workspace found under ``journal_root`` after a crash.

        Scans the root for subdirectories holding a ``workspace.json``
        manifest, re-creates each workspace under its recorded
        :class:`~repro.config.PlannerConfig`, and lets the per-workspace
        journal replay restore its exact pre-crash truth state and batch
        numbering.  Workspaces are recovered in name order; new workspaces
        can be created alongside the recovered ones afterwards.

        A corrupt or garbage manifest raises
        :class:`~repro.exceptions.WorkspaceManifestError` naming the
        workspace directory, so the operator knows exactly which tenant's
        on-disk state to inspect rather than chasing a raw decode error.
        """
        root = Path(journal_root)
        service = cls(template, config=config, journal_root=root, pool=pool)
        if root.is_dir():
            for entry in sorted(root.iterdir()):
                manifest = entry / WORKSPACE_MANIFEST
                if not manifest.is_file():
                    continue
                try:
                    data = json.loads(manifest.read_text())
                except (ValueError, UnicodeDecodeError, OSError) as exc:
                    raise WorkspaceManifestError(entry, f"not valid JSON: {exc}") from exc
                if not isinstance(data, dict):
                    raise WorkspaceManifestError(
                        entry, f"expected a JSON object, got {type(data).__name__}"
                    )
                if not isinstance(data.get("planner_config"), dict):
                    raise WorkspaceManifestError(
                        entry, "missing or malformed 'planner_config' field"
                    )
                try:
                    planner_config = PlannerConfig(**data["planner_config"])
                except TypeError as exc:
                    raise WorkspaceManifestError(
                        entry, f"planner_config does not match PlannerConfig: {exc}"
                    ) from exc
                service.create_workspace(data.get("name", entry.name), planner_config)
        return service

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every workspace (journals included), then stop the pool."""
        if self._closed:
            return
        self._closed = True
        for workspace in self._workspaces.values():
            workspace.service.close()
        self._workspaces.clear()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "WorkspaceService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError("the workspace service is closed")

    # ------------------------------------------------------------ workspaces
    def create_workspace(
        self, name: str, planner_config: Optional[PlannerConfig] = None
    ) -> Workspace:
        """Open a new isolated workspace on the shared substrate.

        ``planner_config`` defaults to the template's; a different one
        changes the workspace's planning thresholds without refitting the
        shared familiarity model (see
        :func:`~repro.serving.shards.build_tenant_planner`).  With a
        ``journal_root``, the workspace's journal directory and manifest are
        created — reopening a name whose directory already holds a journal
        replays it (that is how :meth:`recover_all` restores state).
        """
        self._ensure_open()
        _validate_workspace_name(name)
        if name in self._workspaces:
            raise ServingError(f"workspace {name!r} already exists")
        if planner_config is None:
            planner_config = self.config.planner_config()
        planner = build_tenant_planner(self.template, planner_config)
        journal_path: Optional[str] = None
        if self.journal_root is not None:
            directory = self.journal_root / name
            directory.mkdir(parents=True, exist_ok=True)
            (directory / WORKSPACE_MANIFEST).write_text(
                json.dumps(
                    {"name": name, "planner_config": planner_config.to_dict()},
                    indent=2,
                    sort_keys=True,
                )
            )
            journal_path = str(directory)
        workspace_config = self._workspace_config(planner_config, journal_path)
        if self._pool is not None:
            backend: ServingBackend = TenantBackend(self._pool, name)
        else:
            backend = InlineBackend()
        service = RecommendationService(planner, config=workspace_config, backend=backend)
        workspace = Workspace(name, service)
        self._workspaces[name] = workspace
        return workspace

    def _workspace_config(
        self, planner_config: PlannerConfig, journal_path: Optional[str]
    ) -> ServiceConfig:
        """The template's serving knobs over the workspace's planner knobs."""
        planner_fields = {field.name for field in dataclasses.fields(PlannerConfig)}
        serving = {
            field.name: getattr(self.config, field.name)
            for field in dataclasses.fields(ServiceConfig)
            if field.name not in planner_fields
        }
        serving["journal_path"] = journal_path
        return ServiceConfig.from_planner_config(planner_config, **serving)

    def workspace(self, name: str) -> Workspace:
        """Look an open workspace up by name."""
        self._ensure_open()
        try:
            return self._workspaces[name]
        except KeyError:
            raise ServingError(f"unknown workspace {name!r}") from None

    def list_workspaces(self) -> List[str]:
        """Names of the open workspaces, in creation order."""
        return list(self._workspaces)

    def close_workspace(self, name: str) -> None:
        """Close one workspace: its journal closes, the pool forgets its
        warm bases, and the name becomes available again — a later
        ``create_workspace(name)`` over the same ``journal_root`` resumes
        from its journal."""
        self._ensure_open()
        workspace = self._workspaces.pop(name, None)
        if workspace is None:
            raise ServingError(f"unknown workspace {name!r}")
        workspace.service.close()

    # --------------------------------------------------------------- fairness
    def pump(self) -> bool:
        """One round-robin fairness sweep over every workspace's backlog.

        Executes at most one pending batch (or pipelined window) per open
        workspace, visiting workspaces in creation order starting one past
        the previous round's origin — so a tenant with a deep backlog gets
        exactly one turn per sweep and can never monopolise the shared pool
        between other tenants' admissions.  Returns ``True`` while any
        workspace still had work.
        """
        self._ensure_open()
        names = list(self._workspaces)
        if not names:
            return False
        start = self._pump_cursor % len(names)
        self._pump_cursor = (start + 1) % len(names)
        ran = False
        for offset in range(len(names)):
            workspace = self._workspaces.get(names[(start + offset) % len(names)])
            if workspace is not None and not workspace.closed and workspace.pump():
                ran = True
        return ran

    def drain_fair(self) -> None:
        """Drain every workspace's backlog in interleaved round-robin order.

        Equivalent end state to calling each workspace's ``drain()`` in turn
        — per-workspace submission order is preserved, and the isolation
        contract makes the interleaving invisible to fingerprints — but
        bounded-latency per tenant: after each sweep, every tenant has
        progressed by one batch.
        """
        while self.pump():
            pass

    # ------------------------------------------------------------ diagnostics
    def statistics(self) -> Dict[str, Any]:
        """Per-workspace breakdown plus the shared pool's aggregates.

        ``workspaces`` maps each open workspace to its lifetime batch count,
        current truth-store size, attributed worker respawns, and on-disk
        journal footprint; ``pool`` (pooled backend only) carries the
        pool-global supervision/pipeline/sharding counters and the
        per-tenant supervision attribution.
        """
        report: Dict[str, Any] = {"workspaces": {}}
        for name, workspace in self._workspaces.items():
            entry = {
                "batches": workspace.batches_executed,
                "truths": workspace.planner.truth_cursor(),
                "respawns": 0,
                "journal_bytes": 0,
            }
            if self._pool is not None:
                entry["respawns"] = self._pool.tenant_stats(name)["respawns"]
            journal = workspace.journal
            if journal is not None:
                entry["journal_bytes"] = journal.disk_bytes
            report["workspaces"][name] = entry
        if self._pool is not None:
            report["pool"] = {
                "workers": self._pool.worker_pids(),
                "supervision": dict(self._pool.supervision_stats()),
                "pipeline": dict(self._pool.pipeline_stats()),
                "sharding": dict(self._pool.sharding_stats()),
                "tenants": self._pool.tenant_stats(),
            }
        return report

    def worker_pids(self) -> List[int]:
        """PIDs of the shared pool's live workers (empty when inline)."""
        return self._pool.worker_pids() if self._pool is not None else []
