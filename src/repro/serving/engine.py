"""The sharded batch-recommendation engine.

:class:`ShardedRecommendationEngine` wraps a prepared
:class:`~repro.core.planner.CrowdPlanner` and answers query batches across a
``multiprocessing`` worker pool:

1. the planner's :meth:`~repro.core.planner.CrowdPlanner.shard_plan` splits
   the batch into interaction-closed shards (whole od-cell components — see
   the planner docs for why no truth can cross a shard boundary);
2. every shard gets a *clone* of the planner: shared read-only substrate
   (road network, landmark catalogue, candidate sources, fitted familiarity
   model), a destination-cell partition of the truth store, a fresh evaluator
   bound to that partition, and a private copy of the worker pool;
3. shards run the existing per-group batch path
   (:meth:`CrowdPlanner.recommend_batch`) in forked worker processes — or
   inline, in shard order, when processes are disabled or ``fork`` is
   unavailable;
4. the results are merged back in submission order and the parent planner's
   state is brought up to date exactly as a sequential run would have left
   it: newly recorded truths are absorbed in submission order, crowd task
   results replay worker answer histories and rewards, and the statistics
   counters are summed.

Equivalence contract
--------------------
For any workload and any worker count, the merged results are bit-identical
to ``planner.recommend_batch(queries)`` on the same starting state, *up to
process-local serial numbers* (task ids are re-issued at merge time from the
parent's sequence; truth ids are re-issued by
:meth:`~repro.core.truth.TruthDatabase.absorb`).
:func:`recommendation_fingerprint` canonicalises a result for exactly this
comparison, and the ``crowd_shard`` benchmark suite plus the serving property
tests enforce it.  The contract additionally requires the crowd backend to be
content-deterministic — identical tasks must yield identical responses
regardless of collection order or process, which
:class:`~repro.crowd.simulator.SimulatedCrowd` guarantees via content-keyed
RNG derivation.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.evaluation import EvaluationOutcome
from ..core.planner import CrowdPlanner, QueryShard, RecommendationResult, ShardPlan
from ..core.task import TaskResult, reissue_task_id
from ..core.truth import VerifiedTruth
from ..exceptions import CrowdPlannerError
from ..routing.base import CandidateRoute, RouteQuery


@dataclass
class _ShardRun:
    """Everything one worker needs to execute its shard."""

    shard: QueryShard
    clone: CrowdPlanner
    queries: List[RouteQuery]
    share_candidate_generation: bool


#: Shard runs visible to forked pool workers.  Set immediately before the
#: pool is created (children inherit it through ``fork``) and cleared after
#: the map completes; worker processes only ever read it.  Shard clones are
#: handed to children by fork inheritance rather than pickling because
#: planner substrate routinely holds unpicklable state (e.g. the scenario's
#: ground-truth closure); ``_FORK_LOCK`` serialises concurrent engines in
#: the same parent process so one batch's children never see another's runs.
_FORK_RUNS: List[_ShardRun] = []
_FORK_LOCK = threading.Lock()


def _execute_run(run: _ShardRun) -> Tuple[List[RecommendationResult], dict, List[VerifiedTruth]]:
    """Run one shard to completion; returns (results, stats delta, new truths)."""
    before = len(run.clone.truths)
    results = run.clone.recommend_batch(
        run.queries, share_candidate_generation=run.share_candidate_generation
    )
    new_truths = run.clone.truths.all()[before:]
    return results, run.clone.statistics.as_dict(), new_truths


def _execute_fork_run(position: int):
    """Fork-pool entry point: execute the inherited shard at ``position``."""
    return _execute_run(_FORK_RUNS[position])


class ShardedRecommendationEngine:
    """Serves recommendation batches across a process pool.

    Parameters
    ----------
    planner:
        A (typically prepared) :class:`CrowdPlanner`.  The engine reads its
        configuration and substrate and writes its post-batch state.
    workers:
        Default worker count for :meth:`recommend_batch`; ``None`` means one
        worker per available CPU.
    use_processes:
        When ``False``, shards execute inline in the calling process (still
        through the same clone-and-merge machinery, so results are identical);
        the engine also falls back to inline execution automatically when the
        platform offers no ``fork`` start method, keeping behaviour
        deterministic on spawn-only platforms.
    """

    def __init__(
        self,
        planner: CrowdPlanner,
        workers: Optional[int] = None,
        use_processes: bool = True,
    ):
        if workers is not None and workers < 1:
            raise CrowdPlannerError("ShardedRecommendationEngine needs at least one worker")
        self.planner = planner
        self.workers = workers
        self.use_processes = use_processes

    # ------------------------------------------------------------------ plan
    def resolve_workers(self, workers: Optional[int] = None) -> int:
        """The effective worker count for a batch."""
        resolved = workers if workers is not None else self.workers
        if resolved is None:
            resolved = os.cpu_count() or 1
        if resolved < 1:
            raise CrowdPlannerError("worker count must be at least 1")
        return resolved

    def plan(self, queries: Sequence[RouteQuery], workers: Optional[int] = None) -> ShardPlan:
        """The shard plan a batch would execute under (diagnostics)."""
        return self.planner.shard_plan(list(queries), self.resolve_workers(workers))

    # ------------------------------------------------------------- interface
    def recommend_batch(
        self,
        queries: Sequence[RouteQuery],
        workers: Optional[int] = None,
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendationResult]:
        """Answer a batch in submission order, sharded across workers.

        ``workers=1`` (or a single-shard plan) runs the sequential path
        directly in-process — no clones, no fork — which is the oracle the
        multi-worker paths are tested against.

        An explicit ``plan`` overrides the planner's own
        :meth:`~repro.core.planner.CrowdPlanner.shard_plan`; it must cover
        the same queries and may regroup shards only along whole
        interaction-closed components (any such regrouping yields identical
        results — the shard-determinism property tests exercise exactly this
        freedom).
        """
        queries = list(queries)
        if not queries:
            return []
        worker_count = self.resolve_workers(workers)
        if plan is None:
            if worker_count <= 1:
                return self.planner.recommend_batch(
                    queries, share_candidate_generation=share_candidate_generation
                )
            plan = self.planner.shard_plan(queries, worker_count)
        if len(plan.shards) <= 1:
            return self.planner.recommend_batch(
                queries, share_candidate_generation=share_candidate_generation
            )

        # Warm shared read-only state once, before clones are built (and
        # before any fork), so children inherit the compiled graph and the
        # sources' batch caches instead of rebuilding them per process.
        self.planner.warm_batch(queries)

        runs = [
            _ShardRun(
                shard=shard,
                clone=self._shard_clone(shard),
                queries=[queries[index] for index in shard.indices],
                share_candidate_generation=share_candidate_generation,
            )
            for shard in plan.shards
        ]
        if self.use_processes and "fork" in multiprocessing.get_all_start_methods():
            outcomes = self._run_forked(runs, worker_count)
        else:
            outcomes = [_execute_run(run) for run in runs]
        return self._merge(queries, runs, outcomes)

    # -------------------------------------------------------------- internal
    def _shard_clone(self, shard: QueryShard) -> CrowdPlanner:
        """A planner over the shard's truth partition and a private worker pool.

        Road network, catalogue, sources, task generator, crowd backend and
        the fitted familiarity model are shared (read-only during a batch);
        the truth store, evaluator, worker pool, rewards and statistics are
        isolated so a shard's writes never leak into another shard.
        """
        planner = self.planner
        partition = planner.truths.partition_by_cells(shard.destination_cells)
        clone = CrowdPlanner(
            network=planner.network,
            catalog=planner.catalog,
            calibrator=planner.calibrator,
            sources=planner.sources,
            worker_pool=copy.deepcopy(planner.worker_pool),
            crowd_backend=planner.crowd_backend,
            config=planner.config,
            familiarity=planner.familiarity,
            task_generator=planner.task_generator,
        )
        clone.truths = partition
        # A shallow copy of the parent's evaluator rebound to the partition:
        # preserves any evaluator subclass/state without assuming its
        # constructor signature.
        evaluator = copy.copy(planner.evaluator)
        evaluator.truths = partition
        clone.evaluator = evaluator
        return clone

    @staticmethod
    def _run_forked(runs: List[_ShardRun], worker_count: int):
        global _FORK_RUNS
        with _FORK_LOCK:
            _FORK_RUNS = runs
            try:
                context = multiprocessing.get_context("fork")
                with context.Pool(processes=min(worker_count, len(runs))) as pool:
                    return pool.map(_execute_fork_run, range(len(runs)))
            finally:
                _FORK_RUNS = []

    def _merge(
        self,
        queries: List[RouteQuery],
        runs: List[_ShardRun],
        outcomes,
    ) -> List[RecommendationResult]:
        """Reassemble submission order and replay shard writes onto the parent.

        Every result other than a truth-reuse hit recorded exactly one truth
        in its shard, in shard execution order; pairing them back up by
        position lets the merge re-record the truths globally in submission
        order — the order the sequential path would have used.
        """
        planner = self.planner
        ordered: List[Optional[RecommendationResult]] = [None] * len(queries)
        tagged_truths: List[Tuple[int, VerifiedTruth]] = []
        for run, (results, stats_delta, new_truths) in zip(runs, outcomes):
            truth_iter = iter(new_truths)
            for local, original in enumerate(run.shard.indices):
                result = results[local]
                ordered[original] = result
                if result.method != "truth_reuse":
                    try:
                        tagged_truths.append((original, next(truth_iter)))
                    except StopIteration:  # pragma: no cover - defensive
                        raise CrowdPlannerError(
                            "shard recorded fewer truths than its results imply"
                        ) from None
            if next(truth_iter, None) is not None:  # pragma: no cover - defensive
                raise CrowdPlannerError("shard recorded more truths than its results imply")
            planner.statistics.merge(stats_delta)
        tagged_truths.sort(key=lambda item: item[0])
        planner.truths.absorb([truth for _, truth in tagged_truths])
        for result in ordered:
            assert result is not None  # every index belongs to exactly one shard
            if result.task_result is not None:
                reissue_task_id(result.task_result.task)
                planner._update_answer_history(result.task_result)
                planner.rewards.reward_task(result.task_result)
        return ordered  # type: ignore[return-value]


# --------------------------------------------------------------- comparison
def _route_fingerprint(route: Optional[CandidateRoute]):
    if route is None:
        return None
    return (route.path, route.source, route.support, tuple(sorted(route.metadata.items())))


def _evaluation_fingerprint(evaluation: Optional[EvaluationOutcome]):
    if evaluation is None:
        return None
    return (
        evaluation.decision.value,
        _route_fingerprint(evaluation.best_route),
        tuple(sorted(evaluation.confidences.items())),
        evaluation.mean_pairwise_similarity,
    )


def _task_result_fingerprint(task_result: Optional[TaskResult]):
    if task_result is None:
        return None
    return (
        task_result.winning_route_index,
        task_result.confidence,
        task_result.stopped_early,
        tuple(sorted(task_result.votes.items())),
        tuple(
            (
                response.worker_id,
                response.chosen_route_index,
                response.total_response_time_s,
                tuple(
                    (answer.worker_id, answer.landmark_id, answer.says_yes, answer.response_time_s)
                    for answer in response.answers
                ),
            )
            for response in task_result.responses
        ),
    )


def recommendation_fingerprint(result: RecommendationResult):
    """Canonical, comparable form of a recommendation result.

    Captures every externally observable part of the answer — query, route,
    resolution method, confidence, candidate set, evaluation outcome and the
    full crowd task result down to individual answers and response times —
    while excluding process-local serial numbers (task ids), which are the
    only field where a sharded run may differ from the sequential oracle.
    """
    query = result.query
    return (
        (query.origin, query.destination, query.departure_time_s, query.max_response_time_s),
        _route_fingerprint(result.route),
        result.method,
        result.confidence,
        tuple(_route_fingerprint(candidate) for candidate in result.candidates),
        _evaluation_fingerprint(result.evaluation),
        _task_result_fingerprint(result.task_result),
    )
