"""Deprecated per-batch sharded engine — a thin shim over the service.

:class:`ShardedRecommendationEngine` predates the session-based
:class:`~repro.serving.service.RecommendationService` and is kept only for
backwards compatibility (and as the per-batch-fork baseline the
``crowd_stream`` benchmark measures the persistent pool against).  Each
:meth:`recommend_batch` call builds a one-shot service around a
**non-persistent** :class:`~repro.serving.service.PooledBackend` — fork the
pool, serve the batch, stop the pool — which is exactly the old engine's
cost model, now expressed through the same shard/merge machinery the
persistent pool uses.

Migrate by replacing::

    engine = ShardedRecommendationEngine(planner, workers=4)
    results = engine.recommend_batch(queries)

with::

    service = RecommendationService(planner, ServiceConfig.from_planner_config(
        planner.config, pool_size=4))
    results = [response.result for response in service.recommend_batch(queries)]
    ...
    service.close()

The service keeps its worker pool (and the workers' truth partitions) warm
across batches, so steady request streams no longer pay a fork + clone per
batch; the equivalence contract is unchanged (see
:func:`~repro.serving.protocol.recommendation_fingerprint`).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from ..core.planner import CrowdPlanner, RecommendationResult, ShardPlan
from ..exceptions import CrowdPlannerError
from ..routing.base import RouteQuery
from .protocol import recommendation_fingerprint  # noqa: F401  (compat re-export)
from .service import PooledBackend, RecommendationService


class ShardedRecommendationEngine:
    """Serves recommendation batches across a per-batch process pool.

    .. deprecated::
        Use :class:`~repro.serving.service.RecommendationService` — the
        session-based API with a persistent worker pool.  This shim remains
        result-identical to both the service and the sequential oracle.

    Parameters
    ----------
    planner:
        A (typically prepared) :class:`CrowdPlanner`.  The engine reads its
        configuration and substrate and writes its post-batch state.
    workers:
        Default worker count for :meth:`recommend_batch`; ``None`` means one
        worker per available CPU.
    use_processes:
        When ``False``, shards execute inline in the calling process (still
        through the same clone-and-merge machinery, so results are identical);
        inline execution is also the automatic fallback on platforms without
        ``fork``.
    """

    def __init__(
        self,
        planner: CrowdPlanner,
        workers: Optional[int] = None,
        use_processes: bool = True,
    ):
        if workers is not None and workers < 1:
            raise CrowdPlannerError("ShardedRecommendationEngine needs at least one worker")
        self.planner = planner
        self.workers = workers
        self.use_processes = use_processes

    # ------------------------------------------------------------------ plan
    def resolve_workers(self, workers: Optional[int] = None) -> int:
        """The effective worker count for a batch."""
        resolved = workers if workers is not None else self.workers
        if resolved is None:
            resolved = os.cpu_count() or 1
        if resolved < 1:
            raise CrowdPlannerError("worker count must be at least 1")
        return resolved

    def plan(self, queries: Sequence[RouteQuery], workers: Optional[int] = None) -> ShardPlan:
        """The shard plan a batch would execute under (diagnostics)."""
        return self.planner.shard_plan(list(queries), self.resolve_workers(workers))

    # ------------------------------------------------------------- interface
    def recommend_batch(
        self,
        queries: Sequence[RouteQuery],
        workers: Optional[int] = None,
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendationResult]:
        """Answer a batch in submission order, sharded across workers.

        ``workers=1`` (or a single-shard plan) runs the sequential path
        directly in-process — no clones, no fork — which is the oracle the
        multi-worker paths are tested against.

        An explicit ``plan`` overrides the planner's own
        :meth:`~repro.core.planner.CrowdPlanner.shard_plan`; it must cover
        the same queries and may regroup shards only along whole
        interaction-closed components (any such regrouping yields identical
        results — the shard-determinism property tests exercise exactly this
        freedom).
        """
        queries = list(queries)
        if not queries:
            return []
        worker_count = self.resolve_workers(workers)
        if plan is None:
            if worker_count <= 1:
                return self.planner.recommend_batch(
                    queries, share_candidate_generation=share_candidate_generation
                )
            plan = self.planner.shard_plan(queries, worker_count)
        if len(plan.shards) <= 1:
            return self.planner.recommend_batch(
                queries, share_candidate_generation=share_candidate_generation
            )
        backend = PooledBackend(
            pool_size=min(worker_count, len(plan.shards)),
            use_processes=self.use_processes,
            persistent=False,
        )
        service = RecommendationService(self.planner, backend=backend)
        try:
            responses = service.recommend_batch(
                queries, share_candidate_generation=share_candidate_generation, plan=plan
            )
        finally:
            service.close()
        return [response.result for response in responses]
