"""Session-based serving of route recommendations.

This package turns :meth:`~repro.core.planner.CrowdPlanner.recommend_batch`
into a *service* while keeping its answers bit-identical to the sequential
path, which stays in place as the behavioural oracle:

* :class:`RecommendationService` — the public surface: ``submit``/``results``
  tickets, ``stream`` pipelining, unified
  :class:`RecommendRequest`/:class:`RecommendResponse` envelopes with
  per-result provenance, and a context-managed lifecycle;
* :class:`ServingBackend` — the pluggable execution strategy:
  :class:`InlineBackend` (the sequential oracle) or :class:`PooledBackend`,
  a **persistent** forked worker pool whose workers keep warm
  :class:`~repro.core.truth.TruthDatabase` state between batches and
  receive merged truth deltas streamed from the parent;
* :mod:`~repro.serving.shards` — the shard clone/execute/merge primitives
  every pooled path shares (interaction-closed shards over copy-on-write
  truth views, submission-order merge);
* :class:`TruthJournal` — the durability layer: an append-only, CRC-framed
  log of per-batch truth deltas with compacted snapshots, attached via
  ``ServiceConfig(journal_path=…)`` and replayed by
  :meth:`RecommendationService.recover` to the exact pre-crash truth state;
* :class:`ShardedRecommendationEngine` — the deprecated per-batch shim kept
  for backwards compatibility and as the fork-per-batch baseline.

The service contract — for any backend, pool size and submission
interleaving, results and post-batch planner state match the sequential
oracle exactly (up to process-local serials, see
:func:`recommendation_fingerprint`) — is enforced by the ``tests/serving``
suites and the ``crowd_shard``/``crowd_stream`` benchmark gates.
"""

from .engine import ShardedRecommendationEngine
from .journal import TruthJournal
from .protocol import (
    BatchTimings,
    RecommendRequest,
    RecommendResponse,
    ResultProvenance,
    ServingBackend,
    Ticket,
    TruthDeltaBlock,
    encode_truth_delta,
    recommendation_fingerprint,
    response_fingerprint,
    wrap_requests,
)
from .service import InlineBackend, PooledBackend, RecommendationService

__all__ = [
    "BatchTimings",
    "InlineBackend",
    "PooledBackend",
    "RecommendRequest",
    "RecommendResponse",
    "RecommendationService",
    "ResultProvenance",
    "ServingBackend",
    "ShardedRecommendationEngine",
    "Ticket",
    "TruthDeltaBlock",
    "TruthJournal",
    "encode_truth_delta",
    "recommendation_fingerprint",
    "response_fingerprint",
    "wrap_requests",
]
