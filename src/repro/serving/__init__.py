"""Sharded, multi-process batch serving of route recommendations.

This package scales :meth:`~repro.core.planner.CrowdPlanner.recommend_batch`
across OS processes while keeping its answers *bit-identical* to the
sequential path, which stays in place as the behavioural oracle:

* :meth:`CrowdPlanner.shard_plan` splits a batch into interaction-closed
  shards — no truth recorded for a query in one shard can be observed by a
  query in another;
* each worker process receives a planner clone over a destination-cell
  partition of the :class:`~repro.core.truth.TruthDatabase` (plus the shared
  compiled road network) and runs the existing per-group batch path;
* :class:`ShardedRecommendationEngine` merges the shard results back in
  submission order, replaying recorded truths, worker answer histories and
  rewards onto the parent planner so its post-batch state matches a
  sequential run.

``workers=1`` (and any platform without ``fork``) serves in-process with no
subprocesses at all, so the engine stays deterministic everywhere.
"""

from .engine import (
    ShardedRecommendationEngine,
    recommendation_fingerprint,
)

__all__ = [
    "ShardedRecommendationEngine",
    "recommendation_fingerprint",
]
