"""Session-based serving of route recommendations.

This package turns :meth:`~repro.core.planner.CrowdPlanner.recommend_batch`
into a *service* while keeping its answers bit-identical to the sequential
path, which stays in place as the behavioural oracle:

* :class:`RecommendationService` — the public surface: ``submit``/``results``
  tickets, ``stream`` pipelining, unified
  :class:`RecommendRequest`/:class:`RecommendResponse` envelopes with
  per-result provenance, and a context-managed lifecycle;
* :class:`ServingBackend` — the pluggable execution strategy:
  :class:`InlineBackend` (the sequential oracle) or :class:`PooledBackend`,
  a **persistent** forked worker pool whose workers keep warm
  :class:`~repro.core.truth.TruthDatabase` state between batches and
  receive merged truth deltas streamed from the parent;
* :mod:`~repro.serving.shards` — the shard clone/execute/merge primitives
  every pooled path shares (interaction-closed shards over copy-on-write
  truth views, submission-order merge);
* :mod:`~repro.serving.pipeline` — the cross-batch dependency analysis
  behind ``ServiceConfig(pipeline_window=…)``: consecutive batches execute
  as one window, and the pooled backend's DAG dispatcher overlaps shards
  whose reach-expanded cell closures are disjoint while merges stay in
  strict submission order;
* :class:`TruthJournal` — the durability layer: an append-only, CRC-framed
  log of per-batch truth deltas with compacted snapshots, attached via
  ``ServiceConfig(journal_path=…)`` and replayed by
  :meth:`RecommendationService.recover` to the exact pre-crash truth state;
* :mod:`~repro.serving.tenancy` — multi-tenant workspaces:
  :class:`WorkspaceService` opens named :class:`Workspace` tenants that each
  own an isolated truth store, histories, batch numbering and journal
  directory while sharing one warm :class:`PooledBackend` through the
  tenant-tagged :class:`TenantBackend` facade, with whole-tree crash
  recovery via :meth:`WorkspaceService.recover_all`;
* :class:`ShardedRecommendationEngine` — the deprecated per-batch shim kept
  for backwards compatibility and as the fork-per-batch baseline.

The service contract — for any backend, pool size and submission
interleaving, results and post-batch planner state match the sequential
oracle exactly (up to process-local serials, see
:func:`recommendation_fingerprint`) — holds for every window size and is
enforced by the ``tests/serving`` suites and the
``crowd_shard``/``crowd_stream``/``crowd_pipeline`` benchmark gates.
"""

from .engine import ShardedRecommendationEngine
from .journal import TruthJournal
from .pipeline import batch_dependencies, window_parallelism
from .protocol import (
    BatchTimings,
    RecommendRequest,
    RecommendResponse,
    ResultProvenance,
    ServingBackend,
    Ticket,
    TruthDeltaBlock,
    WindowBatch,
    encode_truth_delta,
    recommendation_fingerprint,
    response_fingerprint,
    wrap_requests,
)
from .service import DEFAULT_TENANT, InlineBackend, PooledBackend, RecommendationService
from .shards import build_tenant_planner
from .tenancy import TenantBackend, Workspace, WorkspaceService

__all__ = [
    "BatchTimings",
    "DEFAULT_TENANT",
    "InlineBackend",
    "PooledBackend",
    "RecommendRequest",
    "RecommendResponse",
    "RecommendationService",
    "ResultProvenance",
    "ServingBackend",
    "ShardedRecommendationEngine",
    "TenantBackend",
    "Ticket",
    "TruthDeltaBlock",
    "TruthJournal",
    "WindowBatch",
    "Workspace",
    "WorkspaceService",
    "batch_dependencies",
    "build_tenant_planner",
    "encode_truth_delta",
    "recommendation_fingerprint",
    "response_fingerprint",
    "window_parallelism",
    "wrap_requests",
]
