"""The session-based recommendation service.

:class:`RecommendationService` is the serving layer's public surface: an
always-on façade over a prepared :class:`~repro.core.planner.CrowdPlanner`
that answers a *stream* of query batches instead of one-shot calls.

* ``submit(queries) -> Ticket`` enqueues a batch (bounded queue);
  ``results(ticket)`` redeems it — batches execute lazily, strictly in
  submission order, so any interleaving of submits and collects observes
  the same global query sequence;
* ``stream(queries)`` pipelines a long query iterable through the service
  in batches, yielding :class:`~repro.serving.protocol.RecommendResponse`
  envelopes as they are produced;
* execution is delegated to a pluggable
  :class:`~repro.serving.protocol.ServingBackend`:
  :class:`InlineBackend` is the sequential oracle itself, and
  :class:`PooledBackend` a **persistent** forked worker pool — workers are
  forked once, keep warm :class:`~repro.core.truth.TruthDatabase` state
  between batches, and receive only the truth deltas the parent merged
  since their last shard, amortising the per-batch fork + clone cost of the
  old engine;
* with ``config.pipeline_window > 1`` consecutive pending batches execute
  as one *window*: the pooled backend's DAG dispatcher
  (:meth:`PooledBackend.execute_window`, dependencies from
  :mod:`repro.serving.pipeline`) overlaps shards across batch boundaries
  wherever their interaction closures are disjoint, while merges — and so
  all observable state — stay strictly in submission order.

Service contract
----------------
For any backend, pool size and submission interleaving, the concatenated
results (and the planner's post-batch state) are bit-identical to the
planner answering the same queries sequentially in submission order — up to
process-local task/truth serial numbers, exactly as
:func:`~repro.serving.protocol.recommendation_fingerprint` canonicalises.
The pooled path inherits this from the shard machinery
(:mod:`repro.serving.shards`); the per-batch grouping itself cannot change
answers because batch-level optimisations are performance-only channels
(see :meth:`CrowdPlanner.recommend_batch`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import threading
import time
import traceback
import warnings
from collections import OrderedDict, deque
from multiprocessing.connection import wait as mp_wait
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..config import TRUTH_WIRE_FORMATS, ServiceConfig
from ..core.planner import CrowdPlanner, ShardPlan
from ..exceptions import JournalError, OverloadError, ServingError
from ..routing.base import RouteQuery
from .journal import TruthJournal
from .pipeline import batch_dependencies, window_parallelism
from .protocol import (
    BatchExecution,
    BatchTimings,
    RecommendRequest,
    RecommendResponse,
    ResultProvenance,
    ServingBackend,
    Ticket,
    WindowBatch,
    encode_truth_delta,
    wrap_requests,
)
from .shards import (
    ChainState,
    ShardJob,
    ShardOutcome,
    build_tenant_planner,
    execute_jobs_inline,
    execute_shard_job,
    handoff_id_base,
    merge_shard_outcomes,
    split_oversized,
)

QueryLike = Union[RouteQuery, RecommendRequest]

#: The implicit workspace of a single-tenant backend: the planner the
#: backend was bound to.  Named workspaces (``repro.serving.tenancy``)
#: register additional planners beside it on the same pool.
DEFAULT_TENANT = ""


# ------------------------------------------------------------ inline backend
class InlineBackend(ServingBackend):
    """The sequential oracle as a backend: no shards, no processes.

    Every other backend is tested against this one — it *is*
    ``planner.recommend_batch`` with envelopes around it.
    """

    name = "inline"

    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        if self.planner is None:
            raise ServingError("backend is not bound to a planner")
        if plan is not None:
            raise ServingError("the inline backend does not accept shard plans")
        started = time.perf_counter()
        results = self.planner.recommend_batch(
            list(queries), share_candidate_generation=share_candidate_generation
        )
        elapsed = time.perf_counter() - started
        pid = os.getpid()
        return BatchExecution(
            results=results,
            origins=[(None, pid) for _ in results],
            execute_s=elapsed,
        )


# ------------------------------------------------------------ pooled backend
def _pool_worker_main(
    conn,
    planner: CrowdPlanner,
    tenants=None,
    heartbeat_interval_s: float = 0.5,
    stale_conns=(),
) -> None:
    """Long-lived pool worker loop (child process, entered right after fork).

    The worker's ``planner`` is its fork-inherited copy of the parent's —
    the *base* whose truth store is kept warm across batches: ``run`` and
    ``sync`` messages carry the truths the parent merged since this worker
    last heard from it — as a columnar
    :class:`~repro.serving.protocol.TruthDeltaBlock` or a pickled object
    list, whichever codec the backend is configured with;
    :meth:`TruthDatabase.adopt_all` accepts both and preserves parent ids,
    keeping lookup tie-breaks identical — and each shard then executes on a
    fresh clone over a copy-on-write slice of the warm base.  Strict
    request/reply: every *substantive* message gets exactly one response.

    Tenancy: the worker keeps one warm truth base *per workspace* —
    ``tenants`` maps workspace names to their fork-inherited planners, and
    the default tenant ``""`` is ``planner`` itself.  Every ``sync``/``run``
    message names its tenant and may carry a :class:`~repro.config.
    PlannerConfig` spec; a tenant registered after this worker forked is
    built lazily from that spec via :func:`build_tenant_planner` (sharing
    the fork-inherited substrate and *frozen* familiarity, so the lazy copy
    is behaviourally identical to a fork-inherited one) and then brought
    current by the message's own delta, which spans that tenant's whole
    store.  Deltas adopt into the named tenant's base only — one tenant's
    traffic can never touch another tenant's warm truths.

    While a message is being served, a daemon thread additionally emits a
    ``("beat", pid)`` heartbeat every ``heartbeat_interval_s`` so the
    parent's supervisor can tell *slow but alive* from *hung*: a worker that
    neither replies nor beats past the RPC deadline is declared dead
    mid-batch.  Beats are only sent while busy — an idle worker stays silent,
    so heartbeats can never fill the pipe buffer of a parent that is not
    currently draining it (which would deadlock both sides).
    """
    # Close fork-inherited copies of parent-side pipe ends — this worker's
    # own ``parent_conn`` and those of every sibling forked before it.
    # Holding them would keep each pipe's write end open inside the pool
    # itself, so ``conn.recv()`` could never see EOF after the pool owner is
    # SIGKILLed and the whole pool would leak as orphans re-parented to init.
    for stale in stale_conns:
        try:
            stale.close()
        except OSError:  # pragma: no cover - already closed pre-fork
            pass
    pid = os.getpid()
    bases: Dict[str, CrowdPlanner] = {DEFAULT_TENANT: planner}
    if tenants:
        bases.update(tenants)

    def base_for(tenant: str, spec) -> CrowdPlanner:
        base = bases.get(tenant)
        if base is None:
            if spec is None:
                raise ServingError(
                    f"worker {pid} received work for unknown tenant {tenant!r} "
                    "without a planner spec"
                )
            base = build_tenant_planner(planner, spec)
            bases[tenant] = base
        return base

    send_lock = threading.Lock()
    busy = threading.Event()
    stopping = threading.Event()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    def beat_loop() -> None:
        while not stopping.wait(heartbeat_interval_s):
            if not busy.is_set():
                continue
            try:
                send(("beat", pid))
            except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
                return

    threading.Thread(target=beat_loop, daemon=True).start()

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        busy.set()
        # Exceptions cross the pipe as rendered text: exception objects with
        # custom constructors do not round-trip through pickle.  A failure
        # while adopting deltas is reported as "desync" — the warm base may
        # be partially updated, so the parent must retire this worker — while
        # a failure during shard execution leaves the base intact ("error").
        try:
            if kind == "stop":
                break
            if kind == "ping":
                send(("pong", pid))
            elif kind == "drop":
                # Forget a closed workspace's warm base (no reply — like
                # "stop", it carries no work to acknowledge).  The name may
                # be reused by a future workspace whose state is rebuilt
                # from its spec + full delta.
                bases.pop(message[1], None)
            elif kind in ("sync", "run"):
                # ("sync"|"run", tenant, spec, delta[, jobs]) — a failure
                # while resolving the tenant base or adopting its delta is a
                # desync (the warm base may be partially updated); a failure
                # during shard execution leaves every base intact.
                tenant, spec, delta = message[1], message[2], message[3]
                try:
                    base = base_for(tenant, spec)
                    base.truths.adopt_all(delta)
                except Exception:
                    send(("desync", pid, traceback.format_exc()))
                    continue
                if kind == "sync":
                    send(("synced", pid))
                    continue
                try:
                    outcomes = [execute_shard_job(base, job) for job in message[4]]
                except Exception:
                    send(("error", pid, traceback.format_exc()))
                    continue
                send(("done", pid, outcomes))
            else:  # pragma: no cover - protocol guard
                send(("error", pid, f"unknown message kind {kind!r}"))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
        finally:
            busy.clear()
    stopping.set()
    conn.close()


class _PoolWorker:
    """Parent-side handle of one pool worker."""

    __slots__ = ("process", "conn", "pid", "cursors", "dead", "last_heard")

    def __init__(self, process, conn, cursors: Dict[str, int]):
        self.process = process
        self.conn = conn
        self.pid = process.pid
        # Per-tenant truth cursors: parent truths already synced to this
        # worker, keyed by workspace name ("" = default tenant).  A tenant
        # missing here is one the worker has never heard of — the next
        # dispatch for it ships the planner spec plus the full store.
        self.cursors = cursors
        self.dead = False
        self.last_heard = time.monotonic()  # last reply or heartbeat seen

    def touch(self) -> None:
        self.last_heard = time.monotonic()

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def mark_dead(self) -> None:
        self.dead = True
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class PooledBackend(ServingBackend):
    """Persistent forked worker pool with warm truth partitions.

    Workers are forked once (on the first batch) and inherit the full
    planner substrate — including state that cannot be pickled — through
    ``fork``.  Across batches each worker keeps its base truth store in
    sync with the parent via streamed deltas, so consecutive batches pay
    only shard-clone construction, never a fork or a whole-store clone.

    ``persistent=False`` degrades to the old per-batch behaviour (fork,
    serve one batch, stop) — kept as the baseline the ``crowd_stream``
    benchmark and the deprecated engine shim measure against.  When
    ``use_processes`` is false or the platform offers no ``fork`` start
    method, shards execute inline through the same clone-and-merge
    machinery, keeping results identical everywhere.

    Truth deltas stream to workers in the codec named by ``truth_wire``:
    ``"columnar"`` (default) encodes each delta as a
    :class:`~repro.serving.protocol.TruthDeltaBlock` — node-index arrays,
    several times smaller on the wire than the ``"pickle"`` object fallback
    — and the worker's :meth:`TruthDatabase.adopt_all` decodes it against
    its fork-inherited network, so adopted truths are identical either way.

    A worker failure never fails a batch.  The supervisor watches every
    in-flight worker: a crash is seen as pipe EOF, and a *hung* worker — one
    that neither replies nor heartbeats for ``rpc_deadline_s`` (SIGSTOP'd,
    deadlocked, swapped out) — is killed outright.  Either way its in-flight
    shard is resubmitted to a healthy worker, and (budget permitting) a
    replacement is re-forked immediately, mid-batch, behind a bounded
    exponential backoff with jitter; the replacement inherits the parent's
    current planner (truth store included) through ``fork``, so it starts
    exactly as synced as a freshly-dispatched survivor.  After
    ``max_respawns_per_batch`` respawns the circuit breaker opens: no more
    forks this batch, and if the whole pool is gone the remaining shards
    degrade to in-process execution — the ticket is still served, and the
    results are identical by the serving contract.  With ``respawn_workers``
    (the default) remaining lost capacity is restored at the next batch
    edge.
    """

    name = "pooled"

    def __init__(
        self,
        pool_size: Optional[int] = None,
        use_processes: bool = True,
        persistent: bool = True,
        merge_every_batches: int = 1,
        truth_wire: str = "columnar",
        respawn_workers: bool = True,
        heartbeat_interval_s: float = 0.5,
        rpc_deadline_s: float = 8.0,
        max_respawns_per_batch: int = 2,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_max_s: float = 1.0,
        max_shard_fraction: Optional[float] = None,
        hedge_after_s: Optional[float] = None,
    ):
        super().__init__()
        if pool_size is not None and pool_size < 1:
            raise ServingError("pool_size must be at least 1")
        if max_shard_fraction is not None and not (0 < max_shard_fraction <= 1):
            raise ServingError("max_shard_fraction must be in (0, 1]")
        if merge_every_batches < 1:
            raise ServingError("merge_every_batches must be at least 1")
        if truth_wire not in TRUTH_WIRE_FORMATS:
            raise ServingError(
                f"truth_wire must be one of {TRUTH_WIRE_FORMATS}, got {truth_wire!r}"
            )
        if heartbeat_interval_s <= 0:
            raise ServingError("heartbeat_interval_s must be positive")
        if rpc_deadline_s <= heartbeat_interval_s:
            raise ServingError("rpc_deadline_s must exceed heartbeat_interval_s")
        if max_respawns_per_batch < 0:
            raise ServingError("max_respawns_per_batch must be non-negative")
        if respawn_backoff_s < 0 or respawn_backoff_max_s < respawn_backoff_s:
            raise ServingError(
                "respawn backoff must be non-negative and bounded by its maximum"
            )
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ServingError("hedge_after_s must be positive (or None to disable)")
        self.pool_size = pool_size
        self.use_processes = use_processes
        self.persistent = persistent
        self.merge_every_batches = merge_every_batches
        self.truth_wire = truth_wire
        self.respawn_workers = respawn_workers
        self.heartbeat_interval_s = heartbeat_interval_s
        self.rpc_deadline_s = rpc_deadline_s
        self.max_respawns_per_batch = max_respawns_per_batch
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_max_s = respawn_backoff_max_s
        self.max_shard_fraction = max_shard_fraction
        self.hedge_after_s = hedge_after_s
        self.batches_executed = 0
        # Lifetime supervision counters (surfaced by ``supervision_stats``).
        self.respawns_total = 0
        self.resubmitted_shards_total = 0
        self.hung_workers_killed = 0
        self.degraded_batches = 0
        # Hedged-execution counters (surfaced by ``resilience_stats``):
        # speculative duplicate dispatches against slow-but-alive workers,
        # how many finished first (won) vs were overtaken by the original
        # (wasted), and stragglers killed for breaching ``rpc_deadline_s``
        # on top of losing their hedge race.
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_wasted = 0
        self.stragglers_killed = 0
        # Workers overtaken by a hedge ("lame"): each still owes one stale
        # reply under the strict request/reply protocol, so it is excluded
        # from dispatch and sync until drained.  Value = the hard,
        # non-heartbeat-renewable deadline (monotonic) after which the
        # crawler is killed (see ``_poll_lame``).
        self._lame: Dict[_PoolWorker, float] = {}
        # Pipelining counters (surfaced by ``pipeline_stats``): windows run
        # through the DAG dispatcher, and dispatches that actually overlapped
        # batch boundaries (a shard sent while an earlier batch was unmerged).
        self.windows_executed = 0
        self.overlapped_dispatches = 0
        # Window-parallelism structure counters (also ``pipeline_stats``):
        # accumulated from :func:`~repro.serving.pipeline.window_parallelism`
        # over every window this backend has dispatched.
        self.independent_shards_total = 0
        self.cross_batch_edges_total = 0
        self.serialized_batches_total = 0
        # Skew / hotspot-splitting diagnostics (surfaced by
        # ``sharding_stats``): the last batch's largest-shard fraction before
        # and after ``split_oversized``, its hand-off chain depth, and
        # lifetime aggregates.
        self.last_shard_fraction_before = 0.0
        self.last_shard_fraction_after = 0.0
        self.last_chain_depth = 0
        self.max_chain_depth = 0
        self.sub_shards_total = 0
        # Seeded so backoff jitter is reproducible run to run.
        self._backoff_rng = random.Random(0x5EED)
        self._workers: List[_PoolWorker] = []
        # Named workspaces sharing this pool beside the bound (default)
        # planner: tenant name -> planner.  Registration order is the order
        # freshly forked workers inherit the warm bases in.
        self._tenants: "OrderedDict[str, CrowdPlanner]" = OrderedDict()
        # Per-tenant supervision attribution (see ``tenant_stats``).
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        # One-entry-per-tenant memo of the last encoded delta (_wire_delta).
        self._wire_cache: Dict[str, Tuple[Tuple[int, int], object]] = {}

    @classmethod
    def from_config(cls, config: "ServiceConfig") -> "PooledBackend":
        """Build a pool from a service configuration's serving knobs."""
        return cls(
            pool_size=config.pool_size,
            use_processes=config.use_processes,
            merge_every_batches=config.merge_every_batches,
            truth_wire=config.truth_wire,
            respawn_workers=config.respawn_workers,
            heartbeat_interval_s=config.heartbeat_interval_s,
            rpc_deadline_s=config.rpc_deadline_s,
            max_respawns_per_batch=config.max_respawns_per_batch,
            respawn_backoff_s=config.respawn_backoff_s,
            respawn_backoff_max_s=config.respawn_backoff_max_s,
            max_shard_fraction=config.max_shard_fraction,
            hedge_after_s=config.hedge_after_s,
        )

    # -------------------------------------------------------------- plumbing
    def bind(self, planner: CrowdPlanner) -> None:
        if self.planner is not None and self.planner is not planner:
            raise ServingError("backend is already bound to a different planner")
        self.planner = planner

    # --------------------------------------------------------------- tenancy
    def register_tenant(self, name: str, planner: CrowdPlanner) -> None:
        """Register a named workspace's planner beside the default one.

        Workers forked afterwards inherit the planner (warm base included);
        workers already running learn about the tenant lazily — their first
        dispatch for it ships the tenant's
        :class:`~repro.config.PlannerConfig` plus the whole current store as
        a delta, so they rebuild an identical base from the shared substrate.
        """
        if not name:
            raise ServingError("tenant name must be non-empty")
        existing = self._tenants.get(name)
        if existing is not None and existing is not planner:
            raise ServingError(
                f"tenant {name!r} is already registered with a different planner"
            )
        self._tenants[name] = planner

    def drop_tenant(self, name: str) -> None:
        """Deregister a workspace without touching the shared pool.

        Live workers are told to forget the tenant's warm base, so a later
        workspace reusing the name starts from the fresh spec + full delta
        instead of a stale fork-inherited store.
        """
        if self._tenants.pop(name, None) is None:
            return
        self._wire_cache.pop(name, None)
        for worker in self._workers:
            if worker.cursors.pop(name, None) is not None and worker.alive:
                self._send(worker, ("drop", name))

    def tenant_names(self) -> List[str]:
        return list(self._tenants)

    def _planner_for(self, tenant: str) -> CrowdPlanner:
        if tenant == DEFAULT_TENANT:
            if self.planner is None:
                raise ServingError("backend is not bound to a planner")
            return self.planner
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ServingError(f"unknown tenant {tenant!r}") from None

    #: Counters attributed per tenant by ``_attribute_counters`` — the order
    #: must match ``_counter_snapshot``.
    _ATTRIBUTED_COUNTERS = (
        "respawns",
        "resubmitted_shards",
        "hung_workers_killed",
        "degraded_batches",
        "hedges_issued",
        "hedges_won",
        "hedges_wasted",
        "stragglers_killed",
    )

    def _tenant_counters(self, tenant: str) -> Dict[str, int]:
        return self._tenant_stats.setdefault(
            tenant,
            dict({"batches": 0}, **{key: 0 for key in self._ATTRIBUTED_COUNTERS}),
        )

    def _counter_snapshot(self) -> Tuple[int, ...]:
        return (
            self.respawns_total,
            self.resubmitted_shards_total,
            self.hung_workers_killed,
            self.degraded_batches,
            self.hedges_issued,
            self.hedges_won,
            self.hedges_wasted,
            self.stragglers_killed,
        )

    def _attribute_counters(
        self, tenant: str, before: Tuple[int, ...], batches: int
    ) -> None:
        """Attribute the supervision counter deltas since ``before`` to one
        tenant.  Sound because batches/windows execute one at a time on the
        shared pool: every respawn, resubmission, hang-kill, degrade or
        hedge between the snapshots happened inside this tenant's work.
        (A lame straggler killed at a *later* batch edge charges its kill
        to the tenant running then; hedges issued/won/wasted are always
        counted inside the batch that raced them, so those attribute
        exactly.)"""
        after = self._counter_snapshot()
        stats = self._tenant_counters(tenant)
        stats["batches"] += batches
        for key, start, end in zip(self._ATTRIBUTED_COUNTERS, before, after):
            stats[key] += end - start

    def tenant_stats(self, tenant: Optional[str] = None):
        """Per-tenant supervision breakdown (all tenants, or one copy)."""
        if tenant is not None:
            return dict(self._tenant_counters(tenant))
        return {name: dict(stats) for name, stats in self._tenant_stats.items()}

    def resolved_pool_size(self) -> int:
        if self.pool_size is not None:
            return self.pool_size
        return os.cpu_count() or 1

    def _can_fork(self) -> bool:
        return self.use_processes and "fork" in multiprocessing.get_all_start_methods()

    def worker_pids(self) -> List[int]:
        return [worker.pid for worker in self._workers if worker.alive]

    def supervision_stats(self) -> Dict[str, int]:
        return {
            "respawns": self.respawns_total,
            "resubmitted_shards": self.resubmitted_shards_total,
            "hung_workers_killed": self.hung_workers_killed,
            "degraded_batches": self.degraded_batches,
        }

    def pipeline_stats(self) -> Dict[str, int]:
        return {
            "windows": self.windows_executed,
            "overlapped_dispatches": self.overlapped_dispatches,
            "independent_shards": self.independent_shards_total,
            "cross_batch_edges": self.cross_batch_edges_total,
            "serialized_batches": self.serialized_batches_total,
        }

    def sharding_stats(self) -> Dict[str, Any]:
        return {
            "largest_shard_fraction_before": self.last_shard_fraction_before,
            "largest_shard_fraction_after": self.last_shard_fraction_after,
            "chain_depth": self.last_chain_depth,
            "max_chain_depth": self.max_chain_depth,
            "sub_shards_total": self.sub_shards_total,
        }

    def resilience_stats(self) -> Dict[str, int]:
        return {
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "stragglers_killed": self.stragglers_killed,
        }

    def close(self) -> None:
        self._stop_pool()

    # ------------------------------------------------------ hotspot splitting
    def _split_plan(
        self, planner: CrowdPlanner, plan: ShardPlan, queries: Sequence[RouteQuery]
    ) -> ShardPlan:
        """Apply the configured ``max_shard_fraction`` split (idempotent)."""
        if self.max_shard_fraction is None:
            return plan
        return split_oversized(planner, plan, queries, self.max_shard_fraction)

    def _note_plan(self, before: ShardPlan, after: ShardPlan) -> None:
        """Record one batch's skew diagnostics (see ``sharding_stats``)."""
        self.last_shard_fraction_before = before.largest_shard_fraction()
        self.last_shard_fraction_after = after.largest_shard_fraction()
        self.last_chain_depth = after.chain_depth()
        self.max_chain_depth = max(self.max_chain_depth, self.last_chain_depth)
        self.sub_shards_total += max(0, len(after.shards) - len(before.shards))

    def _chain_encoder(self):
        """Hand-off payload codec: columnar on the wire, objects otherwise."""
        if self.truth_wire != "columnar":
            return None
        network = self.planner.network
        return lambda truths: encode_truth_delta(truths, network)

    # ------------------------------------------------------------- execution
    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> BatchExecution:
        if self.planner is None:
            raise ServingError("backend is not bound to a planner")
        planner = self._planner_for(tenant)
        queries = list(queries)
        if not queries:
            return BatchExecution(results=[], origins=[])
        counters_before = self._counter_snapshot()

        started = time.perf_counter()
        if plan is None:
            plan = planner.shard_plan(queries, self.resolved_pool_size())
        raw_plan = plan
        plan = self._split_plan(planner, plan, queries)
        self._note_plan(raw_plan, plan)
        plan_s = time.perf_counter() - started

        # Warm shared read-only state before any fork so first-batch workers
        # inherit the compiled graph and source caches instead of rebuilding
        # them per process.
        planner.warm_batch(queries)
        jobs = [
            ShardJob(
                shard_id=shard.shard_id,
                indices=shard.indices,
                destination_cells=shard.destination_cells,
                queries=[queries[index] for index in shard.indices],
                share_candidate_generation=share_candidate_generation,
                predecessors=shard.predecessors,
                handoff_from=shard.handoff_from,
                tenant=tenant,
            )
            for shard in plan.shards
        ]

        started = time.perf_counter()
        warm = False
        resubmitted: Set[int] = set()
        respawns = 0
        degraded = False
        if self._can_fork():
            # Warm only when an existing pool served this batch — a re-fork
            # after a whole-pool loss is a cold batch like the first one
            # (replacing individual dead workers is not: the survivors'
            # warm state is what the batch runs on).
            warm = not self._ensure_pool()
            if warm:
                self._poll_lame()
                self._respawn_dead()
            try:
                chain = ChainState(jobs, handoff_id_base(), self._chain_encoder())
                outcomes, resubmitted, respawns, degraded = self._run_on_pool(
                    jobs, chain, tenant
                )
            finally:
                if not self.persistent:
                    self._stop_pool()
        else:
            outcomes = execute_jobs_inline(
                planner, jobs, ChainState(jobs, handoff_id_base())
            )
        execute_s = time.perf_counter() - started
        if degraded:
            self.degraded_batches += 1

        started = time.perf_counter()
        results = merge_shard_outcomes(planner, len(queries), outcomes)
        merge_s = time.perf_counter() - started

        self.batches_executed += 1
        self._attribute_counters(tenant, counters_before, batches=1)
        if self._workers and self.batches_executed % self.merge_every_batches == 0:
            self._push_sync(tenant)

        origins: List[Tuple[Optional[int], Optional[int]]] = [(None, None)] * len(queries)
        for outcome in outcomes:
            for index in outcome.indices:
                origins[index] = (outcome.shard_id, outcome.worker_pid)
        return BatchExecution(
            results=results,
            origins=origins,
            plan_s=plan_s,
            execute_s=execute_s,
            merge_s=merge_s,
            warm_pool=warm,
            resubmitted=(
                [origin[0] in resubmitted for origin in origins] if resubmitted else None
            ),
            respawn_count=respawns,
        )

    def execute_window(
        self, batches: Sequence[WindowBatch], tenant: str = DEFAULT_TENANT
    ) -> List[BatchExecution]:
        """Overlap a window of consecutive batches on the pool (DAG dispatch).

        Each batch is shard-planned as usual, then
        :func:`~repro.serving.pipeline.batch_dependencies` reduces the
        cross-batch interaction-closure tests to one dependency per shard: a
        shard may dispatch as soon as every batch up to and including its
        dependency has merged — it need not wait for the whole previous
        batch.  Merges still happen strictly in submission order (the window
        contract), so parent truth-id issuance — and with it every
        fingerprint — is identical to the barrier scheduler and to the
        sequential oracle.

        Degenerate windows fall back to the barrier scheduler byte for byte:
        a single-batch window, a non-persistent pool (the per-batch baseline
        has nothing to keep warm across batches), and platforms without
        ``fork`` all delegate to the default :meth:`ServingBackend.execute_window`.

        Supervision carries over from the barrier path with two per-window
        readings: ``max_respawns_per_batch`` acts as a per-*window* respawn
        budget, and ``warm_pool``/``respawn_count`` provenance fields are
        window-level (all batches of a window report the same warm flag and
        the respawns seen up to their own merge).
        """
        if self.planner is None:
            raise ServingError("backend is not bound to a planner")
        planner = self._planner_for(tenant)
        window = [
            WindowBatch(list(batch.queries), batch.share_candidate_generation)
            for batch in batches
        ]
        if len(window) <= 1 or not self.persistent or not self._can_fork():
            return self._execute_window_barrier(window, tenant)

        counters_before = self._counter_snapshot()
        plans: List[ShardPlan] = []
        plan_times: List[float] = []
        for batch in window:
            started = time.perf_counter()
            raw_plan = planner.shard_plan(batch.queries, self.resolved_pool_size())
            split_plan = self._split_plan(planner, raw_plan, batch.queries)
            self._note_plan(raw_plan, split_plan)
            plans.append(split_plan)
            plan_times.append(time.perf_counter() - started)
        deps = batch_dependencies(plans)
        parallelism = window_parallelism(deps)
        self.independent_shards_total += parallelism["independent_shards"]
        self.cross_batch_edges_total += parallelism["cross_batch_edges"]
        self.serialized_batches_total += parallelism["serialized_batches"]
        planner.warm_batch([query for batch in window for query in batch.queries])
        jobs_per_batch: List[List[ShardJob]] = [
            [
                ShardJob(
                    shard_id=shard.shard_id,
                    indices=shard.indices,
                    destination_cells=shard.destination_cells,
                    queries=[batch.queries[index] for index in shard.indices],
                    share_candidate_generation=batch.share_candidate_generation,
                    predecessors=shard.predecessors,
                    handoff_from=shard.handoff_from,
                    tenant=tenant,
                )
                for shard in plan.shards
            ]
            for batch, plan in zip(window, plans)
        ]
        # Per-batch hand-off chains: id bases are pre-computed stripes above
        # the current watermark, so retagged hand-off ids of a later batch
        # stay above everything merged while earlier batches complete.
        encoder = self._chain_encoder()
        chains = [
            ChainState(jobs, handoff_id_base(batch_offset), encoder)
            for batch_offset, jobs in enumerate(jobs_per_batch)
        ]

        warm = not self._ensure_pool()
        if warm:
            self._poll_lame()
            self._respawn_dead()
        batches_before = self.batches_executed
        executions = self._run_window(
            window, plan_times, jobs_per_batch, deps, warm, chains, tenant
        )
        self.windows_executed += 1
        self._attribute_counters(tenant, counters_before, batches=len(executions))
        # Sync cadence at the window edge (never mid-window: a blocking
        # "synced" round-trip while shards are in flight would swallow their
        # "done" replies).  Crossing any multiple of the cadence inside the
        # window triggers one sync here.
        if self._workers and (
            self.batches_executed // self.merge_every_batches
            > batches_before // self.merge_every_batches
        ):
            self._push_sync(tenant)
        return executions

    def _execute_window_barrier(
        self, window: List[WindowBatch], tenant: str
    ) -> List[BatchExecution]:
        """The barrier scheduler with tenant threading: each batch through
        :meth:`execute_batch` in submission order, ``truth_span`` bracketed
        on the *tenant's* truth cursor (mirrors the default
        :meth:`ServingBackend.execute_window` contract byte for byte)."""
        planner = self._planner_for(tenant)
        executions: List[BatchExecution] = []
        for batch in window:
            before = planner.truth_cursor()
            # The tenant kwarg is threaded only when set, so subclasses that
            # override ``execute_batch`` with the base signature keep
            # working for the default tenant.
            kwargs = {} if tenant == DEFAULT_TENANT else {"tenant": tenant}
            try:
                execution = self.execute_batch(
                    batch.queries,
                    share_candidate_generation=batch.share_candidate_generation,
                    **kwargs,
                )
            except Exception:
                if executions:
                    break
                raise
            execution.truth_span = (before, planner.truth_cursor())
            executions.append(execution)
        return executions

    def _run_window(
        self,
        window: List[WindowBatch],
        plan_times: List[float],
        jobs_per_batch: List[List[ShardJob]],
        deps: List[List[int]],
        warm: bool,
        chains: List[ChainState],
        tenant: str = DEFAULT_TENANT,
    ) -> List[BatchExecution]:
        """DAG dispatch + supervision for one window (see ``execute_window``).

        The scheduler keeps two shard pools: ``ready`` (dependency already
        merged — dispatchable now, in (batch, shard) order so the merge
        frontier is favoured) and ``blocked[d]`` (waiting for batch ``d`` to
        merge).  Whenever the frontier batch has all its outcomes, it merges
        into the parent — strictly in submission order — and releases the
        shards that were blocked on it.

        Sub-shard chains add a third pool: ``chain_blocked[b]`` holds batch
        ``b``'s sub-shards whose cross-batch dependency is satisfied but
        whose intra-batch hand-off truths have not all arrived.  Each
        recorded outcome feeds its batch's :class:`ChainState` and releases
        the sub-shards it just made ready; dispatch attaches the (memoised)
        hand-off payload, so a resubmitted sub-shard adopts exactly the same
        truths as the first attempt.

        Fault handling mirrors :meth:`_run_on_pool`: a crashed, desynced or
        hung in-flight worker gets its shard requeued at the *front* of the
        ready queue (its dependency is already satisfied, and the frontier
        may be waiting on it) and a replacement forked budget permitting;
        with the whole pool gone and the breaker open, the remaining shards
        degrade to in-process execution in strict batch order with frontier
        merges between batches — the parent then holds exactly the
        sequential prefix each shard would have seen, so results are
        unchanged.  A shard *execution* error stops dispatching, drains
        in-flight workers (their frontier batches may still merge), and the
        merged prefix is returned; the failing batch never merges, so it
        stays pending at the service and the error re-raises
        deterministically when it heads a later window.
        """
        planner = self._planner_for(tenant)
        num_batches = len(window)
        total = [len(jobs) for jobs in jobs_per_batch]
        done: List[List[ShardOutcome]] = [[] for _ in range(num_batches)]
        resubmitted_ids: List[Set[int]] = [set() for _ in range(num_batches)]
        first_dispatch: List[Optional[float]] = [None] * num_batches
        last_done: List[Optional[float]] = [None] * num_batches
        executions: List[BatchExecution] = []
        merged = 0
        respawns = 0
        degraded = False
        error: Optional[str] = None
        # Hedging state (see ``_run_on_pool``); shard ids are per-batch, so
        # duplicates are keyed ``(batch_index, shard_id)`` here.
        completed: Set[Tuple[int, int]] = set()
        hedge_workers: Set[_PoolWorker] = set()
        dispatched_at: Dict[_PoolWorker, float] = {}

        # Entries are (batch_index, job, resubmitted).
        ready: "deque[Tuple[int, ShardJob, bool]]" = deque()
        blocked: Dict[int, List[Tuple[int, ShardJob, bool]]] = {}
        chain_blocked: Dict[int, List[Tuple[int, ShardJob, bool]]] = {}

        def release(entry: Tuple[int, ShardJob, bool]) -> None:
            """Queue an entry whose cross-batch dependency is satisfied."""
            if entry[1].predecessors and not chains[entry[0]].ready(entry[1]):
                chain_blocked.setdefault(entry[0], []).append(entry)
            else:
                ready.append(entry)

        def release_chain_ready(batch_index: int) -> None:
            """Move newly hand-off-ready sub-shards of one batch to ready."""
            waiting = chain_blocked.pop(batch_index, None)
            if not waiting:
                return
            still: List[Tuple[int, ShardJob, bool]] = []
            for entry in waiting:
                if chains[batch_index].ready(entry[1]):
                    ready.append(entry)
                else:
                    still.append(entry)
            if still:
                chain_blocked[batch_index] = still

        for batch_index in range(num_batches):
            for job, dep in zip(jobs_per_batch[batch_index], deps[batch_index]):
                if dep < 0:
                    release((batch_index, job, False))
                else:
                    blocked.setdefault(dep, []).append((batch_index, job, False))

        def record(batch_index: int, outcomes, was_resubmitted: bool, shard_id: int) -> None:
            completed.add((batch_index, shard_id))
            done[batch_index].extend(outcomes)
            last_done[batch_index] = time.perf_counter()
            if was_resubmitted:
                resubmitted_ids[batch_index].add(shard_id)
            for outcome in outcomes:
                chains[batch_index].record(outcome)
            release_chain_ready(batch_index)

        def merge_frontier() -> None:
            """Merge every fully-executed batch at the head of the window."""
            nonlocal merged
            while merged < num_batches and len(done[merged]) == total[merged]:
                batch_index = merged
                batch = window[batch_index]
                before = planner.truth_cursor()
                started = time.perf_counter()
                results = merge_shard_outcomes(
                    planner, len(batch.queries), done[batch_index]
                )
                merge_s = time.perf_counter() - started
                after = planner.truth_cursor()
                self.batches_executed += 1
                origins: List[Tuple[Optional[int], Optional[int]]] = [
                    (None, None)
                ] * len(batch.queries)
                for outcome in done[batch_index]:
                    for index in outcome.indices:
                        origins[index] = (outcome.shard_id, outcome.worker_pid)
                resub = resubmitted_ids[batch_index]
                start_t = first_dispatch[batch_index]
                end_t = last_done[batch_index]
                executions.append(
                    BatchExecution(
                        results=results,
                        origins=origins,
                        plan_s=plan_times[batch_index],
                        execute_s=(
                            (end_t - start_t)
                            if start_t is not None and end_t is not None
                            else 0.0
                        ),
                        merge_s=merge_s,
                        warm_pool=warm,
                        resubmitted=(
                            [origin[0] in resub for origin in origins] if resub else None
                        ),
                        respawn_count=respawns,
                        truth_span=(before, after),
                    )
                )
                merged += 1
                # "Every batch <= batch_index merged" is now satisfied; the
                # released entries may still wait on their hand-off chain.
                for entry in blocked.pop(batch_index, ()):
                    release(entry)

        def lost(entry: Tuple[int, ShardJob, bool]) -> None:
            """Requeue a dead worker's shard and try to restore capacity.

            With hedging, the shard may already be recorded or still
            covered by a surviving duplicate dispatch — requeuing then
            would double-serve it and break the merge accounting."""
            nonlocal respawns
            key = (entry[0], entry[1].shard_id)
            covered = key in completed or any(
                (peer[0], peer[1].shard_id) == key for peer in inflight.values()
            )
            if not covered:
                # Front of the queue: the frontier may be waiting on this
                # shard, and its dependency is already satisfied.
                ready.appendleft((entry[0], entry[1], True))
                self.resubmitted_shards_total += 1
            if self._mid_batch_respawn(respawns) is not None:
                respawns += 1

        def retire_losers(key: Tuple[int, int]) -> None:
            """Move every other in-flight dispatch of a won shard to lame."""
            for peer in [
                peer
                for peer, peer_entry in inflight.items()
                if (peer_entry[0], peer_entry[1].shard_id) == key
            ]:
                del inflight[peer]
                dispatched_at.pop(peer, None)
                if peer in hedge_workers:
                    hedge_workers.discard(peer)
                    self.hedges_wasted += 1
                self._retire_to_lame(peer)

        merge_frontier()  # zero-shard batches at the head merge immediately

        inflight: Dict[_PoolWorker, Tuple[int, ShardJob, bool]] = {}
        while ((ready or blocked or chain_blocked) and error is None) or inflight:
            self._poll_lame()
            if error is None:
                for worker in self._alive_workers():
                    if not ready:
                        break
                    if worker in inflight or worker in self._lame:
                        continue
                    entry = ready.popleft()
                    entry[1].adopt = chains[entry[0]].payload(entry[1])
                    if self._dispatch(worker, [entry[1]]):
                        worker.touch()
                        dispatched_at[worker] = time.monotonic()
                        if first_dispatch[entry[0]] is None:
                            first_dispatch[entry[0]] = time.perf_counter()
                        if entry[0] > merged:
                            # Dispatched while an earlier batch is unmerged:
                            # genuine cross-batch overlap.
                            self.overlapped_dispatches += 1
                        inflight[worker] = entry
                    else:
                        ready.appendleft(entry)
                if self.hedge_after_s is not None and not ready and inflight:
                    self._hedge_stragglers(
                        inflight,
                        dispatched_at,
                        hedge_workers,
                        key_of=lambda e: (e[0], e[1].shard_id),
                        job_of=lambda e: e[1],
                    )
                if (
                    (ready or blocked or chain_blocked)
                    and not inflight
                    and not self._alive_workers()
                ):
                    replacement = self._mid_batch_respawn(respawns)
                    if replacement is not None:
                        respawns += 1
                        continue
                    # Whole pool gone, breaker open: degrade in strict batch
                    # order with frontier merges between batches, so each
                    # in-process shard executes against exactly the
                    # sequential prefix.  Within a batch, shard-id order is a
                    # topological order of its hand-off chain, so every
                    # sub-shard's payload is available when it executes.
                    degraded = True
                    remaining: Dict[int, List[Tuple[int, ShardJob, bool]]] = {}
                    for entry in ready:
                        remaining.setdefault(entry[0], []).append(entry)
                    for entries in blocked.values():
                        for entry in entries:
                            remaining.setdefault(entry[0], []).append(entry)
                    for entries in chain_blocked.values():
                        for entry in entries:
                            remaining.setdefault(entry[0], []).append(entry)
                    ready.clear()
                    blocked.clear()
                    chain_blocked.clear()
                    for batch_index in sorted(remaining):
                        for entry in sorted(
                            remaining[batch_index], key=lambda item: item[1].shard_id
                        ):
                            if first_dispatch[batch_index] is None:
                                first_dispatch[batch_index] = time.perf_counter()
                            entry[1].adopt = chains[batch_index].payload(entry[1])
                            record(
                                batch_index,
                                [execute_shard_job(planner, entry[1])],
                                entry[2],
                                entry[1].shard_id,
                            )
                        merge_frontier()
                    break
                if not ready and not inflight and (blocked or chain_blocked):
                    # Defensive: nothing dispatchable and nothing in flight —
                    # re-release chain waiters, and fail loudly over spinning
                    # (unreachable when chain predecessors precede their
                    # consumers, which split_oversized guarantees).
                    for batch_index in list(chain_blocked):
                        release_chain_ready(batch_index)
                    if not ready:  # pragma: no cover - scheduler guard
                        raise ServingError(
                            "window dispatch deadlocked on the sub-shard chain"
                        )
            if not inflight:
                if self._lame:
                    # Nothing in flight but a crawler still owes a reply:
                    # yield briefly instead of hot-spinning on _poll_lame.
                    time.sleep(0.005)
                continue
            wait_ready = mp_wait([worker.conn for worker in inflight], timeout=0.05)
            now = time.monotonic()
            for worker in list(inflight):
                if worker not in inflight:
                    continue  # retired to lame by an earlier win this sweep
                if worker.conn in wait_ready:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        reply = None
                    if reply is not None and reply[0] == "beat":
                        worker.touch()
                        continue
                    entry = inflight.pop(worker)
                    dispatched_at.pop(worker, None)
                    if reply is None:
                        worker.mark_dead()
                        hedge_workers.discard(worker)
                        lost(entry)
                    elif reply[0] == "done":
                        worker.touch()
                        key = (entry[0], entry[1].shard_id)
                        if key in completed:
                            # Stale duplicate of an already-recorded shard:
                            # bit-identical by the content-keyed crowd RNG,
                            # so discarding it is a pure no-op.
                            hedge_workers.discard(worker)
                            continue
                        if worker in hedge_workers:
                            hedge_workers.discard(worker)
                            self.hedges_won += 1
                        retire_losers(key)
                        record(entry[0], reply[2], entry[2], entry[1].shard_id)
                        merge_frontier()
                    elif reply[0] == "desync":
                        worker.mark_dead()
                        hedge_workers.discard(worker)
                        lost(entry)
                    elif reply[0] == "error":
                        error = error or str(reply[2])
                    else:  # pragma: no cover - protocol guard
                        error = error or f"unexpected pool reply {reply[0]!r}"
                elif not worker.process.is_alive():
                    worker.mark_dead()
                    hedge_workers.discard(worker)
                    dispatched_at.pop(worker, None)
                    lost(inflight.pop(worker))
                elif now - worker.last_heard > self.rpc_deadline_s:
                    self._kill_worker(worker)
                    self.hung_workers_killed += 1
                    hedge_workers.discard(worker)
                    dispatched_at.pop(worker, None)
                    lost(inflight.pop(worker))
        if degraded:
            self.degraded_batches += 1
        if error is not None and not executions:
            raise ServingError(f"shard execution failed in a pool worker:\n{error}")
        return executions

    # ------------------------------------------------------------- pool mgmt
    def _spawn_worker(self, context) -> _PoolWorker:
        """Fork one worker inheriting every tenant planner's *current* state.

        The fork carries the default planner plus all registered tenant
        planners by reference; the worker's cursors start at each store's
        current position, so the first dispatch per tenant ships an empty
        delta.
        """
        parent_conn, child_conn = context.Pipe()
        # The fork context passes args by reference, so the child receives
        # the inherited parent-side ends to close (see _pool_worker_main):
        # its own pipe's, plus each live sibling's.
        stale_conns = [peer.conn for peer in self._workers if peer.alive]
        stale_conns.append(parent_conn)
        process = context.Process(
            target=_pool_worker_main,
            args=(
                child_conn,
                self.planner,
                dict(self._tenants),
                self.heartbeat_interval_s,
                stale_conns,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        cursors = {DEFAULT_TENANT: self.planner.truth_cursor()}
        for name, tenant_planner in self._tenants.items():
            cursors[name] = tenant_planner.truth_cursor()
        return _PoolWorker(process, parent_conn, cursors)

    def _ensure_pool(self) -> bool:
        """Fork the pool if none is alive; ``True`` when a fork happened."""
        if any(worker.alive for worker in self._workers):
            return False
        self._workers = []
        context = multiprocessing.get_context("fork")
        # Spawn via append so each fork sees the siblings forked before it in
        # self._workers and closes its inherited copies of their pipe ends.
        for _ in range(self.resolved_pool_size()):
            self._workers.append(self._spawn_worker(context))
        return True

    def _respawn_dead(self) -> None:
        """Replace dead pool workers in place (the respawn policy).

        Called at batch start while at least one worker survives (whole-pool
        loss is `_ensure_pool`'s re-fork).  Each replacement is forked from
        the parent *now*, so it inherits the planner's current truth store —
        the same state a survivor holds after adopting every streamed delta
        — and its cursor starts at the current truth position.  Dead handles
        are dropped, so the pool returns to ``resolved_pool_size()`` workers
        instead of shrinking towards inline fallback.
        """
        if not (self.persistent and self.respawn_workers):
            return
        survivors = [worker for worker in self._workers if worker.alive]
        missing = self.resolved_pool_size() - len(survivors)
        if not survivors or missing <= 0:
            self._workers = survivors or self._workers
            return
        context = multiprocessing.get_context("fork")
        self._workers = survivors
        for _ in range(missing):
            self._workers.append(self._spawn_worker(context))

    def _stop_pool(self) -> None:
        """Stop every worker, escalating politely: ``stop`` message →
        ``join`` with a timeout → ``terminate()`` (SIGTERM) → ``kill()``
        (SIGKILL, which a SIGSTOP'd or wedged worker cannot ignore) — so a
        hung worker can never hang interpreter shutdown."""
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - ignored SIGTERM
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.mark_dead()
        self._workers = []
        self._lame.clear()

    def _kill_worker(self, worker: _PoolWorker) -> None:
        """Forcibly retire one worker (SIGKILL works even on a SIGSTOP'd
        process, which ``terminate``'s SIGTERM would leave pending)."""
        worker.mark_dead()
        try:
            worker.process.kill()
        except OSError:  # pragma: no cover - already reaped
            pass
        worker.process.join(timeout=1.0)

    def _mid_batch_respawn(self, respawns_so_far: int) -> Optional[_PoolWorker]:
        """Fork a replacement for a worker lost mid-batch, budget permitting.

        Bounded exponential backoff plus jitter spaces consecutive respawns
        so a fast crash loop cannot hot-spin forks, and
        ``max_respawns_per_batch`` is the circuit breaker: once the budget
        is spent, capacity is not restored until the batch edge and — if the
        whole pool is gone — the remaining shards degrade to in-process
        execution instead of failing the ticket.  The replacement forks from
        the parent's *current* planner, which is unchanged since batch start
        (outcomes merge only after execution), so it is exactly as synced as
        the workers the batch was dispatched to.
        """
        if not (self.persistent and self.respawn_workers and self._can_fork()):
            return None
        if respawns_so_far >= self.max_respawns_per_batch:
            return None
        delay = min(
            self.respawn_backoff_max_s,
            self.respawn_backoff_s * (2 ** respawns_so_far),
        )
        if delay > 0:
            time.sleep(delay * (1.0 + 0.25 * self._backoff_rng.random()))
        context = multiprocessing.get_context("fork")
        worker = self._spawn_worker(context)
        self._workers = [peer for peer in self._workers if peer.alive] + [worker]
        self.respawns_total += 1
        return worker

    def _alive_workers(self) -> List[_PoolWorker]:
        return [worker for worker in self._workers if worker.alive]

    # ------------------------------------------------------ hedged execution
    def _retire_to_lame(self, worker: _PoolWorker) -> None:
        """Park the loser of a hedged pair until its stale reply drains.

        The strict request/reply protocol means an outstanding reply must be
        drained (or the worker killed) before the worker can be reused — but
        the *batch* need not wait for it: the shard's winning outcome is
        already recorded, so the worker leaves the in-flight set and the
        dispatcher moves on.  Unlike the supervision deadline, the lame
        deadline is **not** renewed by heartbeats: the crawler gets
        ``rpc_deadline_s`` of wall-clock on top of losing the race, then is
        killed (``stragglers_killed``)."""
        self._lame[worker] = time.monotonic() + self.rpc_deadline_s

    def _poll_lame(self) -> None:
        """Drain, recycle or retire lame workers (non-blocking).

        A stale ``done`` whose shard already merged is discarded — safe
        because the content-keyed crowd RNG makes the duplicate outcome
        bit-identical to the one already recorded — and the worker, whose
        warm base is intact, returns to service.  A stale ``desync`` or
        ``error`` retires the worker.  Crossing the hard deadline kills it:
        at that point it has breached ``rpc_deadline_s`` on top of losing
        its hedge race, so it is treated as hung, not slow."""
        if not self._lame:
            return
        now = time.monotonic()
        for worker, deadline in list(self._lame.items()):
            if not worker.alive:
                del self._lame[worker]
                continue
            reply = None
            try:
                while worker.conn.poll(0):
                    reply = worker.conn.recv()
                    if reply[0] != "beat":
                        break
                    reply = None
            except (EOFError, OSError):
                worker.mark_dead()
                del self._lame[worker]
                continue
            if reply is not None:
                del self._lame[worker]
                if reply[0] != "done":
                    # A stale desync/error: its warm base is suspect.
                    worker.mark_dead()
            elif not worker.process.is_alive():
                worker.mark_dead()
                del self._lame[worker]
            elif now > deadline:
                self._kill_worker(worker)
                self.stragglers_killed += 1
                del self._lame[worker]

    def _hedge_stragglers(
        self,
        inflight: Dict[_PoolWorker, Any],
        dispatched_at: Dict[_PoolWorker, float],
        hedge_workers: Set[_PoolWorker],
        key_of=None,
        job_of=None,
    ) -> None:
        """Speculatively duplicate overdue dispatches onto idle workers.

        Called by both dispatchers once their queues are empty but workers
        idle: any in-flight shard whose wall-clock exceeds ``hedge_after_s``
        — its worker still heartbeating, so the hang supervisor will never
        fire — is re-dispatched (same job object, same memoised hand-off
        payload) to an idle worker.  First outcome wins; the loser goes
        lame (see ``_retire_to_lame``).  One hedge per shard: racing more
        than two copies buys nothing the content-keyed RNG has not already
        guaranteed.  ``key_of`` identifies a shard across duplicate entries
        (``(batch, shard_id)`` under windows), ``job_of`` extracts the
        :class:`ShardJob` from a dispatcher entry.
        """
        if key_of is None:
            key_of = lambda entry: entry[0].shard_id  # noqa: E731
        if job_of is None:
            job_of = lambda entry: entry[0]  # noqa: E731
        idle = [
            worker
            for worker in self._alive_workers()
            if worker not in inflight and worker not in self._lame
        ]
        if not idle:
            return
        now = time.monotonic()
        overdue = sorted(
            (
                (started, worker)
                for worker, started in dispatched_at.items()
                if worker in inflight
                and worker not in hedge_workers
                and now - started > self.hedge_after_s
            ),
            key=lambda item: item[0],  # oldest first: it gates the batch
        )
        for _, straggler in overdue:
            entry = inflight[straggler]
            key = key_of(entry)
            if sum(1 for peer in inflight.values() if key_of(peer) == key) > 1:
                continue  # already hedged
            while idle:
                worker = idle.pop(0)
                if self._dispatch(worker, [job_of(entry)]):
                    worker.touch()
                    inflight[worker] = entry
                    dispatched_at[worker] = now
                    hedge_workers.add(worker)
                    self.hedges_issued += 1
                    break
            if not idle:
                return

    def _send(self, worker: _PoolWorker, message) -> bool:
        if not worker.alive:
            return False
        try:
            worker.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            worker.mark_dead()
            return False

    def _recv(self, worker: _PoolWorker, deadline_s: Optional[float] = None):
        """Next substantive reply from ``worker``, or ``None`` once dead.

        Heartbeats are absorbed (each one renews the deadline).  With a
        ``deadline_s``, a worker that stays silent — no reply, no beat —
        past the deadline is killed and reported dead: it is hung, and
        waiting longer cannot help.
        """
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        while True:
            try:
                if worker.conn.poll(0.02):
                    reply = worker.conn.recv()
                    worker.touch()
                    if reply[0] == "beat":
                        if deadline is not None:
                            deadline = time.monotonic() + deadline_s
                        continue
                    return reply
            except (EOFError, OSError):
                worker.mark_dead()
                return None
            if not worker.process.is_alive():
                # Drain anything written before the process died.
                try:
                    while worker.conn.poll(0):
                        reply = worker.conn.recv()
                        if reply[0] != "beat":
                            return reply
                except (EOFError, OSError):
                    pass
                worker.mark_dead()
                return None
            if deadline is not None and time.monotonic() > deadline:
                self._kill_worker(worker)
                self.hung_workers_killed += 1
                return None

    def _wire_delta(self, tenant: str, cursor: int):
        """One tenant's truths recorded since ``cursor``, in the configured
        codec.

        Columnar deltas cross the pipe as a
        :class:`~repro.serving.protocol.TruthDeltaBlock` tagged with the
        tenant; empty deltas (the steady-state case for workers dispatched
        every batch) skip encoding entirely, and the pickle fallback ships
        the objects unchanged.  Workers synced to the same point share one
        encoding: after any batch every participant sits at the same
        cursor, so the per-tenant one-entry memo (keyed by cursor + store
        length — truths are append-only) turns N per-worker encodings of
        the identical delta into one.
        """
        planner = self._planner_for(tenant)
        delta = planner.truth_delta(cursor)
        if not delta or self.truth_wire != "columnar":
            return delta
        key = (cursor, planner.truth_cursor())
        cached = self._wire_cache.get(tenant)
        if cached is not None and cached[0] == key:
            return cached[1]
        block = encode_truth_delta(delta, planner.network, tenant=tenant)
        self._wire_cache[tenant] = (key, block)
        return block

    def _dispatch_spec(self, worker: _PoolWorker, tenant: str):
        """The planner spec to ship with a dispatch: the tenant's
        :class:`~repro.config.PlannerConfig` the first time this worker
        hears about the tenant, ``None`` once it holds the warm base."""
        if tenant == DEFAULT_TENANT or tenant in worker.cursors:
            return None
        return self._planner_for(tenant).config

    def _dispatch(self, worker: _PoolWorker, jobs: List[ShardJob]) -> bool:
        """Send a run message (with the worker's missing truth deltas).

        The tenant rides on the jobs themselves (a dispatch never mixes
        tenants); a worker that predates the tenant's registration gets the
        planner spec and, via cursor 0, the tenant's whole store as the
        delta — after which it is as warm as a fork-inherited sibling.
        """
        tenant = jobs[0].tenant if jobs else DEFAULT_TENANT
        spec = self._dispatch_spec(worker, tenant)
        cursor = worker.cursors.get(tenant, 0)
        if not self._send(worker, ("run", tenant, spec, self._wire_delta(tenant, cursor), jobs)):
            return False
        worker.cursors[tenant] = self._planner_for(tenant).truth_cursor()
        return True

    def _run_on_pool(
        self,
        jobs: List[ShardJob],
        chain: Optional[ChainState] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[List[ShardOutcome], Set[int], int, bool]:
        """Serve jobs on the pool with dynamic pull dispatch + supervision.

        One job per dispatch: each idle worker pulls the next queued job as
        soon as it finishes its previous one (like ``Pool.map`` with chunk
        size 1), so a skewed batch — one giant shard plus several small
        ones — never serialises small shards behind the giant.

        With a ``chain``, sub-shards whose hand-off predecessors have not
        completed wait aside until the chain marks them ready; dispatch
        attaches each sub-shard's (memoised) adopt payload, so resubmission
        after a fault replays the identical hand-off truths.

        The supervisor declares an in-flight worker dead on pipe EOF
        (crash), on desync (its warm base can no longer be trusted), or on
        silence past ``rpc_deadline_s`` with no heartbeat (hung — killed
        outright, since SIGKILL works where a reply never will).  Either
        way its job is requeued *resubmitted* and a replacement is forked
        immediately, budget permitting; once the ``max_respawns_per_batch``
        breaker opens and no worker remains, the remaining queue degrades to
        in-process execution instead of failing the ticket.  A shard
        *execution* error (worker state intact) is raised to the caller
        after in-flight jobs drain.

        Returns ``(outcomes, resubmitted shard ids, respawns, degraded)``.
        """
        planner = self._planner_for(tenant)
        outcomes: List[ShardOutcome] = []
        # Queue entries are (job, resubmitted): the flag survives requeues so
        # the final outcome can be attributed to supervision in provenance.
        queue: "deque[Tuple[ShardJob, bool]]" = deque()
        chain_blocked: List[Tuple[ShardJob, bool]] = []
        for job in jobs:
            if chain is not None and job.predecessors and not chain.ready(job):
                chain_blocked.append((job, False))
            else:
                queue.append((job, False))
        inflight: Dict[_PoolWorker, Tuple[ShardJob, bool]] = {}
        error: Optional[str] = None
        resubmitted: Set[int] = set()
        respawns = 0
        degraded = False
        # Hedging state: shards with a recorded outcome (duplicates discard
        # against this), workers whose in-flight dispatch is the speculative
        # copy, and per-dispatch wall-clock starts for the hedge budget.
        completed: Set[int] = set()
        hedge_workers: Set[_PoolWorker] = set()
        dispatched_at: Dict[_PoolWorker, float] = {}

        def release_chain_ready() -> None:
            """Move sub-shards whose hand-off just completed to the queue."""
            if chain is None or not chain_blocked:
                return
            still: List[Tuple[ShardJob, bool]] = []
            for entry in chain_blocked:
                if chain.ready(entry[0]):
                    queue.append(entry)
                else:
                    still.append(entry)
            chain_blocked[:] = still

        def lost(entry: Tuple[ShardJob, bool]) -> None:
            """Requeue a dead worker's job and try to restore capacity.

            With hedging, the shard may already be served (completed) or
            still covered by its surviving duplicate dispatch — requeuing
            would double-serve it, so only truly orphaned shards requeue."""
            nonlocal respawns
            shard_id = entry[0].shard_id
            covered = shard_id in completed or any(
                peer_entry[0].shard_id == shard_id for peer_entry in inflight.values()
            )
            if not covered:
                queue.append((entry[0], True))
                self.resubmitted_shards_total += 1
            if self._mid_batch_respawn(respawns) is not None:
                respawns += 1

        def retire_losers(shard_id: int) -> None:
            """Move every other in-flight dispatch of a won shard to lame."""
            for peer in [
                peer
                for peer, peer_entry in inflight.items()
                if peer_entry[0].shard_id == shard_id
            ]:
                del inflight[peer]
                dispatched_at.pop(peer, None)
                if peer in hedge_workers:
                    # The original finished first: the speculative copy
                    # bought nothing.
                    hedge_workers.discard(peer)
                    self.hedges_wasted += 1
                self._retire_to_lame(peer)

        while ((queue or chain_blocked) and error is None) or inflight:
            self._poll_lame()
            if error is None:
                for worker in self._alive_workers():
                    if not queue:
                        break
                    if worker in inflight or worker in self._lame:
                        continue
                    entry = queue.popleft()
                    if chain is not None:
                        entry[0].adopt = chain.payload(entry[0])
                    if self._dispatch(worker, [entry[0]]):
                        worker.touch()
                        inflight[worker] = entry
                        dispatched_at[worker] = time.monotonic()
                    else:
                        queue.appendleft(entry)
                if self.hedge_after_s is not None and not queue and inflight:
                    self._hedge_stragglers(inflight, dispatched_at, hedge_workers)
                if (queue or chain_blocked) and not inflight and not self._alive_workers():
                    replacement = self._mid_batch_respawn(respawns)
                    if replacement is not None:
                        respawns += 1
                        continue
                    # The whole pool is gone and the breaker is open (or
                    # respawns are disabled): degrade — serve the remainder
                    # in-process rather than fail the ticket.  Shard-id order
                    # is a topological order of the hand-off chain, so every
                    # payload is available when its consumer executes.
                    degraded = True
                    remaining = sorted(
                        list(queue) + chain_blocked, key=lambda item: item[0].shard_id
                    )
                    queue.clear()
                    chain_blocked.clear()
                    for job, was_resubmitted in remaining:
                        if chain is not None:
                            job.adopt = chain.payload(job)
                        outcome = execute_shard_job(planner, job)
                        outcomes.append(outcome)
                        if chain is not None:
                            chain.record(outcome)
                        if was_resubmitted:
                            resubmitted.add(job.shard_id)
                    break
                if not queue and not inflight and chain_blocked:
                    # Defensive: re-release, and fail loudly over spinning
                    # (unreachable while predecessors precede consumers).
                    release_chain_ready()
                    if not queue:  # pragma: no cover - scheduler guard
                        raise ServingError(
                            "batch dispatch deadlocked on the sub-shard chain"
                        )
            if not inflight:
                if self._lame:
                    # Nothing in flight but a crawler still owes a reply:
                    # yield briefly instead of hot-spinning on _poll_lame.
                    time.sleep(0.005)
                continue
            wait_ready = mp_wait([worker.conn for worker in inflight], timeout=0.05)
            now = time.monotonic()
            for worker in list(inflight):
                if worker not in inflight:
                    continue  # retired to lame by an earlier win this sweep
                if worker.conn in wait_ready:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        reply = None
                    if reply is not None and reply[0] == "beat":
                        worker.touch()
                        continue
                    entry = inflight.pop(worker)
                    dispatched_at.pop(worker, None)
                    if reply is None:
                        worker.mark_dead()
                        hedge_workers.discard(worker)
                        lost(entry)
                    elif reply[0] == "done":
                        worker.touch()
                        shard_id = entry[0].shard_id
                        if shard_id in completed:
                            # Stale duplicate of an already-served shard:
                            # bit-identical by the content-keyed crowd RNG,
                            # so discarding it is a pure no-op.
                            hedge_workers.discard(worker)
                            continue
                        completed.add(shard_id)
                        if worker in hedge_workers:
                            hedge_workers.discard(worker)
                            self.hedges_won += 1
                        retire_losers(shard_id)
                        outcomes.extend(reply[2])
                        if chain is not None:
                            for outcome in reply[2]:
                                chain.record(outcome)
                            release_chain_ready()
                        if entry[1]:
                            resubmitted.add(shard_id)
                    elif reply[0] == "desync":
                        # The worker's warm base is no longer trustworthy.
                        worker.mark_dead()
                        hedge_workers.discard(worker)
                        lost(entry)
                    elif reply[0] == "error":
                        error = error or str(reply[2])
                    else:  # pragma: no cover - protocol guard
                        error = error or f"unexpected pool reply {reply[0]!r}"
                elif not worker.process.is_alive():
                    worker.mark_dead()
                    hedge_workers.discard(worker)
                    dispatched_at.pop(worker, None)
                    lost(inflight.pop(worker))
                elif now - worker.last_heard > self.rpc_deadline_s:
                    # Alive but silent past the deadline — no reply and no
                    # heartbeat — so it is hung, not slow.
                    self._kill_worker(worker)
                    self.hung_workers_killed += 1
                    hedge_workers.discard(worker)
                    dispatched_at.pop(worker, None)
                    lost(inflight.pop(worker))
        if error is not None:
            raise ServingError(f"shard execution failed in a pool worker:\n{error}")
        return outcomes, resubmitted, respawns, degraded

    def _push_sync(self, tenant: str = DEFAULT_TENANT) -> None:
        """Stream one tenant's merged truth deltas to workers that are
        behind (cadence).  Workers that have never served the tenant are
        skipped — they warm up lazily at their first dispatch for it."""
        total = self._planner_for(tenant).truth_cursor()
        synced: List[_PoolWorker] = []
        for worker in self._alive_workers():
            if worker in self._lame:
                # An outstanding (stale) reply is still owed: interleaving a
                # sync round-trip would break the request/reply protocol.
                # The worker re-syncs lazily at its next dispatch instead.
                continue
            cursor = worker.cursors.get(tenant)
            if cursor is None or cursor >= total:
                continue
            message = ("sync", tenant, None, self._wire_delta(tenant, cursor))
            if self._send(worker, message):
                worker.cursors[tenant] = total
                synced.append(worker)
        for worker in synced:
            reply = self._recv(worker, deadline_s=self.rpc_deadline_s)
            if reply is None or reply[0] != "synced":
                # Death, or a partial adopt ("desync"): either way this
                # worker's warm base can no longer be trusted — retire it
                # rather than serve stale lookups from it later.
                worker.mark_dead()


# ---------------------------------------------------------------- the service
class RecommendationService:
    """Session-based serving façade over a prepared planner.

    Parameters
    ----------
    planner:
        A (typically prepared) :class:`CrowdPlanner`.  The service owns its
        batch-serving state while open: truths recorded by the service's
        batches land here, exactly as a sequential run would record them.
    config:
        A :class:`~repro.config.ServiceConfig`; ``None`` lifts the
        planner's own config with default serving knobs.
    backend:
        Explicit :class:`ServingBackend` instance; ``None`` builds one from
        ``config.backend``.

    The service is a context manager; :meth:`close` shuts the backend pool
    down and refuses further calls.  Uncollected pending batches are
    discarded at close (they were never executed).
    """

    def __init__(
        self,
        planner: CrowdPlanner,
        config: Optional[ServiceConfig] = None,
        backend: Optional[ServingBackend] = None,
    ):
        if config is None:
            config = ServiceConfig.from_planner_config(planner.config)
        self.planner = planner
        self.config = config
        if backend is None:
            if config.backend == "inline":
                backend = InlineBackend()
            else:
                backend = PooledBackend.from_config(config)
        backend.bind(planner)
        self.backend = backend
        self._closed = False
        self._resubmitted_results = 0
        # Resilience counters (see statistics()["resilience"]).
        self._sheds = 0
        self._deadline_breaches = 0
        self._journal_suspended = False
        # EWMA of whole-batch wall-clock (plan+execute+merge), the admission
        # controller's throughput estimate.  None until the first batch runs.
        self._batch_s_ewma: Optional[float] = None
        # The journal attaches (and replays) before the first batch, so a
        # lazily forked pool inherits the recovered truth state.
        self._journal: Optional[TruthJournal] = None
        if config.journal_path is not None:
            self._journal = TruthJournal(
                config.journal_path,
                wire=config.truth_wire,
                fsync=config.journal_fsync,
                snapshot_every_truths=config.snapshot_every_truths,
            )
            self._attach_journal()
        self._next_request_id = 1
        self._next_ticket_id = 1
        # Journal records are one-per-executed-batch, so its durable record
        # count resumes batch numbering exactly where the crashed run stopped.
        self._next_batch_id = (
            self._journal.batch_count + 1 if self._journal is not None else 1
        )
        # Submitted-but-unexecuted batches, in submission order.  Each entry
        # is (requests, share, deadline_at) — deadline_at an absolute
        # time.monotonic() budget, or None when the caller named none.
        self._pending: (
            "OrderedDict[int, Tuple[List[RecommendRequest], bool, Optional[float]]]"
        ) = OrderedDict()
        # Executed-but-uncollected responses, keyed by ticket id.
        self._ready: Dict[int, List[RecommendResponse]] = {}
        self._collected: Set[int] = set()

    @classmethod
    def recover(
        cls,
        planner: CrowdPlanner,
        journal_path,
        config: Optional[ServiceConfig] = None,
        backend: Optional[ServingBackend] = None,
    ) -> "RecommendationService":
        """Rebuild a service from its truth journal after a crash.

        ``planner`` is a freshly prepared planner for the same scenario —
        the substrate (network, sources, crowd workers) is code plus
        scenario data, not journaled state.  Its truth store is brought to
        the exact pre-crash state by replaying the journal's snapshot and
        intact tail (a torn final record is truncated with a warning), and
        the journal stays attached so the recovered service keeps
        journaling.  Because batch answers depend on planner state only
        through the truth store (see the serving contract), batches redeemed
        after recovery are fingerprint-identical to an uninterrupted run.
        """
        if config is None:
            config = ServiceConfig.from_planner_config(planner.config)
        config = dataclasses.replace(config, journal_path=str(journal_path))
        return cls(planner, config=config, backend=backend)

    def _attach_journal(self) -> None:
        """Replay durable truths into the planner, then baseline the rest.

        Any planner truths the journal has never seen (a pre-seeded store,
        or journaling switched on mid-life) are captured by forcing a
        snapshot, so the journal alone rebuilds the full truth state —
        without consuming a journal record, keeping ``batch_count`` an exact
        executed-batch counter.
        """
        journal = self._journal
        truths = self.planner.truths
        durable = journal.replay(self.planner.network)
        durable_ids = {truth.truth_id for truth in durable}
        baseline = [truth for truth in truths.all() if truth.truth_id not in durable_ids]
        fresh = [truth for truth in durable if truth.truth_id not in truths]
        if fresh:
            truths.adopt_all(fresh)
        if baseline:
            journal.snapshot(truths)

    # ------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the backend down; the service refuses further calls."""
        if self._closed:
            return
        self._closed = True
        try:
            self.backend.close()
        finally:
            if self._journal is not None:
                try:
                    self._journal.close()
                except OSError:
                    # A dying disk must not mask the pool shutdown (or an
                    # in-flight exception) at close time.
                    pass

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError("the service is closed")

    # ------------------------------------------------------------- interface
    def submit(
        self,
        queries: Union[QueryLike, Iterable[QueryLike]],
        share_candidate_generation: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> Ticket:
        """Enqueue one batch; returns the ticket that redeems its results.

        Accepts a single query or an iterable; raises
        :class:`~repro.exceptions.OverloadError` (a ``ServingError``) when
        ``config.max_pending_batches`` batches already await execution, or
        when ``deadline_s`` — a completion budget in seconds from now — is
        unmeetable at the service's observed throughput (queue depth times
        the batch-time EWMA).  Both sheds happen *before* any side effect,
        so the caller may retry, back off, or route elsewhere; admitted
        batches record their absolute deadline and count a deadline breach
        if they finalise late (the budget never aborts an admitted batch —
        shedding is an admission decision, not an execution one).
        Submission order is execution order, whatever order tickets are
        redeemed in.
        """
        self._ensure_open()
        if deadline_s is not None and deadline_s <= 0:
            raise ServingError("deadline_s must be positive (or None for no deadline)")
        # Reject before consuming anything: a caller whose submit is refused
        # must be able to retry with the same (possibly generator) queries.
        if len(self._pending) >= self.config.max_pending_batches:
            self._sheds += 1
            raise OverloadError(
                f"submission queue is full ({self.config.max_pending_batches} pending batches)"
            )
        if deadline_s is not None and self._batch_s_ewma is not None:
            estimate = (len(self._pending) + 1) * self._batch_s_ewma
            if estimate > deadline_s:
                self._sheds += 1
                raise OverloadError(
                    f"deadline {deadline_s:.3f}s unmeetable: {len(self._pending)} batches "
                    f"pending at ~{self._batch_s_ewma:.3f}s/batch (~{estimate:.3f}s to finish)"
                )
        requests, share = self._wrap(queries, share_candidate_generation)
        ticket = Ticket(ticket_id=self._next_ticket_id, size=len(requests))
        self._next_ticket_id += 1
        deadline_at = None if deadline_s is None else time.monotonic() + deadline_s
        self._pending[ticket.ticket_id] = (requests, share, deadline_at)
        return ticket

    def results(self, ticket: Union[Ticket, int]) -> List[RecommendResponse]:
        """Redeem a ticket (exactly once), in submission-order semantics.

        Executes every batch submitted before the ticket's first, so the
        global query sequence the planner observes is independent of
        collection order.
        """
        self._ensure_open()
        ticket_id = ticket.ticket_id if isinstance(ticket, Ticket) else int(ticket)
        if ticket_id in self._collected:
            raise ServingError(f"ticket {ticket_id} was already collected")
        if ticket_id not in self._ready and ticket_id not in self._pending:
            raise ServingError(f"unknown ticket {ticket_id}")
        while ticket_id not in self._ready:
            self._execute_next_pending()
        self._collected.add(ticket_id)
        return self._ready.pop(ticket_id)

    def drain(self) -> None:
        """Execute every pending batch (results stay redeemable by ticket)."""
        self._ensure_open()
        while self._pending:
            self._execute_next_pending()

    def pump(self) -> bool:
        """Execute at most one pending batch (a window when pipelining).

        ``True`` when something ran, ``False`` on an empty queue.  The
        fairness primitive: :class:`~repro.serving.tenancy.WorkspaceService`
        round-robins one ``pump`` per workspace so a single tenant's backlog
        cannot monopolise the shared pool between admissions.
        """
        self._ensure_open()
        if not self._pending:
            return False
        self._execute_next_pending()
        return True

    def recommend(self, query: QueryLike) -> RecommendResponse:
        """Answer a single query through the full batch pipeline."""
        return self.results(self.submit(query))[0]

    def recommend_batch(
        self,
        queries: Iterable[QueryLike],
        share_candidate_generation: Optional[bool] = None,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendResponse]:
        """Submit-and-collect one batch in a single call.

        An explicit ``plan`` (diagnostics / the deprecated engine shim)
        bypasses the ticket queue: pending batches are drained first so
        submission order is preserved, then the batch executes under the
        given plan.
        """
        if plan is None:
            return self.results(self.submit(queries, share_candidate_generation))
        self._ensure_open()
        self.drain()
        requests, share = self._wrap(queries, share_candidate_generation)
        return self._execute(requests, share, plan)

    def stream(
        self,
        queries: Iterable[QueryLike],
        batch_size: Optional[int] = None,
    ) -> Iterator[RecommendResponse]:
        """Pipeline a query iterable through the service in batches.

        Batches are submitted and redeemed lazily as the iterator is
        consumed, so an unbounded query source streams with bounded memory;
        responses arrive in submission order.

        With ``config.pipeline_window > 1`` the stream keeps up to a
        window's worth of submitted-but-unredeemed batches outstanding
        (bounded by ``max_pending_batches``), so redemptions hand the
        backend full windows to overlap; at the default window of 1 each
        batch is redeemed as soon as it is submitted, exactly as before.
        """
        size = batch_size if batch_size is not None else self.config.stream_batch_size
        if size < 1:
            raise ServingError("batch_size must be at least 1")
        window = self.config.pipeline_window
        max_outstanding = (
            max(0, min(window, self.config.max_pending_batches - 1)) if window > 1 else 0
        )
        tickets: "deque[Ticket]" = deque()
        chunk: List[QueryLike] = []
        for query in queries:
            chunk.append(query)
            if len(chunk) >= size:
                tickets.append(self.submit(chunk))
                chunk = []
                while len(tickets) > max_outstanding:
                    for response in self.results(tickets.popleft()):
                        yield response
        if chunk:
            tickets.append(self.submit(chunk))
        while tickets:
            for response in self.results(tickets.popleft()):
                yield response

    # ------------------------------------------------------------ diagnostics
    def worker_pids(self) -> List[int]:
        """PIDs of the backend's live pool workers (empty when in-process)."""
        return self.backend.worker_pids()

    @property
    def journal(self) -> Optional[TruthJournal]:
        """The attached truth journal (``None`` when not journaling)."""
        return self._journal

    def statistics(self) -> Dict[str, Any]:
        """Serving-level counters, grouped by concern.

        ``planner`` holds the resolution counters, ``supervision`` the
        backend's fault-handling aggregates plus the number of responses
        whose shard was resubmitted after a worker loss, ``pipeline`` the
        cross-batch overlap and window-parallelism counters, ``sharding``
        the skew diagnostics (largest-shard fraction before/after hotspot
        splitting and the sub-shard chain depth), ``resilience`` the
        graceful-degradation counters (hedges issued/won/wasted, stragglers
        killed, admission sheds, deadline breaches, journal suspension),
        and ``journal`` (present only when journaling) the durability
        counters.
        """
        stats: Dict[str, Any] = {
            "planner": self.planner.statistics.as_dict(),
            "supervision": dict(self.backend.supervision_stats()),
            "pipeline": dict(self.backend.pipeline_stats()),
            "sharding": dict(self.backend.sharding_stats()),
        }
        stats["supervision"]["resubmitted_results"] = self._resubmitted_results
        resilience = dict(self.backend.resilience_stats())
        resilience["sheds"] = self._sheds
        resilience["deadline_breaches"] = self._deadline_breaches
        resilience["journal_suspended"] = self._journal_suspended
        stats["resilience"] = resilience
        if self._journal is not None:
            stats["journal"] = self._journal.stats()
        return stats

    def plan(self, queries: Sequence[QueryLike]) -> ShardPlan:
        """The shard plan a batch would execute under (diagnostics).

        Includes the backend's hotspot splitting: with ``max_shard_fraction``
        configured, oversized shards appear as their sub-shard chains.
        """
        resolved = [
            query.query if isinstance(query, RecommendRequest) else query for query in queries
        ]
        # Duck-typed so the tenancy facade (which wraps the shared pool
        # without subclassing it) plans against the real pool width too.
        resolver = getattr(self.backend, "resolved_pool_size", None)
        shards = resolver() if resolver is not None else 1
        plan = self.planner.shard_plan(resolved, shards)
        fraction = getattr(self.backend, "max_shard_fraction", None)
        if fraction is not None:
            plan = split_oversized(self.planner, plan, resolved, fraction)
        return plan

    # -------------------------------------------------------------- internal
    def _wrap(
        self,
        queries: Union[QueryLike, Iterable[QueryLike]],
        share_candidate_generation: Optional[bool],
    ) -> Tuple[List[RecommendRequest], bool]:
        """Envelope queries under fresh request ids + resolve the share flag."""
        if isinstance(queries, (RouteQuery, RecommendRequest)):
            queries = [queries]
        requests = wrap_requests(queries, self._next_request_id)
        self._next_request_id += len(requests)
        share = (
            self.config.share_candidate_generation
            if share_candidate_generation is None
            else share_candidate_generation
        )
        return requests, share

    def _execute_next_pending(self) -> None:
        # Pop only after a successful execution: a backend failure leaves the
        # batch pending, so the ticket stays redeemable (retryable) instead
        # of silently becoming "unknown".
        if self.config.pipeline_window > 1 and len(self._pending) > 1:
            self._execute_pending_window()
            return
        ticket_id, (requests, share, deadline_at) = next(iter(self._pending.items()))
        responses = self._execute(requests, share)
        del self._pending[ticket_id]
        self._ready[ticket_id] = responses
        self._note_deadline(deadline_at)

    def _execute_pending_window(self) -> None:
        """Execute up to ``pipeline_window`` pending batches as one window.

        The backend returns the successfully merged *prefix* (the window
        contract): exactly those batches are finalised — journaled, popped
        from pending, marked ready — in submission order; a failing batch
        and everything after it stay pending and redeemable, and the failure
        surfaces deterministically when the failing batch heads a later
        window (a first-batch failure raises out of the backend directly).
        """
        entries = []
        for item in self._pending.items():
            entries.append(item)
            if len(entries) >= self.config.pipeline_window:
                break
        window = [
            WindowBatch(
                queries=[request.query for request in requests],
                share_candidate_generation=share,
            )
            for _, (requests, share, _deadline) in entries
        ]
        executions = self.backend.execute_window(window)
        if not executions:  # pragma: no cover - window contract guard
            raise ServingError("backend returned no executions for a non-empty window")
        for position, ((ticket_id, (requests, _share, deadline_at)), execution) in enumerate(
            zip(entries, executions)
        ):
            # Snapshots are deferred to the window's last journaled batch:
            # only then do the planner's truth store and the journal's batch
            # counter agree again (see TruthJournal.append).
            responses = self._finalize(
                requests, execution, allow_snapshot=(position == len(executions) - 1)
            )
            del self._pending[ticket_id]
            self._ready[ticket_id] = responses
            self._note_deadline(deadline_at)

    def _note_deadline(self, deadline_at: Optional[float]) -> None:
        """Count a breach when an admitted batch finalised past its budget."""
        if deadline_at is not None and time.monotonic() > deadline_at:
            self._deadline_breaches += 1

    def _execute(
        self,
        requests: List[RecommendRequest],
        share_candidate_generation: bool,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendResponse]:
        queries = [request.query for request in requests]
        truth_cursor = self.planner.truth_cursor()
        execution = self.backend.execute_batch(
            queries, share_candidate_generation=share_candidate_generation, plan=plan
        )
        if execution.truth_span is None:
            execution.truth_span = (truth_cursor, self.planner.truth_cursor())
        return self._finalize(requests, execution)

    def _finalize(
        self,
        requests: List[RecommendRequest],
        execution: BatchExecution,
        allow_snapshot: bool = True,
    ) -> List[RecommendResponse]:
        """Assign the batch id, journal the batch's truth span, build envelopes."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        # Feed the admission controller: EWMA (alpha=0.5) of whole-batch
        # wall-clock, weighting recent throughput so the estimate tracks
        # load shifts within a few batches.
        batch_s = execution.plan_s + execution.execute_s + execution.merge_s
        self._batch_s_ewma = (
            batch_s
            if self._batch_s_ewma is None
            else 0.5 * batch_s + 0.5 * self._batch_s_ewma
        )
        if self._journal is not None and not self._journal_suspended:
            # One record per executed batch — even with an empty delta — so
            # the journal's record count is an exact durable progress marker
            # for crash recovery (which batches need re-executing).  Under
            # pipelining several batches merge inside one window call, so the
            # delta is bounded to this batch's own truth span.
            before, after = execution.truth_span or (0, self.planner.truth_cursor())
            try:
                self._journal.append(
                    self.planner.truth_delta(before, upto=after),
                    self.planner.truths,
                    meta={"batch_id": batch_id, "size": len(requests)},
                    allow_snapshot=allow_snapshot,
                )
            except OSError as exc:
                # Disk fault (ENOSPC, EIO, ...) on append or snapshot: the
                # degrade ladder.  The batch itself already merged — only
                # its durability record failed.
                if self.config.journal_on_error == "suspend":
                    # Stop journaling, keep serving.  recover() on this
                    # journal replays to the last *durable* batch; batches
                    # served after suspension are answered but not durable.
                    self._journal_suspended = True
                    try:
                        self._journal.close()
                    except OSError:  # pragma: no cover - double disk fault
                        pass
                    warnings.warn(
                        f"truth journal suspended after a disk fault: {exc} — "
                        "serving continues undurable (journal_on_error='suspend')",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    raise JournalError(
                        f"truth journal append failed for batch {batch_id}: {exc}"
                    ) from exc
        timings = BatchTimings(
            plan_s=execution.plan_s, execute_s=execution.execute_s, merge_s=execution.merge_s
        )
        resubmitted = execution.resubmitted or [False] * len(requests)
        self._resubmitted_results += sum(resubmitted)
        responses = []
        for request, result, (shard_id, worker_pid), was_resubmitted in zip(
            requests, execution.results, execution.origins, resubmitted
        ):
            responses.append(
                RecommendResponse(
                    request=request,
                    result=result,
                    provenance=ResultProvenance(
                        backend=self.backend.name,
                        batch_id=batch_id,
                        batch_size=len(requests),
                        shard_id=shard_id,
                        worker_pid=worker_pid,
                        truth_reused=result.method == "truth_reuse",
                        warm_pool=execution.warm_pool,
                        timings=timings,
                        resubmitted=was_resubmitted,
                        respawn_count=execution.respawn_count,
                    ),
                )
            )
        return responses
